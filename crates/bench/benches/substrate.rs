//! Microbenchmarks of the microarchitecture substrates: cache accesses,
//! perceptron predictions, and load-store queue queries.

use braid_bench::microbench::{criterion_group, criterion_main, Criterion, Throughput};

use braid_uarch::branch::{BranchPredictor, PerceptronPredictor};
use braid_uarch::cache::{Access, MemoryHierarchy, MemoryHierarchyConfig};
use braid_uarch::lsq::LoadStoreQueue;

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(1024));

    g.bench_function("cache_hierarchy_1k_accesses", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
            let mut total = 0u64;
            for i in 0..1024u64 {
                total += h.access(Access::Load, (i * 64) % (128 << 10));
            }
            total
        })
    });

    g.bench_function("perceptron_1k_predictions", |b| {
        b.iter(|| {
            let mut p = PerceptronPredictor::paper_default();
            let mut taken = false;
            for i in 0..1024u64 {
                taken = !taken;
                let pred = p.predict(i % 37);
                p.update(i % 37, taken, pred);
            }
            p.accuracy().rate()
        })
    });

    g.bench_function("lsq_1k_load_outcomes", |b| {
        let mut q = LoadStoreQueue::new(64);
        for s in 0..32u64 {
            q.insert(s, s % 3 == 0, s * 8, 8);
            q.set_address(s, s * 8, 8);
        }
        b.iter(|| {
            let mut ready = 0;
            for i in 0..1024u64 {
                if matches!(
                    q.load_outcome(40, (i % 64) * 8, 8, i),
                    braid_uarch::lsq::LsqOutcome::Ready
                ) {
                    ready += 1;
                }
            }
            ready
        })
    });
    g.finish();
}

criterion_group!(substrate, bench_substrate);
criterion_main!(substrate);
