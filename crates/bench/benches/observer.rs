//! Observer overhead: the timing cores with the no-op observer (the plain
//! `run` path, which must monomorphize to the unobserved engine) versus a
//! full `PipelineObserver` collecting every event. The no-op numbers here
//! should match the `cores` bench within noise; the ISSUE budget for the
//! disabled path is ≤2% of the unobserved baseline.

use braid_bench::microbench::{criterion_group, criterion_main, Criterion, Throughput};

use braid_compiler::{translate, TranslatorConfig};
use braid_core::config::{BraidConfig, OooConfig};
use braid_core::cores::{BraidCore, OooCore};
use braid_core::functional::Machine;
use braid_obs::PipelineObserver;

fn bench_observer(c: &mut Criterion) {
    let w = braid_workloads::by_name("gcc", 0.2).expect("gcc exists");
    let mut m = Machine::new(&w.program);
    let trace = m.run(&w.program, w.fuel).expect("runs");
    let t = translate(&w.program, &TranslatorConfig::default()).expect("translates");
    let mut mb = Machine::new(&t.program);
    let braid_trace = mb.run(&t.program, w.fuel).expect("runs");
    let n = trace.len() as u64;

    let mut g = c.benchmark_group("observer_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("ooo_noop", |b| {
        let core = OooCore::new(OooConfig::paper_8wide());
        b.iter(|| core.run(&w.program, &trace).expect("runs"))
    });
    g.bench_function("ooo_observed", |b| {
        let core = OooCore::new(OooConfig::paper_8wide());
        b.iter(|| {
            let mut obs = PipelineObserver::new();
            core.run_observed(&w.program, &trace, &mut obs).expect("runs")
        })
    });
    g.bench_function("braid_noop", |b| {
        let core = BraidCore::new(BraidConfig::paper_default());
        b.iter(|| core.run(&t.program, &braid_trace).expect("runs"))
    });
    g.bench_function("braid_observed", |b| {
        let core = BraidCore::new(BraidConfig::paper_default());
        b.iter(|| {
            let mut obs = PipelineObserver::new();
            core.run_observed(&t.program, &braid_trace, &mut obs).expect("runs")
        })
    });
    g.finish();
}

criterion_group!(observer, bench_observer);
criterion_main!(observer);
