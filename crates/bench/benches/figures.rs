//! One Criterion benchmark per paper table/figure: each target runs a
//! reduced-scale version of the experiment that regenerates that artifact,
//! so `cargo bench` both exercises and times the whole reproduction
//! pipeline. Full-scale regeneration is `cargo run --release -p braid-bench
//! --bin exp -- all`.

use braid_bench::microbench::{criterion_group, criterion_main, Criterion};

use braid_bench::experiments as exp;
use braid_bench::{prepare, Prepared};

/// A fixed 4-benchmark sample keeps each figure's bench under a second.
fn sample_suite() -> Vec<Prepared> {
    ["gcc", "mcf", "swim", "gzip"]
        .iter()
        .map(|name| prepare(braid_workloads::by_name(name, 0.05).expect("known benchmark")))
        .collect()
}

fn bench_figures(c: &mut Criterion) {
    let suite = sample_suite();
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table1_braids_per_block", |b| b.iter(|| exp::tab1(&suite)));
    g.bench_function("table2_braid_size_width", |b| b.iter(|| exp::tab2(&suite)));
    g.bench_function("table3_braid_operands", |b| b.iter(|| exp::tab3(&suite)));
    g.bench_function("section1_value_characterization", |b| b.iter(|| exp::chars(&suite)));
    g.bench_function("section31_braid_splits", |b| b.iter(|| exp::splits(&suite)));
    g.bench_function("figure1_wider_issue_potential", |b| b.iter(|| exp::fig1(&suite)));
    g.bench_function("figure5_ooo_registers", |b| b.iter(|| exp::fig5(&suite)));
    g.bench_function("figure6_external_registers", |b| b.iter(|| exp::fig6(&suite)));
    g.bench_function("figure7_external_rf_ports", |b| b.iter(|| exp::fig7(&suite)));
    g.bench_function("figure8_bypass_paths", |b| b.iter(|| exp::fig8(&suite)));
    g.bench_function("figure9_beus", |b| b.iter(|| exp::fig9(&suite)));
    g.bench_function("figure10_fifo_entries", |b| b.iter(|| exp::fig10(&suite)));
    g.bench_function("figure11_window", |b| b.iter(|| exp::fig11(&suite)));
    g.bench_function("figure12_window_and_fus", |b| b.iter(|| exp::fig12(&suite)));
    g.bench_function("figure13_four_paradigms", |b| b.iter(|| exp::fig13(&suite)));
    g.bench_function("figure14_equal_fus", |b| b.iter(|| exp::fig14(&suite)));
    g.bench_function("section51_pipeline_shortening", |b| b.iter(|| exp::pipeline(&suite)));
    g.bench_function("section52_clustering", |b| b.iter(|| exp::clusters(&suite)));
    g.bench_function("section34_exceptions", |b| b.iter(|| exp::exceptions(&suite)));
    g.bench_function("ablation_disambiguation", |b| b.iter(|| exp::disambiguation(&suite)));
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
