//! Simulator throughput: dynamic instructions simulated per second for each
//! execution-core model, the functional executor, and the translator.

use braid_bench::microbench::{criterion_group, criterion_main, Criterion, Throughput};

use braid_compiler::{translate, TranslatorConfig};
use braid_core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid_core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid_core::functional::Machine;

fn bench_cores(c: &mut Criterion) {
    let w = braid_workloads::by_name("gcc", 0.2).expect("gcc exists");
    let mut m = Machine::new(&w.program);
    let trace = m.run(&w.program, w.fuel).expect("runs");
    let t = translate(&w.program, &TranslatorConfig::default()).expect("translates");
    let mut mb = Machine::new(&t.program);
    let braid_trace = mb.run(&t.program, w.fuel).expect("runs");
    let n = trace.len() as u64;

    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("functional", |b| {
        b.iter(|| {
            let mut m = Machine::new(&w.program);
            m.run(&w.program, w.fuel).expect("runs")
        })
    });
    g.bench_function("ooo_core", |b| {
        let core = OooCore::new(OooConfig::paper_8wide());
        b.iter(|| core.run(&w.program, &trace).expect("runs"))
    });
    g.bench_function("braid_core", |b| {
        let core = BraidCore::new(BraidConfig::paper_default());
        b.iter(|| core.run(&t.program, &braid_trace).expect("runs"))
    });
    g.bench_function("dep_core", |b| {
        let core = DepSteerCore::new(DepConfig::paper_8wide());
        b.iter(|| core.run(&w.program, &trace).expect("runs"))
    });
    g.bench_function("inorder_core", |b| {
        let core = InOrderCore::new(InOrderConfig::paper_8wide());
        b.iter(|| core.run(&w.program, &trace).expect("runs"))
    });
    g.finish();

    let mut g = c.benchmark_group("translator");
    g.throughput(Throughput::Elements(w.program.len() as u64));
    g.bench_function("translate_gcc", |b| {
        b.iter(|| translate(&w.program, &TranslatorConfig::default()).expect("translates"))
    });
    g.finish();
}

criterion_group!(cores, bench_cores);
criterion_main!(cores);
