//! # braid-bench: the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (see
//! DESIGN.md §5 for the experiment index). The `exp` binary drives the
//! experiments; this library holds the shared machinery: table formatting,
//! workload/trace caching, paper reference values, and the experiment
//! implementations themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
pub mod paper;
pub mod table;

use braid_compiler::{translate, Translation, TranslatorConfig};
use braid_core::functional::Machine;
use braid_core::trace::Trace;
use braid_workloads::Workload;

/// The dynamic-length scale factor, from `BRAID_SCALE` (default 1.0 ≈ 60k
/// dynamic instructions per benchmark).
pub fn scale() -> f64 {
    std::env::var("BRAID_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// A workload prepared for simulation: original and braid-translated
/// programs plus their committed traces.
pub struct Prepared {
    /// The source workload.
    pub workload: Workload,
    /// Trace of the original program.
    pub trace: Trace,
    /// The braid translation of the program.
    pub translation: Translation,
    /// Trace of the translated program.
    pub braid_trace: Trace,
}

/// Traces a workload once for reuse across configurations.
///
/// # Panics
///
/// Panics if the workload fails to execute — suite workloads are expected
/// to be well-formed.
pub fn prepare(workload: Workload) -> Prepared {
    let mut m = Machine::new(&workload.program);
    let trace = m
        .run(&workload.program, workload.fuel)
        .unwrap_or_else(|e| panic!("{}: functional run failed: {e}", workload.name));
    let translation = translate(&workload.program, &TranslatorConfig::default())
        .unwrap_or_else(|e| panic!("{}: translation failed: {e}", workload.name));
    let mut m2 = Machine::new(&translation.program);
    let braid_trace = m2
        .run(&translation.program, workload.fuel)
        .unwrap_or_else(|e| panic!("{}: braid functional run failed: {e}", workload.name));
    assert_eq!(
        trace.len(),
        braid_trace.len(),
        "{}: translation changed the dynamic instruction count",
        workload.name
    );
    Prepared { workload, trace, translation, braid_trace }
}

/// Prepares the whole 26-benchmark suite at the given scale.
pub fn prepare_suite(scale: f64) -> Vec<Prepared> {
    braid_workloads::suite(scale).into_iter().map(prepare).collect()
}

/// Geometric mean (the usual average for normalized performance).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn prepare_traces_match() {
        let w = braid_workloads::by_name("gap", 0.02).unwrap();
        let p = prepare(w);
        assert!(!p.trace.is_empty());
        assert_eq!(p.trace.len(), p.braid_trace.len());
    }
}
