//! `exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! exp <experiment>...        run the named experiments
//! exp all                    run everything
//! ```
//!
//! Experiments: tab1 tab2 tab3 chars splits fig1 fig5 fig6 fig7 fig8 fig9
//! fig10 fig11 fig12 fig13 fig14 pipeline clusters exceptions
//! disambiguation predictors mshrs fig13perfect widthsweep cpistack
//! sampled opt frontier. Set `BRAID_SCALE` to change the dynamic
//! instruction count (default 1.0 ≈ 60k per benchmark; `sampled`, `opt`,
//! and `frontier` run the hand-written kernels and compiled loop nests
//! and ignore the scale).
//!
//! Each experiment prints its table and writes `results/<name>.txt`.

use std::fs;
use std::time::Instant;

use braid_bench::experiments as exp;
use braid_bench::table::Table;
use braid_bench::{prepare_suite, scale, Prepared};

const ALL: &[&str] = &[
    "tab1", "tab2", "tab3", "chars", "splits", "fig1", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "pipeline", "clusters",
    "exceptions", "disambiguation", "predictors", "mshrs", "fig13perfect", "widthsweep",
    "cpistack", "sampled", "opt", "frontier",
];

/// Experiments that run the hand-written kernels and never touch the
/// prepared synthetic suite.
const SUITE_FREE: &[&str] = &["sampled", "opt", "frontier"];

fn run_one(name: &str, suite: &[Prepared]) -> Option<Table> {
    let table = match name {
        "tab1" => exp::tab1(suite),
        "tab2" => exp::tab2(suite),
        "tab3" => exp::tab3(suite),
        "chars" => exp::chars(suite),
        "splits" => exp::splits(suite),
        "fig1" => exp::fig1(suite),
        "fig5" => exp::fig5(suite),
        "fig6" => exp::fig6(suite),
        "fig7" => exp::fig7(suite),
        "fig8" => exp::fig8(suite),
        "fig9" => exp::fig9(suite),
        "fig10" => exp::fig10(suite),
        "fig11" => exp::fig11(suite),
        "fig12" => exp::fig12(suite),
        "fig13" => exp::fig13(suite),
        "fig14" => exp::fig14(suite),
        "pipeline" => exp::pipeline(suite),
        "clusters" => exp::clusters(suite),
        "exceptions" => exp::exceptions(suite),
        "disambiguation" => exp::disambiguation(suite),
        "predictors" => exp::predictors(suite),
        "mshrs" => exp::mshrs(suite),
        "fig13perfect" => exp::fig13perfect(suite),
        "widthsweep" => exp::widthsweep(suite),
        "cpistack" => exp::cpistack(suite),
        "sampled" => exp::sampled(),
        "opt" => exp::opt(),
        "frontier" => exp::frontier(),
        _ => return None,
    };
    Some(table)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: exp <experiment>... | all\nexperiments: {}", ALL.join(" "));
        std::process::exit(2);
    }
    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment {w:?}; known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }

    let suite = if wanted.iter().all(|w| SUITE_FREE.contains(w)) {
        Vec::new()
    } else {
        let t0 = Instant::now();
        eprintln!("preparing 26-benchmark suite at scale {} ...", scale());
        let suite = prepare_suite(scale());
        eprintln!("prepared in {:.1}s", t0.elapsed().as_secs_f64());
        suite
    };

    let _ = fs::create_dir_all("results");
    for name in wanted {
        let t1 = Instant::now();
        let table = run_one(name, &suite).expect("validated above");
        let text = table.render();
        println!("{text}");
        eprintln!("[{name} took {:.1}s]", t1.elapsed().as_secs_f64());
        if let Err(e) = fs::write(format!("results/{name}.txt"), &text) {
            eprintln!("warning: could not write results/{name}.txt: {e}");
        }
    }
}
