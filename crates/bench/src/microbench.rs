//! A minimal, dependency-free stand-in for the slice of the Criterion API
//! the bench targets use.
//!
//! The repository builds in hermetic environments without registry access,
//! so the `[[bench]]` targets (which use `harness = false` and are plain
//! binaries) time themselves with `std::time` instead of pulling in the
//! Criterion crate. Only the API surface the benches actually call is
//! provided: `benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`/`iter`, and `finish`, plus the `criterion_group!` /
//! `criterion_main!` entry-point macros.
//!
//! Timing methodology: each benchmark runs one untimed warm-up call, then
//! `sample_size` timed samples. A sample times a batch of iterations sized
//! so the batch takes roughly a millisecond (calibrated from the warm-up).
//! The median per-iteration time is reported, with throughput derived from
//! the group's [`Throughput`] declaration when one is set.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver. `criterion_group!` calls this for you.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup { sample_size: 20, throughput: None }
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing sample and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Warm-up: one iteration, also used to calibrate the batch size so
        // each timed sample lasts on the order of a millisecond.
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = batch;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / batch as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{id:32} {median:>12.2?}/iter  {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{id:32} {median:>12.2?}/iter  {rate:>14.0} B/s");
            }
            None => println!("{id:32} {median:>12.2?}/iter"),
        }
        self
    }

    /// Ends the group. (Reporting is incremental, so this is a no-op.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness requests.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.sample_size(3).throughput(Throughput::Elements(8)).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 3, "warm-up plus samples should iterate, got {calls}");
    }
}
