//! Reference values transcribed from the paper, used by the harness to
//! print paper-vs-measured comparisons (EXPERIMENTS.md).

/// Table 1: braids per basic block (all braids / excluding singles).
pub static TABLE1: &[(&str, f64)] = &[
    ("bzip2", 2.5), ("crafty", 2.5), ("eon", 4.2), ("gap", 2.4), ("gcc", 2.4),
    ("gzip", 2.6), ("mcf", 2.0), ("parser", 2.7), ("perlbmk", 2.8), ("twolf", 3.1),
    ("vortex", 3.5), ("vpr", 2.8),
    ("ammp", 2.0), ("applu", 5.9), ("apsi", 4.7), ("art", 2.9), ("equake", 2.5),
    ("facerec", 2.7), ("fma3d", 2.8), ("galgel", 5.7), ("lucas", 3.7), ("mesa", 2.8),
    ("mgrid", 4.0), ("sixtrack", 3.1), ("swim", 6.6), ("wupwise", 3.6),
];

/// Table 2: braid size (instructions, including single-instruction braids).
pub static TABLE2_SIZE: &[(&str, f64)] = &[
    ("bzip2", 3.4), ("crafty", 3.2), ("eon", 2.0), ("gap", 2.5), ("gcc", 2.3),
    ("gzip", 3.4), ("mcf", 2.0), ("parser", 2.2), ("perlbmk", 2.3), ("twolf", 2.8),
    ("vortex", 2.1), ("vpr", 2.5),
    ("ammp", 2.8), ("applu", 2.9), ("apsi", 2.8), ("art", 2.6), ("equake", 2.4),
    ("facerec", 2.2), ("fma3d", 2.7), ("galgel", 2.0), ("lucas", 4.6), ("mesa", 2.1),
    ("mgrid", 13.2), ("sixtrack", 2.3), ("swim", 4.8), ("wupwise", 2.8),
];

/// Table 3: (internals, external inputs, external outputs) per braid.
pub static TABLE3: &[(&str, f64, f64, f64)] = &[
    ("bzip2", 2.7, 1.9, 0.8), ("crafty", 2.4, 1.7, 0.7), ("eon", 1.1, 1.5, 0.6),
    ("gap", 1.6, 1.5, 0.8), ("gcc", 1.4, 1.6, 0.7), ("gzip", 2.6, 2.1, 0.9),
    ("mcf", 1.0, 1.5, 0.6), ("parser", 1.2, 1.5, 0.7), ("perlbmk", 1.4, 1.4, 0.7),
    ("twolf", 2.0, 1.7, 0.6), ("vortex", 1.1, 1.7, 0.8), ("vpr", 1.6, 1.7, 0.8),
    ("ammp", 2.0, 1.9, 0.7), ("applu", 2.0, 1.7, 0.6), ("apsi", 2.1, 1.9, 0.6),
    ("art", 1.6, 1.9, 0.6), ("equake", 1.5, 1.7, 0.7), ("facerec", 1.3, 1.7, 0.8),
    ("fma3d", 2.1, 2.1, 0.8), ("galgel", 1.1, 1.7, 0.6), ("lucas", 4.1, 2.6, 0.7),
    ("mesa", 1.2, 1.9, 0.6), ("mgrid", 14.5, 5.9, 1.7), ("sixtrack", 1.3, 1.8, 0.7),
    ("swim", 4.5, 3.0, 0.7), ("wupwise", 2.2, 1.8, 0.7),
];

/// Headline aggregate results quoted in the paper's text.
pub mod headline {
    /// §1: average 8-wide speedup over 4-wide with perfect front end (Fig 1).
    pub const FIG1_8W_SPEEDUP: f64 = 1.44;
    /// §1: average 16-wide speedup over 4-wide (Fig 1).
    pub const FIG1_16W_SPEEDUP: f64 = 1.83;
    /// §1: fraction of values used exactly once.
    pub const FANOUT_ONCE: f64 = 0.70;
    /// §1: fraction of values used at most twice.
    pub const FANOUT_TWICE: f64 = 0.90;
    /// §1: fraction of values produced but never used.
    pub const DEAD_VALUES: f64 = 0.04;
    /// §1: fraction of values consumed within 32 instructions.
    pub const LIFETIME_32: f64 = 0.80;
    /// Table 1 averages: integer / floating point braids per block.
    pub const BRAIDS_PER_BLOCK_INT: f64 = 2.8;
    /// Floating-point braids per block.
    pub const BRAIDS_PER_BLOCK_FP: f64 = 3.8;
    /// §2: fraction of instructions that are single-instruction braids.
    pub const SINGLE_INST_FRACTION: f64 = 0.20;
    /// §2: fraction of single-instruction braids that are branches/nops.
    pub const SINGLE_BRANCH_NOP: f64 = 0.56;
    /// §4.2: OOO slowdown with 32 registers (Fig 5).
    pub const FIG5_32REGS: f64 = 0.92;
    /// §4.2: OOO slowdown with 16 registers (Fig 5).
    pub const FIG5_16REGS: f64 = 0.79;
    /// §4.2: braid perf with 6R/3W external ports vs full (Fig 7).
    pub const FIG7_63_PORTS: f64 = 0.995;
    /// §4.2: braid perf with 2 bypass values/cycle vs full (Fig 8).
    pub const FIG8_2BYPASS: f64 = 0.99;
    /// §4.3: fraction of braids with at most 32 instructions (Fig 10).
    pub const BRAIDS_LE_32: f64 = 0.99;
    /// §4.4: braid machine within 9% of the 8-wide OOO design (Fig 13).
    pub const FIG13_BRAID_VS_OOO: f64 = 0.91;
    /// §5.1: average external values produced per cycle.
    pub const EXT_VALUES_PER_CYCLE: f64 = 2.0;
    /// §5.1: performance gained from the 4-stage-shorter pipeline.
    pub const PIPELINE_GAIN: f64 = 0.0219;
    /// §3.1: fraction of braids split by the 8-internal-register bound.
    pub const WORKING_SET_SPLITS: f64 = 0.02;
    /// §3.1: fraction of braids split for memory ordering.
    pub const ORDER_SPLITS: f64 = 0.01;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_26() {
        assert_eq!(TABLE1.len(), 26);
        assert_eq!(TABLE2_SIZE.len(), 26);
        assert_eq!(TABLE3.len(), 26);
        // mgrid's big braids are the distinctive datum.
        let mgrid = TABLE2_SIZE.iter().find(|(n, _)| *n == "mgrid").unwrap();
        assert_eq!(mgrid.1, 13.2);
    }
}
