//! Plain-text result tables in the paper's row/column style.

use std::fmt::Write as _;

/// A formatted experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier ("Figure 13", "Table 1", ...).
    pub title: String,
    /// Column headers; the first column is the benchmark name.
    pub headers: Vec<String>,
    /// One row per benchmark plus summary rows.
    pub rows: Vec<Row>,
}

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (benchmark name or "average").
    pub name: String,
    /// One value per data column.
    pub values: Vec<f64>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, name: impl Into<String>, values: Vec<f64>) {
        let row = Row { name: name.into(), values };
        assert_eq!(
            row.values.len() + 1,
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Appends an arithmetic-mean summary row over the current rows.
    pub fn push_mean(&mut self, label: &str) {
        let n = self.rows.len().max(1) as f64;
        let cols = self.headers.len() - 1;
        let mut sums = vec![0.0; cols];
        for r in &self.rows {
            for (s, v) in sums.iter_mut().zip(&r.values) {
                *s += v;
            }
        }
        let values = sums.into_iter().map(|s| s / n).collect();
        self.rows.push(Row { name: label.to_string(), values });
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain([self.headers[0].len()])
            .max()
            .unwrap_or(8)
            + 2;
        let col_w = self.headers.iter().skip(1).map(|h| h.len().max(8) + 2).collect::<Vec<_>>();
        let _ = write!(out, "{:<name_w$}", self.headers[0]);
        for (h, w) in self.headers.iter().skip(1).zip(&col_w) {
            let _ = write!(out, "{h:>w$}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<name_w$}", r.name);
            for (v, w) in r.values.iter().zip(&col_w) {
                let _ = write!(out, "{v:>w$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Finds a row by name.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_averages() {
        let mut t = Table::new("Demo", &["bench", "ipc", "speedup"]);
        t.push("gcc", vec![2.0, 1.5]);
        t.push("mcf", vec![1.0, 0.5]);
        t.push_mean("average");
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("average"));
        let avg = t.row("average").unwrap();
        assert_eq!(avg.values, vec![1.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("Bad", &["bench", "a"]);
        t.push("x", vec![1.0, 2.0]);
    }
}
