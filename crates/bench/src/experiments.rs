//! The experiment implementations, one per paper table/figure.

use braid_core::config::{BraidConfig, CommonConfig, DepConfig, InOrderConfig, OooConfig};
use braid_core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid_core::profile::ValueProfile;
use braid_core::report::SimReport;

use crate::table::Table;
use crate::{geomean, paper, Prepared};

fn perfect_common() -> CommonConfig {
    CommonConfig::paper_8wide().perfect()
}

fn braid_cfg() -> BraidConfig {
    BraidConfig::paper_default()
}

fn run_braid_with(p: &Prepared, cfg: &BraidConfig) -> SimReport {
    BraidCore::new(cfg.clone()).run(&p.translation.program, &p.braid_trace).expect("runs")
}

fn run_ooo_with(p: &Prepared, cfg: &OooConfig) -> SimReport {
    OooCore::new(cfg.clone()).run(&p.workload.program, &p.trace).expect("runs")
}

/// Table 1: braids per basic block (measured vs paper, plus the
/// excluding-singles column).
pub fn tab1(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Table 1: braids per basic block",
        &["bench", "measured", "excl-singles", "paper"],
    );
    for p in suite {
        let s = &p.translation.stats;
        let reference = paper::TABLE1
            .iter()
            .find(|(n, _)| *n == p.workload.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        t.push(
            &p.workload.name,
            vec![s.braids_per_block.mean(), s.braids_per_block_excl.mean(), reference],
        );
    }
    t.push_mean("average");
    t
}

/// Table 2: braid size and width.
pub fn tab2(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Table 2: braid size and width",
        &["bench", "size", "size-excl", "width", "width-excl", "paper-size"],
    );
    for p in suite {
        let s = &p.translation.stats;
        let reference = paper::TABLE2_SIZE
            .iter()
            .find(|(n, _)| *n == p.workload.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        t.push(
            &p.workload.name,
            vec![s.size.mean(), s.size_excl.mean(), s.width.mean(), s.width_excl.mean(), reference],
        );
    }
    t.push_mean("average");
    t
}

/// Table 3: braid internal values, external inputs and outputs.
pub fn tab3(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Table 3: braid inputs and outputs",
        &["bench", "internals", "ext-in", "ext-out", "p-int", "p-in", "p-out"],
    );
    for p in suite {
        let s = &p.translation.stats;
        let (pi, pin, pout) = paper::TABLE3
            .iter()
            .find(|(n, ..)| *n == p.workload.name)
            .map(|&(_, a, b, c)| (a, b, c))
            .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        t.push(
            &p.workload.name,
            vec![s.internals.mean(), s.ext_inputs.mean(), s.ext_outputs.mean(), pi, pin, pout],
        );
    }
    t.push_mean("average");
    t
}

/// §1 characterization: value fanout and lifetime (dynamic).
pub fn chars(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Value characterization (paper: once>=0.70, <=2 ~0.90, dead ~0.04, life32 ~0.80)",
        &["bench", "read-once", "read<=2", "dead", "life<=32"],
    );
    for p in suite {
        let vp = ValueProfile::measure(&p.workload.program, &p.trace);
        t.push(
            &p.workload.name,
            vec![vp.read_once(), vp.read_at_most_twice(), vp.dead(), vp.lifetime_within(32)],
        );
    }
    t.push_mean("average");
    t
}

/// §3.1 split rates: braids split for the internal working set (~2%) and
/// for ordering (<1%), plus single-instruction braid shares.
pub fn splits(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Braid splits and singles (paper: ws ~2%, order <1%, singles 20% of insts, 56% br/nop)",
        &["bench", "ws-split", "ord-split", "single-insts", "single-brnop"],
    );
    for p in suite {
        let s = &p.translation.stats;
        let total = s.total_braids.max(1) as f64;
        t.push(
            &p.workload.name,
            vec![
                s.working_set_splits as f64 / total,
                s.order_splits as f64 / total,
                s.single_inst_fraction(),
                if s.single_insts == 0 {
                    0.0
                } else {
                    s.single_branch_or_nop as f64 / s.single_insts as f64
                },
            ],
        );
    }
    t.push_mean("average");
    t
}

/// Figure 1: 8- and 16-wide OOO speedup over 4-wide with a perfect front
/// end and perfect caches.
pub fn fig1(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Figure 1: potential of wider issue (perfect BP + caches; paper avg 1.44 / 1.83)",
        &["bench", "8-wide", "16-wide"],
    );
    for p in suite {
        let ipc = |width: u32| {
            let mut cfg = OooConfig::paper_wide(width);
            cfg.common = cfg.common.perfect();
            run_ooo_with(p, &cfg).ipc()
        };
        let (w4, w8, w16) = (ipc(4), ipc(8), ipc(16));
        t.push(&p.workload.name, vec![w8 / w4, w16 / w4]);
    }
    let g8 = geomean(t.rows.iter().map(|r| r.values[0]));
    let g16 = geomean(t.rows.iter().map(|r| r.values[1]));
    t.push("average", vec![g8, g16]);
    t
}

/// Figure 5: conventional OOO vs in-flight register count (paper: 32 →
/// −8%, 16 → −21%).
pub fn fig5(suite: &[Prepared]) -> Table {
    let sweep = [256u32, 64, 32, 16, 8];
    let headers: Vec<String> = sweep.iter().map(|r| format!("r{r}")).collect();
    let mut t = Table::new(
        "Figure 5: OOO performance vs registers (normalized to 256)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = {
            let cfg = OooConfig::paper_8wide();
            run_ooo_with(p, &cfg).ipc()
        };
        let values = sweep
            .iter()
            .map(|&regs| {
                let mut cfg = OooConfig::paper_8wide();
                cfg.regs = regs;
                run_ooo_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 6: braid machine vs external register file entries (paper: 8 ≈
/// full, drop at ≤4).
pub fn fig6(suite: &[Prepared]) -> Table {
    let sweep = [64u32, 32, 16, 8, 4, 2, 1];
    let headers: Vec<String> = sweep.iter().map(|r| format!("e{r}")).collect();
    let mut t = Table::new(
        "Figure 6: braid performance vs external registers (normalized to 64)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = {
            let mut cfg = braid_cfg();
            cfg.external_regs = 64;
            run_braid_with(p, &cfg).ipc()
        };
        let values = sweep
            .iter()
            .map(|&regs| {
                let mut cfg = braid_cfg();
                cfg.external_regs = regs;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 7: braid machine vs external register file ports (paper: 6R/3W
/// within 0.5% of 16R/8W).
pub fn fig7(suite: &[Prepared]) -> Table {
    let sweep = [(16u32, 8u32), (8, 4), (6, 3), (4, 2)];
    let headers: Vec<String> = sweep.iter().map(|(r, w)| format!("{r}R/{w}W")).collect();
    let mut t = Table::new(
        "Figure 7: braid performance vs external RF ports (normalized to 16R/8W)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = {
            let mut cfg = braid_cfg();
            cfg.ext_read_ports = 16;
            cfg.ext_write_ports = 8;
            run_braid_with(p, &cfg).ipc()
        };
        let values = sweep
            .iter()
            .map(|&(r, w)| {
                let mut cfg = braid_cfg();
                cfg.ext_read_ports = r;
                cfg.ext_write_ports = w;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 8: braid machine vs bypass bandwidth (paper: 2/cycle within 1%).
pub fn fig8(suite: &[Prepared]) -> Table {
    let sweep = [8u32, 4, 2, 1];
    let headers: Vec<String> = sweep.iter().map(|b| format!("b{b}")).collect();
    let mut t = Table::new(
        "Figure 8: braid performance vs bypass paths (normalized to 8/cycle)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = {
            let mut cfg = braid_cfg();
            cfg.bypass_per_cycle = 8;
            run_braid_with(p, &cfg).ipc()
        };
        let values = sweep
            .iter()
            .map(|&b| {
                let mut cfg = braid_cfg();
                cfg.bypass_per_cycle = b;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

fn ooo_8wide_baseline(p: &Prepared) -> f64 {
    run_ooo_with(p, &OooConfig::paper_8wide()).ipc()
}

/// Figure 9: braid machine vs number of BEUs, normalized to the 8-wide
/// conventional OOO machine.
pub fn fig9(suite: &[Prepared]) -> Table {
    let sweep = [1u32, 2, 4, 8, 16];
    let headers: Vec<String> = sweep.iter().map(|b| format!("beu{b}")).collect();
    let mut t = Table::new(
        "Figure 9: braid performance vs BEUs (normalized to 8-wide OOO)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = ooo_8wide_baseline(p);
        let values = sweep
            .iter()
            .map(|&b| {
                let mut cfg = braid_cfg();
                cfg.beus = b;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 10: braid machine vs FIFO queue entries (paper: 32 suffice).
pub fn fig10(suite: &[Prepared]) -> Table {
    let sweep = [4u32, 8, 16, 32, 64];
    let headers: Vec<String> = sweep.iter().map(|b| format!("q{b}")).collect();
    let mut t = Table::new(
        "Figure 10: braid performance vs FIFO entries (normalized to 8-wide OOO)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = ooo_8wide_baseline(p);
        let values = sweep
            .iter()
            .map(|&q| {
                let mut cfg = braid_cfg();
                cfg.fifo_entries = q;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 11: braid machine vs scheduling window size (paper: steep 1→2,
/// plateau after).
pub fn fig11(suite: &[Prepared]) -> Table {
    let sweep = [1u32, 2, 4, 8];
    let headers: Vec<String> = sweep.iter().map(|w| format!("w{w}")).collect();
    let mut t = Table::new(
        "Figure 11: braid performance vs scheduling window (normalized to 8-wide OOO)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = ooo_8wide_baseline(p);
        let values = sweep
            .iter()
            .map(|&w| {
                let mut cfg = braid_cfg();
                cfg.window_size = w;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 12: scheduling window and FU count swept together.
pub fn fig12(suite: &[Prepared]) -> Table {
    let sweep = [1u32, 2, 4, 8];
    let headers: Vec<String> = sweep.iter().map(|w| format!("w{w}f{w}")).collect();
    let mut t = Table::new(
        "Figure 12: braid performance vs window = FUs (normalized to 8-wide OOO)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = ooo_8wide_baseline(p);
        let values = sweep
            .iter()
            .map(|&w| {
                let mut cfg = braid_cfg();
                cfg.window_size = w;
                cfg.fus_per_beu = w;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 13: the four paradigms at 4-, 8- and 16-wide, normalized to the
/// 8-wide conventional OOO machine.
pub fn fig13(suite: &[Prepared]) -> Table {
    let widths = [4u32, 8, 16];
    let mut headers = vec!["bench".to_string()];
    for w in widths {
        for core in ["io", "dep", "braid", "ooo"] {
            headers.push(format!("{core}{w}"));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 13: in-order / dep / braid / OOO at 4, 8, 16-wide (normalized to 8-wide OOO)",
        &header_refs,
    );
    for p in suite {
        let base = ooo_8wide_baseline(p);
        let mut values = Vec::new();
        for w in widths {
            let io = InOrderCore::new(InOrderConfig::paper_wide(w))
                .run(&p.workload.program, &p.trace)
                .expect("runs")
                .ipc();
            let dep = DepSteerCore::new(DepConfig::paper_wide(w))
                .run(&p.workload.program, &p.trace)
                .expect("runs")
                .ipc();
            let braid = run_braid_with(p, &BraidConfig::paper_wide(w)).ipc();
            let ooo = run_ooo_with(p, &OooConfig::paper_wide(w)).ipc();
            values.extend([io / base, dep / base, braid / base, ooo / base]);
        }
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 14: equal functional units — 4 BEUs × 2 FUs vs 8 BEUs × 1 FU,
/// normalized to the default 8 BEUs × 2 FUs.
pub fn fig14(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Figure 14: equal FU budget (normalized to 8 BEUs x 2 FUs)",
        &["bench", "4beu-2fu", "8beu-1fu"],
    );
    for p in suite {
        let base = run_braid_with(p, &braid_cfg()).ipc();
        let mut cfg42 = braid_cfg();
        cfg42.beus = 4;
        let mut cfg81 = braid_cfg();
        cfg81.fus_per_beu = 1;
        t.push(
            &p.workload.name,
            vec![
                run_braid_with(p, &cfg42).ipc() / base,
                run_braid_with(p, &cfg81).ipc() / base,
            ],
        );
    }
    t.push_mean("average");
    t
}

/// §5.1: the 4-stage-shorter pipeline (19- vs 23-cycle misprediction
/// penalty) gains ~2.19% on average.
pub fn pipeline(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Pipeline shortening: braid with 19- vs 23-cycle penalty (paper gain ~2.19%)",
        &["bench", "speedup", "ext-vals/cycle"],
    );
    for p in suite {
        let short = run_braid_with(p, &braid_cfg());
        let mut long_cfg = braid_cfg();
        long_cfg.common.mispredict_penalty = 23;
        let long = run_braid_with(p, &long_cfg);
        t.push(
            &p.workload.name,
            vec![short.ipc() / long.ipc(), short.external_values_per_cycle],
        );
    }
    t.push_mean("average");
    t
}

/// The headline Figure 13 claim, extracted: braid vs OOO at 8-wide.
pub fn braid_vs_ooo_8wide(suite: &[Prepared]) -> f64 {
    let ratios: Vec<f64> = suite
        .iter()
        .map(|p| {
            let ooo = ooo_8wide_baseline(p);
            let braid = run_braid_with(p, &braid_cfg()).ipc();
            braid / ooo
        })
        .collect();
    geomean(ratios)
}

/// Sanity helper used by integration tests: perfect-frontend IPC of every
/// paradigm on one prepared workload.
pub fn paradigm_ipcs(p: &Prepared) -> [f64; 4] {
    let mut io_cfg = InOrderConfig::paper_8wide();
    io_cfg.common = perfect_common();
    io_cfg.common.mispredict_penalty = 19;
    let mut dep_cfg = DepConfig::paper_8wide();
    dep_cfg.common = perfect_common();
    let mut braid_config = braid_cfg();
    braid_config.common = perfect_common();
    braid_config.common.mispredict_penalty = 19;
    let mut ooo_cfg = OooConfig::paper_8wide();
    ooo_cfg.common = perfect_common();
    [
        InOrderCore::new(io_cfg).run(&p.workload.program, &p.trace).expect("runs").ipc(),
        DepSteerCore::new(dep_cfg).run(&p.workload.program, &p.trace).expect("runs").ipc(),
        run_braid_with(p, &braid_config).ipc(),
        run_ooo_with(p, &ooo_cfg).ipc(),
    ]
}

/// Ablation (paper §5.2 future direction): BEU clustering with slower
/// cross-cluster value synchronization, normalized to the flat machine.
pub fn clusters(suite: &[Prepared]) -> Table {
    let sweep = [(1u32, 0u64), (2, 2), (4, 2), (4, 4)];
    let headers: Vec<String> =
        sweep.iter().map(|(c, d)| format!("c{c}d{d}")).collect();
    let mut t = Table::new(
        "Clustering ablation: braid clusters x inter-cluster delay (normalized to flat)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let base = run_braid_with(p, &braid_cfg()).ipc();
        let values = sweep
            .iter()
            .map(|&(c, d)| {
                let mut cfg = braid_cfg();
                cfg.clusters = c;
                cfg.inter_cluster_delay = d;
                run_braid_with(p, &cfg).ipc() / base
            })
            .collect();
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Ablation (paper §3.4): exception cost in the braid machine's
/// single-BEU in-order exception mode, at one exception per 2000
/// instructions with a 200-cycle handler.
pub fn exceptions(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Exception-mode ablation: slowdown with exceptions every 2000 insts (200-cycle handler)",
        &["bench", "slowdown", "taken"],
    );
    for p in suite {
        let core = braid_core::cores::BraidCore::new(braid_cfg());
        let clean = core.run(&p.translation.program, &p.braid_trace).expect("runs");
        let points: Vec<u64> =
            (0..p.braid_trace.len() as u64).step_by(2000).skip(1).collect();
        let exc = core
            .run_with_exceptions(&p.translation.program, &p.braid_trace, &points, 200)
            .expect("runs");
        t.push(
            &p.workload.name,
            vec![exc.cycles as f64 / clean.cycles as f64, exc.exceptions_taken as f64],
        );
    }
    t.push_mean("average");
    t
}

/// Ablation: conservative memory disambiguation (loads wait for every
/// older store's address generation) vs the default perfect
/// memory-dependence prediction, for both the braid and OOO machines.
pub fn disambiguation(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Disambiguation ablation: conservative LSQ relative to speculative",
        &["bench", "braid", "ooo"],
    );
    for p in suite {
        let braid_spec = run_braid_with(p, &braid_cfg()).ipc();
        let mut bc = braid_cfg();
        bc.common.conservative_disambiguation = true;
        let braid_cons = run_braid_with(p, &bc).ipc();
        let ooo_spec = run_ooo_with(p, &OooConfig::paper_8wide()).ipc();
        let mut oc = OooConfig::paper_8wide();
        oc.common.conservative_disambiguation = true;
        let ooo_cons = run_ooo_with(p, &oc).ipc();
        t.push(&p.workload.name, vec![braid_cons / braid_spec, ooo_cons / ooo_spec]);
    }
    t.push_mean("average");
    t
}

/// Predictor comparison: the paper's perceptron vs classic gshare vs
/// perfect prediction, on both the braid and OOO machines (IPC normalized
/// to the perceptron).
pub fn predictors(suite: &[Prepared]) -> Table {
    use braid_core::config::PredictorKind;
    let mut t = Table::new(
        "Predictor comparison (normalized to the paper's perceptron)",
        &["bench", "b-gshare", "b-perfect", "o-gshare", "o-perfect", "perc-acc"],
    );
    for p in suite {
        let braid_base = run_braid_with(p, &braid_cfg());
        let mut bg = braid_cfg();
        bg.common.predictor = PredictorKind::Gshare;
        let mut bp = braid_cfg();
        bp.common.perfect_branch_predictor = true;
        let ooo_base = run_ooo_with(p, &OooConfig::paper_8wide()).ipc();
        let mut og = OooConfig::paper_8wide();
        og.common.predictor = PredictorKind::Gshare;
        let mut op = OooConfig::paper_8wide();
        op.common.perfect_branch_predictor = true;
        t.push(
            &p.workload.name,
            vec![
                run_braid_with(p, &bg).ipc() / braid_base.ipc(),
                run_braid_with(p, &bp).ipc() / braid_base.ipc(),
                run_ooo_with(p, &og).ipc() / ooo_base,
                run_ooo_with(p, &op).ipc() / ooo_base,
                braid_base.branch_accuracy.rate(),
            ],
        );
    }
    t.push_mean("average");
    t
}

/// Ablation: finite miss-handling registers (MSHRs) bound memory-level
/// parallelism; the default model is unlimited.
pub fn mshrs(suite: &[Prepared]) -> Table {
    let sweep = [0u32, 16, 4, 1];
    let headers: Vec<String> = sweep
        .iter()
        .map(|&m| if m == 0 { "inf".to_string() } else { format!("m{m}") })
        .collect();
    let mut t = Table::new(
        "MSHR ablation: braid and OOO vs outstanding-miss limit (normalized to unlimited)",
        &std::iter::once("bench")
            .chain(headers.iter().map(|s| s.as_str()))
            .chain(["ooo-m4"])
            .collect::<Vec<_>>(),
    );
    for p in suite {
        let braid_base = run_braid_with(p, &braid_cfg()).ipc();
        let mut values: Vec<f64> = sweep
            .iter()
            .map(|&m| {
                let mut cfg = braid_cfg();
                cfg.common.mem.mshrs = m;
                run_braid_with(p, &cfg).ipc() / braid_base
            })
            .collect();
        let ooo_base = run_ooo_with(p, &OooConfig::paper_8wide()).ipc();
        let mut oc = OooConfig::paper_8wide();
        oc.common.mem.mshrs = 4;
        values.push(run_ooo_with(p, &oc).ipc() / ooo_base);
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Figure 13 with a perfect front end and perfect caches: isolates the
/// execution-core comparison from memory and prediction effects (the
/// regime where the paper's "within 9%" claim reproduces directly).
pub fn fig13perfect(suite: &[Prepared]) -> Table {
    let mut t = Table::new(
        "Figure 13 (perfect front end + caches): braid vs OOO at 8-wide",
        &["bench", "io", "dep", "braid", "ooo", "braid/ooo"],
    );
    for p in suite {
        let [io, dep, braid, ooo] = paradigm_ipcs(p);
        t.push(&p.workload.name, vec![io, dep, braid, ooo, braid / ooo]);
    }
    t.push_mean("average");
    t
}

/// Figure 13 regenerated through the parallel sweep engine: the same
/// (workload × core × width) grid as [`fig13`], but expanded as a
/// `braid_sweep` grid, sharded across all host cores by the work-stealing
/// pool, and read back from the deterministic aggregate. Absolute IPC per
/// point (no normalization), so the table doubles as a cross-check that
/// the sweep engine reproduces the serial experiment paths.
pub fn widthsweep(suite: &[Prepared]) -> Table {
    use braid_sweep::{run_sweep, CoreModel, SweepSpec};

    let widths = [4u32, 8, 16];
    let mut spec = SweepSpec::new("widthsweep");
    spec.workloads = suite.iter().map(|p| p.workload.name.clone()).collect();
    spec.scale = crate::scale();
    spec.widths = widths.to_vec();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let run = run_sweep(&spec, threads, None, false).expect("no snapshot I/O involved");

    let mut headers = vec!["bench".to_string()];
    for w in widths {
        for core in CoreModel::ALL {
            headers.push(format!("{core}{w}"));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Width sweep (parallel engine): absolute IPC at 4, 8, 16-wide",
        &header_refs,
    );
    // Outcomes arrive in expansion order: workload, core, width. Regroup
    // into one row per workload with width-major columns.
    for (wi, p) in suite.iter().enumerate() {
        let mut values = vec![0.0; widths.len() * CoreModel::ALL.len()];
        for (ci, _) in CoreModel::ALL.iter().enumerate() {
            for (xi, _) in widths.iter().enumerate() {
                let idx = (wi * CoreModel::ALL.len() + ci) * widths.len() + xi;
                let o = &run.outcomes[idx];
                let s = o.stats.as_ref().unwrap_or_else(|e| {
                    panic!("{}: sweep point failed: {e}", o.point.key())
                });
                values[xi * CoreModel::ALL.len() + ci] = s.ipc();
            }
        }
        t.push(&p.workload.name, values);
    }
    t.push_mean("average");
    t
}

/// Two-tier execution model: sampled-IPC accuracy and host-throughput
/// speedups over the 8 hand-written kernels × 4 cores. Per row: exact IPC
/// (full tier), estimated IPC (sampled tier at the default full-coverage
/// window), signed relative error in percent, and the functional and
/// sampled tiers' host-throughput speedups over the full simulation.
///
/// The functional tier reports no IPC at all — its column is purely the
/// host-side speedup that makes fast-forwarding worthwhile. The sampled
/// tier's speedup is below 1 on these tiny kernels (the default window
/// covers every period wall-to-wall, trading speed for accuracy); it
/// materializes once instruction counts dwarf the sampling period.
pub fn sampled() -> Table {
    use braid_core::processor::{run_tier, CoreConfig, TierReport};
    use braid_core::{SamplingConfig, Tier};

    let cores = [
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ];
    let sampling = SamplingConfig { lockstep: false, ..SamplingConfig::default() };
    let mut t = Table::new(
        "Sampled tier: estimated vs exact IPC and host speedups (default window)",
        &["kernel:core", "exact-ipc", "est-ipc", "err%", "func-x", "samp-x"],
    );
    for w in braid_workloads::kernel_suite() {
        for core in &cores {
            let run = |tier| {
                run_tier(&w.program, core, tier, w.fuel, &sampling)
                    .unwrap_or_else(|e| panic!("{}:{}: {tier} tier failed: {e}", w.name, core.name()))
            };
            let full = run(Tier::Full);
            let func = run(Tier::Func);
            let samp = run(Tier::Sampled);
            let TierReport::Full(exact) = &full else { unreachable!("full tier") };
            let est_ipc = samp.ipc().unwrap_or(0.0);
            t.push(
                format!("{}:{}", w.name, core.name()),
                vec![
                    exact.ipc(),
                    est_ipc,
                    100.0 * (est_ipc / exact.ipc() - 1.0),
                    full.host_nanos() as f64 / func.host_nanos().max(1) as f64,
                    full.host_nanos() as f64 / samp.host_nanos().max(1) as f64,
                ],
            );
        }
    }
    t.push_mean("average");
    t
}

/// `braidc -O` evaluation: the sound static bound, the canonical
/// partition's simulated cycles, the partition-search winner's cycles, the
/// cycles recovered by the search, and the static prediction error
/// (simulated over bound) on every hand-written kernel plus the
/// communication-dominated compiled loop nests (`ln_chains_*`), whose
/// serialized canonical braids give the search non-tied rows.
pub fn opt() -> Table {
    use braid_analyze::{search, SearchConfig};

    let mut t = Table::new(
        "braidc -O: static bound vs canonical vs searched partition (braid core)",
        &["kernel", "bound", "canonical", "optimized", "recovered%", "pred-err%"],
    );
    let mut suite = braid_workloads::kernel_suite();
    suite.extend(braid_workloads::loopnest_opt_suite());
    for w in suite {
        let cfg = SearchConfig { fuel: w.fuel, ..SearchConfig::default() };
        let out = search(&w.program, &braid_cfg(), &cfg)
            .unwrap_or_else(|e| panic!("{}: search failed: {e}", w.name));
        let winner = out.winner().simulated_cycles.expect("winner is simulated") as f64;
        let canonical = out.canonical_cycles as f64;
        let bound = out.bound_cycles as f64;
        t.push(
            w.name.clone(),
            vec![
                bound,
                canonical,
                winner,
                100.0 * out.cycles_recovered() as f64 / canonical.max(1.0),
                100.0 * (winner / bound.max(1.0) - 1.0),
            ],
        );
    }
    t.push_mean("average");
    t
}

/// The workload frontier: every curated compiled loop nest (`ln_*`,
/// braid-lang sources through the `braidc` pipeline) run full-tier on all
/// four cores. Columns are per-core IPC plus how much of the out-of-order
/// core's performance the braid core retains — the paper's headline
/// question asked of compiler-generated code instead of hand-written
/// kernels.
pub fn frontier() -> Table {
    use braid_core::processor::{run_tier, CoreConfig, TierReport};
    use braid_core::{SamplingConfig, Tier};

    let cores = [
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ];
    let sampling = SamplingConfig::default();
    let mut t = Table::new(
        "Workload frontier: compiled loop nests on all four cores (full tier)",
        &["nest", "insts", "in-ipc", "dep-ipc", "ooo-ipc", "braid-ipc", "braid/ooo%"],
    );
    for w in braid_workloads::loopnest_suite() {
        let mut insts = 0.0;
        let mut ipc = Vec::with_capacity(cores.len());
        for core in &cores {
            let rep = run_tier(&w.program, core, Tier::Full, w.fuel, &sampling)
                .unwrap_or_else(|e| panic!("{}:{}: full tier failed: {e}", w.name, core.name()));
            let TierReport::Full(exact) = &rep else { unreachable!("full tier") };
            if ipc.is_empty() {
                // The untranslated dynamic count; braid translation
                // changes the static program, not the work.
                insts = exact.instructions as f64;
            }
            ipc.push(exact.ipc());
        }
        let (ooo_ipc, braid_ipc) = (ipc[2], ipc[3]);
        let mut row = vec![insts];
        row.extend(ipc.iter().copied());
        row.push(100.0 * braid_ipc / ooo_ipc.max(f64::MIN_POSITIVE));
        t.push(w.name.clone(), row);
    }
    t.push_mean("average");
    t
}

/// CPI-stack breakdown: where every cycle goes on each paradigm,
/// aggregated across the whole suite through the parallel sweep engine
/// (`braid_sweep::cpi_by_core`). Each column is one stall cause as a
/// percentage of total cycles; rows sum to 100 because the engine charges
/// every cycle to exactly one cause.
pub fn cpistack(suite: &[Prepared]) -> Table {
    use braid_core::StallCause;
    use braid_sweep::{cpi_by_core, run_sweep, SweepSpec};

    let mut spec = SweepSpec::new("cpistack");
    spec.workloads = suite.iter().map(|p| p.workload.name.clone()).collect();
    spec.scale = crate::scale();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let run = run_sweep(&spec, threads, None, false).expect("no snapshot I/O involved");

    let mut headers = vec!["core".to_string()];
    headers.extend(StallCause::ALL.iter().map(|c| c.key().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "CPI stack: percent of cycles charged to each cause, whole suite",
        &header_refs,
    );
    for (core, stack) in cpi_by_core(&run) {
        let values =
            StallCause::ALL.iter().map(|&c| 100.0 * stack.fraction(c)).collect();
        t.push(core.name(), values);
    }
    t
}
