//! Deterministic fault injection.
//!
//! Each fault class perturbs one layer of the stack — braid annotation
//! bits, program structure, assembler input, or machine configuration —
//! and asserts the whole pipeline fails *typed*: an error value, or a
//! clean [`DivergenceReport`](crate::oracle::DivergenceReport) from the
//! co-simulation oracle. A panic anywhere, or a hang the livelock
//! watchdog does not catch, is a verification failure.
//!
//! Faults are seeded from [`braid_prng`], so a failing case is replayable
//! from its `(kind, seed)` pair alone.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use braid_compiler::{translate, Translation, TranslatorConfig};
use braid_core::config::BraidConfig;
use braid_core::cores::BraidCore;
use braid_prng::Rng;

use crate::oracle::{cosim_braid, run_golden, GoldenRun, OracleError};

/// Instruction budget for every faulted run: small enough to bound the
/// campaign, large enough that the clean program halts well within it.
const FUEL: u64 = 50_000;

/// The base program every structural fault perturbs: loops, loads, stores
/// and a conditional branch, so each fault class has something to corrupt.
pub(crate) const BASE_SRC: &str = r#"
    addi r0, #150, r1
    addi r0, #0x2000, r9
loop:
    addq r1, r1, r2
    addq r2, r1, r2
    slli r2, #3, r3
    stq  r2, 0(r9) @stack:1
    ldq  r4, 0(r9) @stack:1
    addq r4, r3, r5
    stq  r5, 8(r9) @stack:2
    andi r5, #1, r6
    beq  r6, skip
    addi r7, #1, r7
skip:
    subi r1, #1, r1
    bne  r1, loop
    halt
"#;

/// The catalogue of injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Toggle an `S` (braid start) bit, merging or splitting braids and
    /// desynchronizing the internal-context lifetime.
    FlipStart,
    /// Toggle a `T` (read-internal) source bit, pointing a source at an
    /// internal value that may not exist.
    FlipTemp,
    /// Toggle an `I` (write-internal) destination bit.
    FlipInternal,
    /// Toggle an `E` (write-external) destination bit, hiding a value the
    /// rest of the program needs.
    FlipExternal,
    /// Corrupt a non-control immediate (wrong literal or displacement).
    CorruptImmediate,
    /// Point a branch outside the program.
    BadBranchTarget,
    /// Truncate the translated program mid-braid (drops `halt` and leaves
    /// dangling control targets).
    TruncateBraid,
    /// Mark more values internal than the 8-entry internal file holds.
    InternalOverflow,
    /// Retarget one source-register index to a different register of the
    /// same class: the instruction stays well-formed, only the dataflow is
    /// wrong.
    CorruptRegIndex,
    /// Feed the assembler syntactically corrupted source text.
    MalformedAsm,
    /// Run the braid core with an impossible configuration.
    BadConfig,
    /// Starve external-register allocation so the pipeline livelocks; the
    /// watchdog must convert the hang into a typed error.
    Starvation,
}

impl FaultKind {
    /// Every fault class, in catalogue order.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::FlipStart,
        FaultKind::FlipTemp,
        FaultKind::FlipInternal,
        FaultKind::FlipExternal,
        FaultKind::CorruptImmediate,
        FaultKind::BadBranchTarget,
        FaultKind::TruncateBraid,
        FaultKind::InternalOverflow,
        FaultKind::CorruptRegIndex,
        FaultKind::MalformedAsm,
        FaultKind::BadConfig,
        FaultKind::Starvation,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FlipStart => "flip-S",
            FaultKind::FlipTemp => "flip-T",
            FaultKind::FlipInternal => "flip-I",
            FaultKind::FlipExternal => "flip-E",
            FaultKind::CorruptImmediate => "corrupt-imm",
            FaultKind::BadBranchTarget => "bad-branch-target",
            FaultKind::TruncateBraid => "truncate-braid",
            FaultKind::InternalOverflow => "internal-overflow",
            FaultKind::CorruptRegIndex => "corrupt-reg",
            FaultKind::MalformedAsm => "malformed-asm",
            FaultKind::BadConfig => "bad-config",
            FaultKind::Starvation => "starvation",
        }
    }
}

/// One injected fault: its class and the PRNG seed that drove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fault class.
    pub kind: FaultKind,
    /// Seed for the perturbation choices (replayable).
    pub seed: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind.name(), self.seed)
    }
}

/// How the stack responded to one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// A typed error surfaced (`ExecError`, `TranslateError`, `SimError`,
    /// an assembler error, or a failed-retirement report). Desired.
    TypedError(String),
    /// The co-simulation oracle caught a wrong answer and produced a
    /// structured divergence report. Desired.
    Divergence(String),
    /// The fault had no architecturally visible effect.
    Masked,
    /// Something panicked. Always a verification failure.
    Panicked(String),
}

/// One fault plus its observed outcome.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The injected fault.
    pub fault: Fault,
    /// What happened.
    pub outcome: FaultOutcome,
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Every case, in injection order.
    pub reports: Vec<FaultReport>,
}

impl CampaignSummary {
    fn count(&self, f: impl Fn(&FaultOutcome) -> bool) -> usize {
        self.reports.iter().filter(|r| f(&r.outcome)).count()
    }

    /// Cases that produced a typed error.
    pub fn typed_errors(&self) -> usize {
        self.count(|o| matches!(o, FaultOutcome::TypedError(_)))
    }

    /// Cases the oracle flagged as divergent.
    pub fn divergences(&self) -> usize {
        self.count(|o| matches!(o, FaultOutcome::Divergence(_)))
    }

    /// Cases with no observable effect.
    pub fn masked(&self) -> usize {
        self.count(|o| matches!(o, FaultOutcome::Masked))
    }

    /// Cases that panicked — must be zero.
    pub fn panics(&self) -> usize {
        self.count(|o| matches!(o, FaultOutcome::Panicked(_)))
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} typed errors, {} divergences, {} masked, {} panics",
            self.reports.len(),
            self.typed_errors(),
            self.divergences(),
            self.masked(),
            self.panics()
        )
    }
}

/// Classifies the oracle's response to a (possibly corrupted) translation.
fn evaluate(t: &Translation, golden: &GoldenRun) -> FaultOutcome {
    match cosim_braid(t, "fault", FUEL, golden) {
        Err(OracleError::Diverged(d)) => FaultOutcome::Divergence(d.to_string()),
        Err(e) => FaultOutcome::TypedError(e.to_string()),
        Ok(trace) => {
            match BraidCore::new(BraidConfig::paper_default()).run(&t.program, &trace) {
                Err(e) => FaultOutcome::TypedError(e.to_string()),
                Ok(r) if r.instructions != trace.len() as u64 => FaultOutcome::TypedError(
                    format!("braid retired {} of {}", r.instructions, trace.len()),
                ),
                Ok(_) => FaultOutcome::Masked,
            }
        }
    }
}

/// Picks an instruction index satisfying `pred`, if any exists.
fn pick_inst(
    rng: &mut Rng,
    t: &Translation,
    pred: impl Fn(&braid_isa::Inst) -> bool,
) -> Option<usize> {
    let candidates: Vec<usize> = t
        .program
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| pred(i))
        .map(|(idx, _)| idx)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(*rng.choose(&candidates))
    }
}

fn inject(fault: Fault, golden: &GoldenRun, clean: &Translation) -> FaultOutcome {
    let mut rng = Rng::seed_from_u64(fault.seed);
    let mut t = clean.clone();
    match fault.kind {
        FaultKind::FlipStart => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| !i.opcode.is_branch()) {
                t.program.insts[i].braid.start = !t.program.insts[i].braid.start;
            }
            evaluate(&t, golden)
        }
        FaultKind::FlipTemp => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| i.opcode.num_srcs() > 0) {
                let slot = rng.gen_range(0..t.program.insts[i].opcode.num_srcs());
                t.program.insts[i].braid.t[slot] = !t.program.insts[i].braid.t[slot];
            }
            evaluate(&t, golden)
        }
        FaultKind::FlipInternal => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| i.dest.is_some()) {
                t.program.insts[i].braid.internal = !t.program.insts[i].braid.internal;
            }
            evaluate(&t, golden)
        }
        FaultKind::FlipExternal => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| i.dest.is_some()) {
                t.program.insts[i].braid.external = !t.program.insts[i].braid.external;
            }
            evaluate(&t, golden)
        }
        FaultKind::CorruptImmediate => {
            if let Some(i) =
                pick_inst(&mut rng, &t, |i| i.target().is_none() && !i.opcode.is_branch())
            {
                t.program.insts[i].imm ^= 1 << rng.gen_range(0..12u32);
            }
            evaluate(&t, golden)
        }
        FaultKind::BadBranchTarget => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| i.target().is_some()) {
                let beyond = t.program.insts.len() as u32 + rng.gen_range(1..1000u32);
                t.program.insts[i].set_target(beyond);
            }
            evaluate(&t, golden)
        }
        FaultKind::TruncateBraid => {
            let cut = rng.gen_range(1..t.program.insts.len());
            t.program.insts.truncate(cut);
            t.braid_of_inst.truncate(cut);
            evaluate(&t, golden)
        }
        FaultKind::InternalOverflow => {
            // Mark every destination in a window internal: far more live
            // internal values than the 8-entry file provides.
            let start = rng.gen_range(0..t.program.insts.len().saturating_sub(1));
            let end = (start + 12).min(t.program.insts.len());
            for inst in &mut t.program.insts[start..end] {
                if inst.dest.is_some() {
                    inst.braid.internal = true;
                }
            }
            evaluate(&t, golden)
        }
        FaultKind::CorruptRegIndex => {
            if let Some(i) = pick_inst(&mut rng, &t, |i| {
                (0..i.opcode.num_srcs()).any(|s| i.srcs[s].is_some_and(|r| !r.is_zero()))
            }) {
                let inst = &mut t.program.insts[i];
                let slots: Vec<usize> = (0..inst.opcode.num_srcs())
                    .filter(|&s| inst.srcs[s].is_some_and(|r| !r.is_zero()))
                    .collect();
                let slot = *rng.choose(&slots);
                let old = inst.srcs[slot].expect("slot filtered to Some");
                // Stay within the class (and off r0) so the instruction
                // remains well-formed; only the dataflow is wrong.
                let delta = rng.gen_range(1..31u32) as u8;
                let index = 1 + (old.class_index() + delta + 30) % 31;
                inst.srcs[slot] = Some(match old.class() {
                    braid_isa::RegClass::Int => braid_isa::Reg::int(index),
                    braid_isa::RegClass::Float => braid_isa::Reg::float(index),
                }
                .expect("index in 1..32"));
            }
            evaluate(&t, golden)
        }
        FaultKind::MalformedAsm => {
            let garbage = ["ldq r1,", "@@", "bne r99, nowhere", "addq r1 r2", "#####"];
            let mut src = String::from(BASE_SRC);
            let at = rng.gen_range(0..src.len());
            // Insert on a character boundary near `at`.
            let at = (at..src.len()).find(|&i| src.is_char_boundary(i)).unwrap_or(src.len());
            let piece = *rng.choose(&garbage[..]);
            src.insert_str(at, piece);
            match braid_isa::asm::assemble(&src) {
                Err(e) => FaultOutcome::TypedError(e.to_string()),
                Ok(p) => match translate(&p, &TranslatorConfig::default()) {
                    Err(e) => FaultOutcome::TypedError(e.to_string()),
                    // The insertion landed somewhere harmless (or changed
                    // the program entirely); co-simulate it against its own
                    // golden run — the stack must still not panic.
                    Ok(t2) => match run_golden(&p, FUEL) {
                        Err(e) => FaultOutcome::TypedError(e.to_string()),
                        Ok(g2) => evaluate(&t2, &g2),
                    },
                },
            }
        }
        FaultKind::BadConfig => {
            let mut cfg = BraidConfig::paper_default();
            match rng.gen_range(0..4u32) {
                0 => cfg.beus = 0,
                1 => cfg.fifo_entries = 0,
                2 => cfg.common.width = 0,
                _ => cfg.external_regs = 0,
            }
            match BraidCore::new(cfg).run(&t.program, &golden.trace) {
                Err(e) => FaultOutcome::TypedError(e.to_string()),
                Ok(_) => FaultOutcome::Masked,
            }
        }
        FaultKind::Starvation => {
            let mut cfg = BraidConfig::paper_default();
            cfg.alloc_ext_per_cycle = 0;
            cfg.common.watchdog_cycles = 2_000;
            match cosim_braid(&t, "fault", FUEL, golden) {
                Err(OracleError::Diverged(d)) => FaultOutcome::Divergence(d.to_string()),
                Err(e) => FaultOutcome::TypedError(e.to_string()),
                Ok(trace) => match BraidCore::new(cfg).run(&t.program, &trace) {
                    Err(e) => FaultOutcome::TypedError(e.to_string()),
                    Ok(_) => FaultOutcome::Masked,
                },
            }
        }
    }
}

/// Runs `cases_per_class` seeded cases of every fault class against the
/// built-in base program.
///
/// Every case runs under `catch_unwind`; a panic is recorded as
/// [`FaultOutcome::Panicked`] rather than aborting the campaign, so the
/// caller can assert `summary.panics() == 0`.
///
/// # Panics
///
/// Panics only if the *clean* base program fails to assemble, translate,
/// or execute — that is a broken build, not an injected fault.
pub fn run_fault_campaign(master_seed: u64, cases_per_class: usize) -> CampaignSummary {
    let program = braid_isa::asm::assemble(BASE_SRC).expect("base program assembles");
    let golden = run_golden(&program, FUEL).expect("base program runs");
    let clean = translate(&program, &TranslatorConfig::default()).expect("base translates");

    let mut summary = CampaignSummary::default();
    let mut seeder = Rng::seed_from_u64(master_seed);
    for &kind in &FaultKind::ALL {
        for _ in 0..cases_per_class {
            let fault = Fault { kind, seed: seeder.next_u64() };
            let outcome = catch_unwind(AssertUnwindSafe(|| inject(fault, &golden, &clean)))
                .unwrap_or_else(|p| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    FaultOutcome::Panicked(msg)
                });
            summary.reports.push(FaultReport { fault, outcome });
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_never_panics_and_faults_are_observed() {
        let summary = run_fault_campaign(0xB1AD, 8);
        assert_eq!(summary.reports.len(), FaultKind::ALL.len() * 8);
        for r in &summary.reports {
            assert!(
                !matches!(r.outcome, FaultOutcome::Panicked(_)),
                "fault {} panicked: {:?}",
                r.fault,
                r.outcome
            );
        }
        assert_eq!(summary.panics(), 0);
        // The stack must actually *catch* things: a campaign where every
        // fault is masked means the oracle is blind.
        assert!(
            summary.typed_errors() + summary.divergences() > summary.reports.len() / 4,
            "{summary}"
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_fault_campaign(7, 3);
        let b = run_fault_campaign(7, 3);
        let pairs = a.reports.iter().zip(b.reports.iter());
        for (x, y) in pairs {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn bad_branch_targets_always_fail_typed() {
        let summary = run_fault_campaign(99, 4);
        for r in summary.reports.iter().filter(|r| r.fault.kind == FaultKind::BadBranchTarget) {
            assert!(
                matches!(r.outcome, FaultOutcome::TypedError(_)),
                "fault {}: {:?}",
                r.fault,
                r.outcome
            );
        }
    }
}
