//! # braid-verify: co-simulation oracle and fault injector
//!
//! Verification machinery for the braid simulator: a lockstep oracle that
//! retires every timing core against the functional golden model, and a
//! deterministic fault injector that perturbs programs and braid
//! annotations to assert the whole stack fails *typed* — an error or a
//! divergence report, never a panic or a hang. The fault campaign has a
//! static leg ([`static_check`]) asserting the braid-contract checker
//! rejects encoding-corrupting fault classes before anything executes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod oracle;
pub mod static_check;

pub use fault::{run_fault_campaign, CampaignSummary, Fault, FaultKind, FaultOutcome, FaultReport};
pub use static_check::{checker_panic_count, run_static_campaign, StaticFaultReport};
pub use oracle::{
    check_all_cores, check_core, CoreKind, DivergenceReport, MemDelta, OracleError, OracleReport,
    RegDelta,
};
