//! Lockstep co-simulation oracle.
//!
//! The oracle retires each timing core against the functional golden model
//! ([`Machine`]):
//!
//! 1. The golden model executes the *original* program, recording the
//!    committed trace and every store in commit order.
//! 2. For the braid core, the program is translated and a second machine
//!    replays the *translated* program in lockstep against the golden store
//!    streams. Streams are kept *per address*: the translator may legally
//!    reorder provably-disjoint stores inside a block, but same-address
//!    stores keep their order, so each address's value sequence must match
//!    exactly. The first mismatching store pins the divergence to a program
//!    counter and the offending braid. At halt the external register files
//!    and the touched memory are compared.
//! 3. The timing core then replays the committed trace and must retire
//!    every dynamic instruction (the watchdog inside the core converts a
//!    hang into a typed [`SimError`]).
//!
//! Any mismatch is reported as a structured [`DivergenceReport`] rather
//! than an assertion failure, so fault-injection campaigns can distinguish
//! "cleanly caught wrong answer" from "crash".

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use braid_compiler::{translate, TranslateError, Translation, TranslatorConfig};
use braid_core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid_core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid_core::functional::{ExecError, Machine};
use braid_core::trace::{Trace, TraceEntry};
use braid_core::SimError;
use braid_isa::{Program, Reg};

/// The four timing cores the oracle can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Conventional out-of-order.
    Ooo,
    /// In-order.
    InOrder,
    /// FIFO dependence-based steering.
    DepSteer,
    /// The braid microarchitecture (runs the translated program).
    Braid,
}

impl CoreKind {
    /// All four cores, in the paper's Figure 13 order.
    pub const ALL: [CoreKind; 4] =
        [CoreKind::InOrder, CoreKind::DepSteer, CoreKind::Braid, CoreKind::Ooo];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CoreKind::Ooo => "ooo",
            CoreKind::InOrder => "inorder",
            CoreKind::DepSteer => "dep",
            CoreKind::Braid => "braid",
        }
    }
}

/// One architectural register whose final value differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDelta {
    /// The register.
    pub reg: Reg,
    /// Value in the golden (original-program) machine.
    pub golden: u64,
    /// Value in the subject (translated-program) machine.
    pub subject: u64,
}

/// One memory word whose value differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// The byte address.
    pub addr: u64,
    /// Word in the golden machine.
    pub golden: u64,
    /// Word in the subject machine.
    pub subject: u64,
}

/// A structured description of where co-simulation diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// The core under test.
    pub core: &'static str,
    /// Workload / program name.
    pub workload: String,
    /// Program counter (translated program) of the first divergence, or
    /// `u64::MAX` when only the final state differs.
    pub pc: u64,
    /// The braid containing `pc`, when known.
    pub braid: Option<u32>,
    /// Registers whose final values differ.
    pub reg_deltas: Vec<RegDelta>,
    /// Memory words whose final values differ.
    pub mem_deltas: Vec<MemDelta>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} diverged on {}", self.core, self.workload)?;
        if self.pc != u64::MAX {
            write!(f, " at pc {}", self.pc)?;
        }
        if let Some(b) = self.braid {
            write!(f, " (braid {b})")?;
        }
        for d in &self.reg_deltas {
            write!(f, "\n  {}: golden {:#x} vs {:#x}", d.reg, d.golden, d.subject)?;
        }
        for d in &self.mem_deltas {
            write!(f, "\n  [{:#x}]: golden {:#x} vs {:#x}", d.addr, d.golden, d.subject)?;
        }
        Ok(())
    }
}

/// Errors (and caught divergences) from an oracle check.
#[derive(Debug)]
#[non_exhaustive]
pub enum OracleError {
    /// The golden model itself failed.
    Exec(ExecError),
    /// Braid translation failed.
    Translate(TranslateError),
    /// The timing core failed (bad config or livelock).
    Sim(SimError),
    /// The timing core finished but did not retire the whole trace.
    Retirement {
        /// The core under test.
        core: &'static str,
        /// Dynamic instructions in the trace.
        expected: u64,
        /// Instructions the core retired.
        retired: u64,
    },
    /// Co-simulation produced different architectural results.
    Diverged(Box<DivergenceReport>),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Exec(e) => write!(f, "golden model failed: {e}"),
            OracleError::Translate(e) => write!(f, "translation failed: {e}"),
            OracleError::Sim(e) => write!(f, "timing core failed: {e}"),
            OracleError::Retirement { core, expected, retired } => {
                write!(f, "{core} retired {retired} of {expected} instructions")
            }
            OracleError::Diverged(d) => d.fmt(f),
        }
    }
}

impl Error for OracleError {}

impl From<ExecError> for OracleError {
    fn from(e: ExecError) -> OracleError {
        OracleError::Exec(e)
    }
}

impl From<TranslateError> for OracleError {
    fn from(e: TranslateError) -> OracleError {
        OracleError::Translate(e)
    }
}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> OracleError {
        OracleError::Sim(e)
    }
}

/// A passed oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The core under test.
    pub core: &'static str,
    /// Workload / program name.
    pub workload: String,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Cycles the timing core took.
    pub cycles: u64,
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ok — {} insts in {} cycles",
            self.core, self.workload, self.instructions, self.cycles
        )
    }
}

/// The golden model's full run: final machine, trace, stores in commit order.
pub(crate) struct GoldenRun {
    pub(crate) machine: Machine,
    pub(crate) trace: Trace,
    /// Every committed store: `(address, stored bytes as a value)`.
    pub(crate) stores: Vec<(u64, u64)>,
}

/// Reads back exactly the bytes `inst` stored at `addr`.
fn stored_value(m: &Machine, program: &Program, idx: u32, addr: u64) -> u64 {
    match program.insts[idx as usize].opcode.mem_bytes() {
        4 => m.mem.read_u32(addr) as u64,
        _ => m.mem.read_u64(addr),
    }
}

pub(crate) fn run_golden(program: &Program, fuel: u64) -> Result<GoldenRun, OracleError> {
    let mut m = Machine::new(program);
    let mut entries: Vec<TraceEntry> = Vec::new();
    let mut stores = Vec::new();
    while !m.halted() {
        if entries.len() as u64 >= fuel {
            return Err(ExecError::OutOfFuel.into());
        }
        let e = m.step(program)?;
        if program.insts[e.idx as usize].opcode.is_store() {
            stores.push((e.addr, stored_value(&m, program, e.idx, e.addr)));
        }
        entries.push(e);
    }
    Ok(GoldenRun { machine: m, trace: Trace { entries }, stores })
}

/// Registers safe to compare after a braid translation: every write in the
/// translated program reaches the external file (internal-only values are
/// braid-local by construction and may legitimately never surface).
fn externally_visible(translated: &Program) -> Vec<Reg> {
    Reg::all()
        .filter(|r| translated.insts.iter().all(|i| i.dest != Some(*r) || i.braid.external))
        .collect()
}

/// Lockstep-replays the translated program against the golden store stream
/// and final state. Returns the braided trace on success.
pub(crate) fn cosim_braid(
    t: &Translation,
    name: &str,
    fuel: u64,
    golden: &GoldenRun,
) -> Result<Trace, OracleError> {
    let mut m = Machine::new(&t.program);
    let mut entries: Vec<TraceEntry> = Vec::new();
    // Per-address golden value streams (see the module docs: disjoint
    // stores may be reordered, same-address stores may not).
    let mut pending: HashMap<u64, VecDeque<u64>> = HashMap::new();
    for &(addr, value) in &golden.stores {
        pending.entry(addr).or_default().push_back(value);
    }
    let mut outstanding = golden.stores.len();
    let diverge = |pc: u64, mem_deltas: Vec<MemDelta>| {
        OracleError::Diverged(Box::new(DivergenceReport {
            core: "braid",
            workload: name.to_string(),
            pc,
            braid: t.braid_of_inst.get(pc as usize).copied(),
            reg_deltas: Vec::new(),
            mem_deltas,
        }))
    };
    while !m.halted() {
        if entries.len() as u64 >= fuel {
            return Err(ExecError::OutOfFuel.into());
        }
        let e = m.step(&t.program)?;
        if t.program.insts[e.idx as usize].opcode.is_store() {
            let got = stored_value(&m, &t.program, e.idx, e.addr);
            let want = pending.get_mut(&e.addr).and_then(VecDeque::pop_front);
            match want {
                None => {
                    return Err(diverge(
                        e.idx as u64,
                        vec![MemDelta { addr: e.addr, golden: 0, subject: got }],
                    ));
                }
                Some(w) if w != got => {
                    return Err(diverge(
                        e.idx as u64,
                        vec![MemDelta { addr: e.addr, golden: w, subject: got }],
                    ));
                }
                Some(_) => outstanding -= 1,
            }
        }
        entries.push(e);
    }

    // Final state: externally-visible registers and every touched word.
    let mut reg_deltas = Vec::new();
    for r in externally_visible(&t.program) {
        let (g, s) = (golden.machine.reg(r), m.reg(r));
        if g != s {
            reg_deltas.push(RegDelta { reg: r, golden: g, subject: s });
        }
    }
    let mut mem_deltas = Vec::new();
    let touched: BTreeSet<u64> = golden.stores.iter().map(|&(a, _)| a).collect();
    for addr in touched {
        let (g, s) = (golden.machine.mem.read_u64(addr), m.mem.read_u64(addr));
        if g != s {
            mem_deltas.push(MemDelta { addr, golden: g, subject: s });
        }
    }
    if outstanding != 0 || !reg_deltas.is_empty() || !mem_deltas.is_empty() {
        return Err(OracleError::Diverged(Box::new(DivergenceReport {
            core: "braid",
            workload: name.to_string(),
            pc: u64::MAX,
            braid: None,
            reg_deltas,
            mem_deltas,
        })));
    }
    Ok(Trace { entries })
}

fn require_full_retirement(
    core: &'static str,
    expected: u64,
    retired: u64,
) -> Result<(), OracleError> {
    if retired == expected {
        Ok(())
    } else {
        Err(OracleError::Retirement { core, expected, retired })
    }
}

/// Runs `program` through the lockstep oracle on the given timing core.
///
/// # Errors
///
/// See [`OracleError`]; a clean mismatch comes back as
/// [`OracleError::Diverged`] carrying the structured report.
pub fn check_core(
    kind: CoreKind,
    program: &Program,
    name: &str,
    fuel: u64,
) -> Result<OracleReport, OracleError> {
    let golden = run_golden(program, fuel)?;
    let expected = golden.trace.len() as u64;
    let report = match kind {
        CoreKind::Braid => {
            let t = translate(program, &TranslatorConfig::default())?;
            let braid_trace = cosim_braid(&t, name, fuel, &golden)?;
            let r = BraidCore::new(BraidConfig::paper_default()).run(&t.program, &braid_trace)?;
            require_full_retirement("braid", braid_trace.len() as u64, r.instructions)?;
            r
        }
        CoreKind::Ooo => {
            let r = OooCore::new(OooConfig::paper_8wide()).run(program, &golden.trace)?;
            require_full_retirement("ooo", expected, r.instructions)?;
            r
        }
        CoreKind::InOrder => {
            let r = InOrderCore::new(InOrderConfig::paper_8wide()).run(program, &golden.trace)?;
            require_full_retirement("inorder", expected, r.instructions)?;
            r
        }
        CoreKind::DepSteer => {
            let r = DepSteerCore::new(DepConfig::paper_8wide()).run(program, &golden.trace)?;
            require_full_retirement("dep", expected, r.instructions)?;
            r
        }
    };
    Ok(OracleReport {
        core: kind.name(),
        workload: name.to_string(),
        instructions: report.instructions,
        cycles: report.cycles,
    })
}

/// Runs all four timing cores under the oracle.
///
/// # Errors
///
/// Fails on the first core that errors or diverges.
pub fn check_all_cores(
    program: &Program,
    name: &str,
    fuel: u64,
) -> Result<Vec<OracleReport>, OracleError> {
    CoreKind::ALL.iter().map(|&k| check_core(k, program, name, fuel)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    const LOOP: &str = r#"
        addi r0, #200, r1
        addi r0, #0x1000, r9
    loop:
        addq r1, r1, r2
        addq r2, r1, r2
        stq  r2, 0(r9) @stack:1
        ldq  r3, 0(r9) @stack:1
        addq r3, r1, r4
        stq  r4, 8(r9) @stack:2
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn all_cores_pass_on_a_clean_loop() {
        let p = assemble(LOOP).unwrap();
        let reports = check_all_cores(&p, "loop", 100_000).expect("oracle passes");
        assert_eq!(reports.len(), 4);
        for r in reports {
            assert!(r.instructions > 0);
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn infinite_loops_surface_as_out_of_fuel() {
        let p = assemble("loop: br loop\nhalt").unwrap();
        match check_core(CoreKind::Ooo, &p, "spin", 1_000) {
            Err(OracleError::Exec(ExecError::OutOfFuel)) => {}
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }
}
