//! Static leg of the fault campaign: the checker catches encoding faults.
//!
//! The dynamic campaign in [`fault`](crate::fault) proves the *runtime*
//! stack (oracle plus timing cores) fails typed under corruption. This
//! module proves the *static* checker rejects the encoding-corrupting
//! fault classes before anything executes: each targeted corruption of a
//! clean translation of the shared base program must draw the expected
//! `BC0xx` diagnostic from the checker alone — no simulation, no oracle.
//! Translation-level corruptions are judged by the full
//! `Translation::check` (local flow plus the version-aware reordering
//! legs); the overflow fixture, which has no originating translation, by
//! [`braid_check::check_program`].
//!
//! Corruption targets are found by deterministic scans (first qualifying
//! instruction), so every case is stable across runs and the expected
//! diagnostic can be pinned per class.

use std::panic::{catch_unwind, AssertUnwindSafe};

use braid_check::{check_program, Blocks, CheckConfig, CheckReport, Code};
use braid_compiler::{translate, Translation, TranslatorConfig};
use braid_isa::{Program, Reg, NUM_INT_REGS};
use braid_prng::Rng;

use crate::fault::{FaultKind, BASE_SRC};

/// One statically checked fault case.
#[derive(Debug, Clone)]
pub struct StaticFaultReport {
    /// The fault class that was injected.
    pub kind: FaultKind,
    /// The diagnostic the checker is required to emit for it.
    pub expected: Code,
    /// The checker's full report on the corrupted program.
    pub report: CheckReport,
}

impl StaticFaultReport {
    /// Whether the checker flagged the corruption with the expected code.
    ///
    /// The report may contain further diagnostics — one corruption can
    /// break several rules at once — only the expected code is required.
    pub fn caught(&self) -> bool {
        self.report.has_code(self.expected)
    }
}

/// Assembles and translates the shared base program (self-check off: the
/// whole point is to run the checker on *corrupted* copies ourselves).
fn clean_translation() -> (Program, Translation) {
    let program = braid_isa::asm::assemble(BASE_SRC).expect("base program assembles");
    let t = translate(&program, &TranslatorConfig { self_check: false, ..Default::default() })
        .expect("base program translates");
    (program, t)
}

/// Clears the `S` bit on a block leader, fusing a braid across the block
/// boundary (the dynamic `FlipStart` class). Prefers a non-entry block so
/// the corruption models a braid leaking across a real control edge.
fn clear_leader_start(p: &mut Program) -> bool {
    let blocks = Blocks::build(p);
    let leader = blocks.start.get(1).copied().unwrap_or(blocks.start[0]);
    p.insts[leader as usize].braid.start = false;
    true
}

/// Sets a `T` bit on a braid-leading instruction that reads a register:
/// the internal map is empty at a braid start, so no producer exists (the
/// dynamic `FlipTemp` class).
fn set_bad_temp(p: &mut Program) -> bool {
    for inst in &mut p.insts {
        if !inst.braid.start {
            continue;
        }
        for slot in 0..inst.opcode.num_srcs() {
            if !inst.braid.t[slot] && inst.srcs[slot].is_some_and(|r| !r.is_zero()) {
                inst.braid.t[slot] = true;
                return true;
            }
        }
    }
    false
}

/// Clears the `I` bit on the producer feeding a `T` read — the read's
/// internal value no longer exists (the dynamic `FlipInternal` class).
fn clear_producer_internal(p: &mut Program) -> bool {
    let mut starts = vec![0usize; p.insts.len()];
    let mut start = 0usize;
    for (j, inst) in p.insts.iter().enumerate() {
        if inst.braid.start {
            start = j;
        }
        starts[j] = start;
    }
    let producer = p.insts.iter().enumerate().find_map(|(j, inst)| {
        (0..inst.opcode.num_srcs()).find_map(|slot| {
            if !inst.braid.t[slot] {
                return None;
            }
            let reg = inst.srcs[slot]?;
            (starts[j]..j)
                .rev()
                .find(|&d| p.insts[d].dest == Some(reg) && p.insts[d].braid.internal)
        })
    });
    if let Some(d) = producer {
        p.insts[d].braid.internal = false;
        return true;
    }
    false
}

/// Clears the `E` bit on a dual (internal + external) definition: the
/// value is consumed outside the braid but never reaches the external
/// file (the dynamic `FlipExternal` class).
fn clear_dual_external(p: &mut Program) -> bool {
    for inst in &mut p.insts {
        if inst.braid.internal && inst.braid.external {
            inst.braid.external = false;
            return true;
        }
    }
    false
}

/// Retargets a `T` source at a register no instruction ever defines: the
/// read is well-formed but its producer does not exist (the dynamic
/// `CorruptRegIndex` class).
fn retarget_temp_source(p: &mut Program) -> bool {
    let fresh = (1..NUM_INT_REGS)
        .map(|n| Reg::int(n).expect("index in range"))
        .find(|r| p.insts.iter().all(|i| i.dest != Some(*r)));
    let Some(fresh) = fresh else { return false };
    for j in 0..p.insts.len() {
        for slot in 0..p.insts[j].opcode.num_srcs() {
            if p.insts[j].braid.t[slot]
                && p.insts[j].srcs[slot].is_some_and(|r| r.class() == fresh.class())
            {
                p.insts[j].srcs[slot] = Some(fresh);
                return true;
            }
        }
    }
    false
}

/// A hand-built program with nine internal-only values live at once in a
/// single braid — one more than the internal file holds (the dynamic
/// `InternalOverflow` class; the base translation never allocates that
/// deep, so this class gets its own fixture).
fn overflow_program() -> Program {
    let mut src = String::new();
    for k in 0..9 {
        src.push_str(&format!("addq r1, r1, r{}\n", 2 + k));
    }
    src.push_str("halt");
    let mut p = braid_isa::asm::assemble(&src).expect("overflow fixture assembles");
    for (i, inst) in p.insts.iter_mut().enumerate() {
        inst.braid.start = i == 0;
        if inst.dest.is_some() {
            inst.braid.internal = true;
            inst.braid.external = false;
        }
    }
    p
}

/// Runs the full static campaign: one targeted corruption per statically
/// checkable fault class, each judged by [`check_program`] alone.
///
/// # Panics
///
/// Panics if the clean base program fails to assemble or translate, or if
/// a corruption scan finds no target in it — both mean the fixture is
/// broken, not that a fault went uncaught.
pub fn run_static_campaign() -> Vec<StaticFaultReport> {
    let (original, t) = clean_translation();
    let config = CheckConfig::default();
    let mut out = Vec::new();
    let mut case = |kind: FaultKind, expected: Code, corrupt: &dyn Fn(&mut Program) -> bool| {
        let mut bad = t.clone();
        assert!(
            corrupt(&mut bad.program),
            "no {} corruption target in the base program",
            kind.name()
        );
        out.push(StaticFaultReport { kind, expected, report: bad.check(&original, &config) });
    };
    case(FaultKind::FlipStart, Code::Bc001BraidCrossesBlock, &clear_leader_start);
    case(FaultKind::FlipTemp, Code::Bc002BadInternalRead, &set_bad_temp);
    case(FaultKind::FlipInternal, Code::Bc002BadInternalRead, &clear_producer_internal);
    case(FaultKind::FlipExternal, Code::Bc005LostValue, &clear_dual_external);
    case(FaultKind::CorruptRegIndex, Code::Bc002BadInternalRead, &retarget_temp_source);
    out.push(StaticFaultReport {
        kind: FaultKind::InternalOverflow,
        expected: Code::Bc004InternalOverflow,
        report: check_program(&overflow_program(), &config),
    });
    out
}

/// Checks `cases` randomly corrupted translations and returns how many
/// made the checker panic — must be zero. Random corruption flips braid
/// bits, retargets or removes source registers, perturbs immediates, and
/// truncates the program: shapes the targeted campaign does not cover.
pub fn checker_panic_count(master_seed: u64, cases: usize) -> usize {
    let (_, t) = clean_translation();
    let mut rng = Rng::seed_from_u64(master_seed);
    let mut panics = 0;
    for _ in 0..cases {
        let mut p = t.program.clone();
        for _ in 0..rng.gen_range(1..5u32) {
            let choice = rng.gen_range(0..8u32);
            if choice == 7 {
                if p.insts.len() > 1 {
                    let cut = rng.gen_range(1..p.insts.len());
                    p.insts.truncate(cut);
                }
                continue;
            }
            let i = rng.gen_range(0..p.insts.len());
            let inst = &mut p.insts[i];
            match choice {
                0 => inst.braid.start = !inst.braid.start,
                1 => inst.braid.t[0] = !inst.braid.t[0],
                2 => inst.braid.t[1] = !inst.braid.t[1],
                3 => inst.braid.internal = !inst.braid.internal,
                4 => inst.braid.external = !inst.braid.external,
                // Out-of-range indices come back as `None`, deliberately
                // dropping an operand.
                5 => inst.srcs[0] = Reg::int(rng.gen_range(0..40u32) as u8).ok(),
                _ => inst.imm ^= 1 << rng.gen_range(0..16u32),
            }
        }
        if catch_unwind(AssertUnwindSafe(|| check_program(&p, &CheckConfig::default()))).is_err() {
            panics += 1;
        }
    }
    panics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_static_fault_class_is_caught_with_its_expected_code() {
        let reports = run_static_campaign();
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert!(
                r.caught(),
                "{} escaped the checker: expected {}, got\n{}",
                r.kind.name(),
                r.expected.as_str(),
                r.report
            );
            assert!(r.report.has_errors(), "{}: expected code is error-severity", r.kind.name());
        }
    }

    #[test]
    fn static_campaign_covers_distinct_fault_classes() {
        let reports = run_static_campaign();
        let mut kinds: Vec<&str> = reports.iter().map(|r| r.kind.name()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 6, "each class appears exactly once");
    }

    #[test]
    fn diagnostics_carry_well_formed_spans() {
        for r in run_static_campaign() {
            assert!(!r.report.diagnostics.is_empty());
            for d in &r.report.diagnostics {
                assert!(d.span.start < d.span.end, "{}: empty span", r.kind.name());
            }
        }
    }

    #[test]
    fn checker_never_panics_on_random_corruption() {
        assert_eq!(checker_panic_count(0xC0DE, 100), 0);
    }
}
