//! # braid-workloads: the synthetic SPEC CPU2000-profiled suite
//!
//! The paper evaluates on SPEC CPU2000 binaries compiled for the Alpha with
//! MinneSPEC reduced inputs — neither of which is redistributable here.
//! This crate substitutes a **synthetic suite of 26 workloads carrying the
//! SPEC names**: a deterministic, seeded program generator whose
//! per-benchmark parameters ([`profiles`]) are tuned so the *measured*
//! braid statistics (braids per block, braid size/width, internal/external
//! value counts — the paper's Tables 1–3) approximate the paper's
//! measurements benchmark by benchmark, and whose memory and branch
//! behaviour follows each program's folklore character (mcf chases
//! pointers, mgrid/swim stream large arrays with long dependence chains,
//! crafty and gcc branch unpredictably, ...).
//!
//! Hand-written assembly [`kernels`] (including the paper's Figure 2 gcc
//! life-analysis loop) serve as human-readable anchors.
//!
//! ```
//! use braid_workloads::{suite, Workload};
//!
//! let all: Vec<Workload> = suite(1.0);
//! assert_eq!(all.len(), 26);
//! let gcc = all.iter().find(|w| w.name == "gcc").unwrap();
//! gcc.program.validate()?;
//! # Ok::<(), braid_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod profiles;
pub mod synth;

use braid_isa::Program;

pub use profiles::{BenchClass, WorkloadProfile, PROFILES};

/// A runnable workload: a program plus its instruction budget.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (a SPEC CPU2000 program name, or a kernel name).
    pub name: String,
    /// Whether the benchmark models an integer or floating-point program.
    pub class: BenchClass,
    /// The program.
    pub program: Program,
    /// Instruction budget that comfortably covers the run to `halt`.
    pub fuel: u64,
}

/// Generates the full 26-benchmark suite.
///
/// `scale` multiplies each workload's dynamic instruction count (1.0 ≈
/// 60k dynamic instructions per benchmark; experiments use larger scales
/// for steadier measurements).
pub fn suite(scale: f64) -> Vec<Workload> {
    PROFILES.iter().map(|p| synth::generate(p, scale)).collect()
}

/// Generates one benchmark of the suite by name.
///
/// ```
/// let mcf = braid_workloads::by_name("mcf", 0.1).expect("mcf is in the suite");
/// assert_eq!(mcf.class, braid_workloads::BenchClass::Int);
/// mcf.program.validate()?;
/// # Ok::<(), braid_isa::IsaError>(())
/// ```
pub fn by_name(name: &str, scale: f64) -> Option<Workload> {
    PROFILES.iter().find(|p| p.name == name).map(|p| synth::generate(p, scale))
}

/// The hand-written kernel workloads.
pub fn kernel_suite() -> Vec<Workload> {
    kernels::all()
}

/// The curated compiled loop-nest family (`ln_*` names), built from
/// braid-lang sources by [`braid_lang::loopnest`].
pub fn loopnest_suite() -> Vec<Workload> {
    braid_lang::loopnest::family().iter().map(loopnest_workload).collect()
}

/// The communication-dominated loop-nest variants aimed at the `braidc
/// -O` partition search (`exp opt`): canonical braid formation serializes
/// their independent chains, so a searched partition has real cycles to
/// recover.
pub fn loopnest_opt_suite() -> Vec<Workload> {
    braid_lang::loopnest::opt_family().iter().map(loopnest_workload).collect()
}

fn loopnest_workload(nest: &braid_lang::loopnest::LoopNest) -> Workload {
    Workload {
        name: nest.name.clone(),
        class: BenchClass::Int,
        program: nest.compile().program,
        fuel: nest.fuel,
    }
}

/// Looks a workload up in the synthetic suite first, then among the
/// hand-written kernels (which ignore `scale`), then the compiled
/// loop-nest family (`ln_*` names parse their parameter suffix, so any
/// in-range tiling/unroll point resolves, not just the curated list).
/// This is the single resolver the CLI and the sweep engine share, so
/// `dot_product`, `mcf`, and `ln_saxpy_u4` name workloads the same way
/// everywhere.
pub fn by_name_any(name: &str, scale: f64) -> Option<Workload> {
    by_name(name, scale)
        .or_else(|| kernels::all().into_iter().find(|w| w.name == name))
        .or_else(|| braid_lang::loopnest::by_name(name).map(|n| loopnest_workload(&n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_26_named_benchmarks() {
        let s = suite(0.1);
        assert_eq!(s.len(), 26);
        let ints = s.iter().filter(|w| w.class == BenchClass::Int).count();
        assert_eq!(ints, 12, "12 integer programs as in the paper's tables");
        assert!(s.iter().any(|w| w.name == "mcf"));
        assert!(s.iter().any(|w| w.name == "mgrid"));
    }

    #[test]
    fn by_name_matches_suite() {
        let w = by_name("gzip", 0.1).unwrap();
        assert_eq!(w.name, "gzip");
        assert!(by_name("nonesuch", 0.1).is_none());
    }

    #[test]
    fn loopnests_resolve_like_any_other_workload() {
        let w = by_name_any("ln_saxpy_u4", 1.0).expect("curated family member");
        assert_eq!(w.class, BenchClass::Int);
        w.program.validate().unwrap();
        // Off-list but in-range parameterizations resolve too.
        assert!(by_name_any("ln_chains_c3_u1", 1.0).is_some());
        assert!(by_name_any("ln_nonesuch", 1.0).is_none());
        assert_eq!(loopnest_suite().len(), braid_lang::loopnest::family().len());
    }
}
