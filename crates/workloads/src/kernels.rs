//! Hand-written assembly kernels.
//!
//! Human-readable anchors alongside the synthetic suite: the paper's
//! Figure 2 loop from gcc's life analysis, and seven classic kernels whose
//! dataflow shapes match the SPEC programs they echo.

use braid_isa::asm::assemble;

use crate::profiles::BenchClass;
use crate::Workload;

fn kernel(name: &str, class: BenchClass, fuel: u64, src: &str) -> Workload {
    let program = assemble(src).unwrap_or_else(|e| panic!("kernel {name}: {e}"));
    let mut program = program;
    program.name = name.to_string();
    Workload { name: name.to_string(), class, program, fuel }
}

/// The paper's Figure 2: the inner loop of gcc's life-analysis function,
/// transliterated to BRISC (aN→r16+N, tN→rN, zero→r0). Three braids per
/// iteration: the `x` computation (with the branch), the induction
/// increment + compare, and the single-instruction `lda`.
pub fn fig2_life() -> Workload {
    kernel(
        "fig2_life",
        BenchClass::Int,
        2_000_000,
        r#"
        ; r16 = basic_block_live_at_end[i], r17 = basic_block_new_live_at_end[i],
        ; r8 = basic_block_significant[i], r4 = j*4, r5 = j, r9 = regset_size
            addi r0, #0x20000, r16
            addi r0, #0x24000, r17
            addi r0, #0x28000, r8
            addi r0, #0, r4
            addi r0, #0, r5
            addi r0, #512, r9
        loop:
            addq r17, r4, r10
            addq r16, r4, r11
            addq r8,  r4, r12
            ldl  r3, 0(r10) @global:1
            addi r5, #1, r5
            ldl  r10, 0(r11) @global:2
            cmpeq r9, r5, r7
            ldl  r11, 0(r12) @global:3
            lda  r4, 4(r4)
            andnot r3, r10, r10
            addq r0, r10, r10
            and  r10, r11, r11
            zapnot r11, #15, r11
            cmovnei r10, #1, r6
            beq  r7, loop
            halt
            .data 0x20000 3 1 4 1 5
            .data 0x24000 9 2 6 5 3
            .data 0x28000 5 8 9 7 9
        "#,
    )
}

/// Dot product over two arrays: a single two-load multiply-accumulate braid
/// per iteration (swim/wupwise flavour).
pub fn dot_product() -> Workload {
    kernel(
        "dot_product",
        BenchClass::Float,
        2_000_000,
        r#"
            addi r0, #0x3000, r20
            addi r0, #0x5000, r21
            addi r0, #0, r4
            addi r0, #256, r1
        loop:
            addq r20, r4, r10
            addq r21, r4, r11
            ldt  f10, 0(r10) @global:1
            ldt  f11, 0(r11) @global:2
            mult f10, f11, f12
            addt f1, f12, f1
            lda  r4, 8(r4)
            subi r1, #1, r1
            bne  r1, loop
            stt  f1, 0(r20) @global:1
            halt
            .data 0x3000 4607182418800017408 4607182418800017408
            .data 0x5000 4611686018427387904 4611686018427387904
        "#,
    )
}

/// A 1-D three-point stencil: long dependent chains per element (mgrid
/// flavour).
pub fn stencil() -> Workload {
    kernel(
        "stencil",
        BenchClass::Float,
        2_000_000,
        r#"
            addi r0, #0x3000, r20   ; src
            addi r0, #0x8000, r21   ; dst
            addi r0, #0, r4
            addi r0, #200, r1
        loop:
            addq r20, r4, r10
            ldt  f10, 0(r10)  @global:1
            ldt  f11, 8(r10)  @global:1
            ldt  f12, 16(r10) @global:1
            addt f10, f11, f13
            addt f13, f12, f13
            mult f13, f11, f13
            addt f13, f10, f13
            addq r21, r4, r11
            stt  f13, 8(r11) @global:2
            lda  r4, 8(r4)
            subi r1, #1, r1
            bne  r1, loop
            halt
            .data 0x3000 4607182418800017408
        "#,
    )
}

/// Pointer chasing through a small ring (mcf flavour): every load depends
/// on the previous one.
pub fn pointer_chase() -> Workload {
    kernel(
        "pointer_chase",
        BenchClass::Int,
        2_000_000,
        r#"
            addi r0, #0x6000, r3
            addi r0, #2000, r1
        loop:
            ldq  r3, 0(r3) @heap:0
            ldq  r10, 8(r3) @heap:0
            addq r2, r10, r2
            subi r1, #1, r1
            bne  r1, loop
            halt
            ; a 4-node ring: 0x6000 -> 0x6040 -> 0x6080 -> 0x60c0 -> 0x6000
            .data 0x6000 0x6040 7
            .data 0x6040 0x6080 9
            .data 0x6080 0x60c0 11
            .data 0x60c0 0x6000 13
        "#,
    )
}

/// Byte-histogram flavoured loop (gzip-like): loads feeding masked updates
/// with a data-dependent branch.
pub fn histogram() -> Workload {
    kernel(
        "histogram",
        BenchClass::Int,
        2_000_000,
        r#"
            addi r0, #0x3000, r20   ; input
            addi r0, #0x9000, r21   ; counts
            addi r0, #0, r4
            addi r0, #512, r1
        loop:
            andi r4, #2040, r5
            addq r20, r5, r10
            ldq  r11, 0(r10) @global:1
            andi r11, #248, r12
            addq r21, r12, r13
            ldq  r14, 0(r13) @global:2
            addi r14, #1, r14
            stq  r14, 0(r13) @global:2
            andi r11, #1, r6
            beq  r6, even
            addi r2, #1, r2
        even:
            lda  r4, 8(r4)
            subi r1, #1, r1
            bne  r1, loop
            halt
            .data 0x3000 3 141 59 26 53 589 79 323 84 626 43 38 32 79 502 88
        "#,
    )
}

/// Small dense matrix multiply (4x4 blocks), sixtrack/apsi flavour: long
/// multiply-accumulate braids with two-array inputs.
pub fn matmul() -> Workload {
    kernel(
        "matmul",
        BenchClass::Float,
        4_000_000,
        r#"
            addi r0, #0x3000, r20   ; A
            addi r0, #0x5000, r21   ; B
            addi r0, #0x8000, r22   ; C
            addi r0, #64, r1        ; row-pairs to process
        loop:
            ldt  f10, 0(r20)  @global:1
            ldt  f11, 8(r20)  @global:1
            ldt  f12, 0(r21)  @global:2
            ldt  f13, 8(r21)  @global:2
            mult f10, f12, f14
            mult f11, f13, f15
            addt f14, f15, f14
            stt  f14, 0(r22) @global:3
            ldt  f12, 16(r21) @global:2
            ldt  f13, 24(r21) @global:2
            mult f10, f12, f14
            mult f11, f13, f15
            addt f14, f15, f14
            stt  f14, 8(r22) @global:3
            lda  r20, 16(r20)
            lda  r21, 32(r21)
            lda  r22, 16(r22)
            subi r1, #1, r1
            bne  r1, loop
            halt
            .data 0x3000 4607182418800017408 4611686018427387904
            .data 0x5000 4613937818241073152 4616189618054758400
        "#,
    )
}

/// CRC-flavoured bit mixing (bzip2/gzip flavour): long integer chains with
/// table lookups and shifts.
pub fn crc_mix() -> Workload {
    kernel(
        "crc_mix",
        BenchClass::Int,
        4_000_000,
        r#"
            addi r0, #0x3000, r20   ; input
            addi r0, #0x6000, r21   ; table
            addi r0, #1024, r1
            addi r0, #-1, r2        ; crc state
        loop:
            ldq  r10, 0(r20) @global:1
            xor  r2, r10, r11
            andi r11, #2040, r12
            addq r21, r12, r13
            ldq  r14, 0(r13) @global:2
            srli r2, #8, r15
            xor  r15, r14, r2
            lda  r20, 8(r20)
            subi r1, #1, r1
            bne  r1, loop
            stq  r2, 0(r21) @global:2
            halt
            .data 0x3000 385 12 99 1044 6 23 817 55
            .data 0x6000 0xedb88320 0x1db71064 0x3b6e20c8 0x26d930ac
        "#,
    )
}

/// Array partition pass (quicksort inner loop, twolf/vpr flavour):
/// data-dependent branches over comparisons.
pub fn partition() -> Workload {
    kernel(
        "partition",
        BenchClass::Int,
        4_000_000,
        r#"
            addi r0, #0x3000, r20   ; input
            addi r0, #0x9000, r21   ; lows
            addi r0, #0xb000, r22   ; highs
            addi r0, #512, r1
            addi r0, #500000, r9    ; pivot
        loop:
            ldq  r10, 0(r20) @global:1
            cmplt r10, r9, r11
            subq  r10, r9, r11
            blt  r11, low
            stq  r10, 0(r22) @global:3
            lda  r22, 8(r22)
            br   next
        low:
            stq  r10, 0(r21) @global:2
            lda  r21, 8(r21)
        next:
            lda  r20, 8(r20)
            subi r1, #1, r1
            bne  r1, loop
            halt
            .data 0x3000 3917 981223 44871 650001 12 999999 500001 499999
        "#,
    )
}

/// All hand-written kernels.
pub fn all() -> Vec<Workload> {
    vec![
        fig2_life(),
        dot_product(),
        stencil(),
        pointer_chase(),
        histogram(),
        matmul(),
        crc_mix(),
        partition(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_validate() {
        for k in all() {
            k.program.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
        assert_eq!(all().len(), 8);
    }

    #[test]
    fn fig2_matches_paper_block_shape() {
        let k = fig2_life();
        // 15-instruction loop body as in the paper's Figure 2(b).
        let loop_body: Vec<_> = k.program.insts[6..21].to_vec();
        assert_eq!(loop_body.len(), 15);
        assert!(loop_body.last().unwrap().opcode.is_cond_branch());
    }
}
