//! The seeded synthetic program generator.
//!
//! Every workload is one hot loop built from a [`WorkloadProfile`]:
//!
//! * a small **prologue block** ended by the loop-exit branch (plus, for
//!   data-dependent addressing, an index-table load; for pointer chasing,
//!   the chase load — a single-instruction braid exactly like mcf's);
//! * `block_bodies` code bodies; a body may be statically guarded by a
//!   data-dependent forward branch whose dynamic predictability follows
//!   the profile's noise (guard values come from a pre-generated table);
//! * each body holding several **operation trees** — near-chains of ALU/FP
//!   operations with load leaves, sunk to a store or an accumulator. After
//!   braid translation each tree is one braid: its temporaries are the
//!   paper's internal values; addresses, parameters and accumulators its
//!   external values (the dashed edges of the paper's Figure 2);
//! * **single-instruction braids**: per-body address advances
//!   (`lda addr, stride(addr)` — consumed by the *next* iteration, the
//!   paper's braid 3), alignment `nop`s, event-counter updates, and the
//!   induction update, matching the paper's ~20%-of-instructions
//!   observation.
//!
//! All randomness is seeded from the benchmark name: the same profile
//! always yields the same program.

use std::collections::HashMap;

use braid_isa::{AliasClass, BraidBits, DataSegment, Inst, Opcode, Program, Reg};
use braid_prng::Rng;

use crate::profiles::{BenchClass, MemPattern, WorkloadProfile};
use crate::Workload;

// Register conventions of generated code.
fn r(n: u8) -> Reg {
    Reg::int(n).expect("static register")
}
fn fr(n: u8) -> Reg {
    Reg::float(n).expect("static register")
}

const COUNTER: u8 = 1; // r1: outer loop counter
const ACCS: [u8; 4] = [2, 8, 9, 23]; // integer accumulators
const FACCS: [u8; 4] = [1, 2, 8, 9]; // f-register accumulators
const CHASE: u8 = 3; // r3: pointer-chase cursor
const INDEX: u8 = 4; // r4: element induction variable
const ANCHOR: u8 = 5; // r5: data-dependent index (Random pattern)
const GUARD: u8 = 6; // r6: guard value
const SCRATCH: u8 = 7; // r7: guard-table address
const CHAIN_T: [u8; 5] = [10, 11, 12, 13, 14]; // chain temporaries
const LEAF_T: u8 = 15; // load-leaf temporary
const ADDR_T: [u8; 6] = [16, 17, 18, 19, 20, 21]; // per-body data addresses
const PARAM: u8 = 22; // loop-invariant parameter
const PARAM2: u8 = 31; // second loop-invariant parameter
const EVENTS: [u8; 2] = [29, 30]; // event counters for single-inst braids
const IDX_BASE: u8 = 24; // index-table base (Random pattern)
const RND_BASE: u8 = 26; // random-access array base (Random pattern)
const OUTER: u8 = 25; // r25: outer (sweep) loop counter
const GUARD_BASE: u8 = 28; // guard-table base
const FPARAM: u8 = 22; // f22: loop-invariant fp parameter

// Data layout: tables low, arrays high (so wandering stores in long runs
// never corrupt the tables).
const GUARD_TABLE: u64 = 0x10_0000;
const CHASE_BASE: u64 = 0x20_0000;
const ARRAYS_BASE: u64 = 0x1000_0000;
const ARRAY_SPACING: u64 = 0x0400_0000; // 64 MiB between arrays
const NODE_BYTES: u64 = 64;

/// Simple label-fixup assembler for the generator.
#[derive(Default)]
struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl Asm {
    fn here(&self) -> u32 {
        self.insts.len() as u32
    }
    fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let at = self.here();
        assert!(self.labels.insert(name, at).is_none(), "duplicate label");
    }
    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }
    fn branch_to(&mut self, op: Opcode, src: Reg, label: impl Into<String>) {
        self.fixups.push((self.insts.len(), label.into()));
        self.push(Inst::branch(op, src, 0).expect("branch shape"));
    }
    fn br_to(&mut self, label: impl Into<String>) {
        self.fixups.push((self.insts.len(), label.into()));
        self.push(Inst::br(0));
    }
    fn finish(mut self, name: &str, data: Vec<DataSegment>) -> Program {
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = *self.labels.get(&label).unwrap_or_else(|| panic!("label {label}"));
            self.insts[at].set_target(target);
        }
        let labels = self.labels.iter().map(|(k, &v)| (k.clone(), v)).collect();
        Program { name: name.into(), insts: self.insts, entry: 0, data, labels }
    }
}

fn alui(op: Opcode, s: u8, imm: i32, d: u8) -> Inst {
    Inst::alui(op, r(s), imm, r(d)).expect("generator shapes are valid")
}
fn alu(op: Opcode, a: u8, b: u8, d: u8) -> Inst {
    Inst::alu(op, r(a), r(b), r(d)).expect("generator shapes are valid")
}
fn falu(op: Opcode, a: u8, b: u8, d: u8) -> Inst {
    Inst::alu(op, fr(a), fr(b), fr(d)).expect("generator shapes are valid")
}
fn cvt_to_fp(s: u8, d: u8) -> Inst {
    Inst {
        opcode: Opcode::Cvtif,
        dest: Some(fr(d)),
        srcs: [Some(r(s)), None],
        imm: 0,
        alias: AliasClass::Unknown,
        braid: BraidBits::unannotated(true),
    }
}
/// Materializes a (16-aligned, < 2^35) address constant into `dest`.
fn load_address(asm: &mut Asm, addr: u64, dest: u8) {
    assert_eq!(addr % 16, 0, "address constants are 16-aligned");
    assert!(addr >> 4 <= i32::MAX as u64);
    asm.push(alui(Opcode::Addi, 0, (addr >> 4) as i32, dest));
    asm.push(alui(Opcode::Slli, dest, 4, dest));
}

/// One operation tree: the generator's unit that becomes a braid.
///
/// `addrs` lists the block's live-in address registers (the tree's own
/// body first); loads mostly use the first but sometimes read a sibling
/// array, giving braids the multiple external inputs the paper measures.
#[allow(clippy::too_many_arguments)]
fn emit_tree(
    asm: &mut Asm,
    rng: &mut Rng,
    p: &WorkloadProfile,
    fp: bool,
    ops: u32,
    acc_rotation: usize,
    addrs: &[(u8, AliasClass)],
    store_disp: &mut i32,
) {
    let int_ops = [Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::And, Opcode::Or, Opcode::Andnot];
    let fp_ops = [Opcode::Fadd, Opcode::Fsub, Opcode::Fmul];
    let (addr_reg, alias) = addrs[0];

    // Chain temporaries currently holding live sub-results.
    let mut chains: Vec<u8> = Vec::new();
    let mut emitted = 0u32;

    let seed_leaf = |asm: &mut Asm, rng: &mut Rng, dest: u8, emitted: &mut u32| {
        if rng.gen_bool(p.load_prob) {
            let (base, alias) = if addrs.len() > 1 && rng.gen_bool(0.4) {
                addrs[rng.gen_range(1..addrs.len())]
            } else {
                addrs[0]
            };
            let disp = rng.gen_range(0..28) * 8;
            let inst = if fp {
                Inst::load(Opcode::Fldd, r(base), disp, fr(dest), alias)
            } else {
                Inst::load(Opcode::Ldq, r(base), disp, r(dest), alias)
            };
            asm.push(inst.expect("load shape"));
        } else if fp {
            asm.push(cvt_to_fp(INDEX, dest));
        } else if rng.gen_bool(0.5) {
            // Two-external leaf: combines the induction variable with the
            // loop-invariant parameter.
            let prm = if rng.gen_bool(0.5) { PARAM } else { PARAM2 };
            asm.push(alu(Opcode::Add, INDEX, prm, dest));
        } else {
            asm.push(alui(Opcode::Addi, INDEX, rng.gen_range(1..64), dest));
        }
        *emitted += 1;
    };

    seed_leaf(asm, rng, CHAIN_T[0], &mut emitted);
    chains.push(CHAIN_T[0]);

    while emitted < ops {
        if chains.len() >= 2 && rng.gen_bool(p.join_prob) {
            // Join two live chains.
            let b = chains.pop().expect("len >= 2");
            let a = *chains.last().expect("len >= 1");
            let op = if fp { fp_ops[rng.gen_range(0..fp_ops.len())] } else { int_ops[rng.gen_range(0..int_ops.len())] };
            asm.push(if fp { falu(op, a, b, a) } else { alu(op, a, b, a) });
            emitted += 1;
        } else if chains.len() < CHAIN_T.len() && rng.gen_bool(p.join_prob) && emitted + 2 <= ops {
            // Start a parallel sub-chain for a later join.
            let t = CHAIN_T[chains.len()];
            seed_leaf(asm, rng, t, &mut emitted);
            chains.push(t);
        } else {
            // Extend the most recent chain.
            let a = *chains.last().expect("non-empty");
            if rng.gen_bool(p.load_prob) && emitted + 2 <= ops {
                seed_leaf(asm, rng, LEAF_T, &mut emitted);
                let op = if fp { fp_ops[rng.gen_range(0..fp_ops.len())] } else { int_ops[rng.gen_range(0..int_ops.len())] };
                asm.push(if fp { falu(op, a, LEAF_T, a) } else { alu(op, a, LEAF_T, a) });
            } else if rng.gen_bool(0.45) {
                // Mix in the loop-invariant parameter (an external input).
                let op = if fp { fp_ops[rng.gen_range(0..fp_ops.len())] } else { int_ops[rng.gen_range(0..int_ops.len())] };
                let prm = if rng.gen_bool(0.5) { PARAM } else { PARAM2 };
                asm.push(if fp { falu(op, a, FPARAM, a) } else { alu(op, a, prm, a) });
            } else if fp {
                asm.push(falu(fp_ops[rng.gen_range(0..fp_ops.len())], a, a, a));
            } else {
                let imm_ops = [Opcode::Addi, Opcode::Xori, Opcode::Subi];
                asm.push(alui(imm_ops[rng.gen_range(0..imm_ops.len())], a, rng.gen_range(1..256), a));
            }
            emitted += 1;
        }
    }

    // Fold remaining parallel chains into the first.
    while chains.len() > 1 {
        let b = chains.pop().expect("len > 1");
        let a = *chains.last().expect("len >= 1");
        asm.push(if fp { falu(Opcode::Fadd, a, b, a) } else { alu(Opcode::Add, a, b, a) });
    }
    let root = chains[0];

    // Sink the root: store it or accumulate it.
    if rng.gen_bool(p.store_prob) {
        let disp = *store_disp;
        *store_disp += 8;
        let inst = if fp {
            Inst::store(Opcode::Fstd, fr(root), r(addr_reg), disp, alias)
        } else {
            Inst::store(Opcode::Stq, r(root), r(addr_reg), disp, alias)
        };
        asm.push(inst.expect("store shape"));
    } else if fp {
        let acc = FACCS[acc_rotation % FACCS.len()];
        asm.push(falu(Opcode::Fadd, acc, root, acc));
    } else {
        let acc = ACCS[acc_rotation % ACCS.len()];
        asm.push(alu(Opcode::Add, acc, root, acc));
    }
}

/// Emits `n` single-instruction braids (alignment nops and independent
/// event-counter updates, as a non-braid-aware compiler leaves behind).
fn emit_singles(asm: &mut Asm, rng: &mut Rng, n: u32, used_events: &mut [bool; 2]) {
    for _ in 0..n {
        let free = (0..EVENTS.len()).find(|&i| !used_events[i]);
        let choice = rng.gen_range(0..10);
        match free {
            Some(i) if choice < 6 => {
                used_events[i] = true;
                asm.push(alui(Opcode::Addi, EVENTS[i], 1, EVENTS[i]));
            }
            // A value computed for an untraversed path: produced but never
            // read (the paper's ~4% dead values). LEAF_T is redefined by
            // the next tree's load before any use.
            _ if choice < 8 => {
                asm.push(alui(Opcode::Addi, INDEX, rng.gen_range(1..64), LEAF_T));
            }
            _ => asm.push(Inst::nop()),
        }
    }
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-iteration walk stride in bytes for the streaming patterns.
fn stride_bytes(pattern: MemPattern) -> u64 {
    match pattern {
        MemPattern::Stream => 8,
        MemPattern::Strided(k) => 8 * k,
        // Random and PointerChase walk through tables instead.
        MemPattern::Random | MemPattern::PointerChase => 8,
    }
}

/// Generates the workload described by `profile` at dynamic-length `scale`.
pub fn generate(profile: &WorkloadProfile, scale: f64) -> Workload {
    let p = profile;
    assert!(
        p.block_bodies as usize <= ADDR_T.len(),
        "{}: at most {} bodies supported",
        p.name,
        ADDR_T.len()
    );
    let mut rng = Rng::seed_from_u64(fnv(p.name));
    let mut asm = Asm::default();
    let chase = p.pattern == MemPattern::PointerChase;
    let random = p.pattern == MemPattern::Random;
    let guard_entries: u64 = 1024;
    // Random-pattern index mask over the array region (power of two).
    let idx_mask = ((p.footprint / 4).next_power_of_two().clamp(1 << 16, 1 << 21) - 256) & !7;

    // ---- Init block ----
    let array_base = |b: usize| ARRAYS_BASE + b as u64 * ARRAY_SPACING;
    if !random {
        #[allow(clippy::needless_range_loop)] // body indexes both ADDR_T and bases
        for body in 0..p.block_bodies as usize {
            if chase && body == 0 {
                continue; // body 0 addresses through the chase cursor
            }
            load_address(&mut asm, array_base(body) + (body as u64 * 32), ADDR_T[body]);
        }
    }
    load_address(&mut asm, GUARD_TABLE, GUARD_BASE);
    if chase {
        load_address(&mut asm, CHASE_BASE, CHASE);
    }
    if random {
        load_address(&mut asm, array_base(0), RND_BASE);
        load_address(&mut asm, array_base(p.block_bodies as usize), IDX_BASE);
    }
    asm.push(alui(Opcode::Addi, 0, 0, INDEX));
    asm.push(alui(Opcode::Addi, 0, 0x55aa, PARAM));
    asm.push(alui(Opcode::Addi, 0, 0x0ff0, PARAM2));
    if p.fp_frac > 0.0 {
        asm.push(cvt_to_fp(PARAM, FPARAM));
    }
    let outer_patch = asm.here() as usize;
    asm.push(alui(Opcode::Addi, 0, 1, OUTER)); // patched below

    // Static guard decisions.
    let guarded: Vec<bool> = (0..p.block_bodies).map(|_| rng.gen_bool(p.guard_prob)).collect();
    let any_guard = guarded.iter().any(|&g| g);

    // ---- Outer (sweep) loop: rewind the walk so the working set is
    // bounded and revisited, as real kernels sweep their grids. ----
    asm.label("outer_top");
    let outer_start = asm.here();
    if !random {
        #[allow(clippy::needless_range_loop)] // body indexes both ADDR_T and bases
        for body in 0..p.block_bodies as usize {
            if chase && body == 0 {
                continue;
            }
            load_address(&mut asm, array_base(body) + (body as u64 * 32), ADDR_T[body]);
        }
    }
    let counter_patch = asm.here() as usize;
    asm.push(alui(Opcode::Addi, 0, 1, COUNTER)); // patched below

    // ---- Prologue block ----
    asm.label("loop_top");
    let loop_start = asm.here();
    if chase {
        // The chase load: consumed by the next block's trees and by the
        // next iteration — a single-instruction braid, like mcf's.
        asm.push(
            Inst::load(Opcode::Ldq, r(CHASE), 0, r(CHASE), AliasClass::Heap(0))
                .expect("load shape"),
        );
    }
    if random {
        // Data-dependent anchor: a masked index loaded from the index
        // table, rebased onto the data array each iteration.
        asm.push(alui(Opcode::Slli, INDEX, 3, ANCHOR));
        asm.push(alui(Opcode::Andi, ANCHOR, idx_mask as i32, ANCHOR));
        asm.push(alu(Opcode::Add, IDX_BASE, ANCHOR, ANCHOR));
        asm.push(
            Inst::load(Opcode::Ldq, r(ANCHOR), 0, r(ANCHOR), AliasClass::Global(80))
                .expect("load shape"),
        );
        asm.push(alu(Opcode::Add, RND_BASE, ANCHOR, ANCHOR));
    }
    if any_guard {
        let gmask = ((guard_entries - 1) * 8) as i32 & !63;
        asm.push(alui(Opcode::Slli, INDEX, 3, SCRATCH));
        asm.push(alui(Opcode::Andi, SCRATCH, gmask, SCRATCH));
        asm.push(alu(Opcode::Add, GUARD_BASE, SCRATCH, SCRATCH));
    }
    asm.push(alui(Opcode::Subi, COUNTER, 1, COUNTER));
    asm.branch_to(Opcode::Beq, r(COUNTER), "inner_exit");

    // ---- Body blocks ----
    let stride = stride_bytes(p.pattern) as i32;
    #[allow(clippy::needless_range_loop)] // fifos of registers, indexed deliberately
    for body in 0..p.block_bodies as usize {
        let mut used_events = [false; 2];
        if guarded[body] {
            asm.push(
                Inst::load(Opcode::Ldq, r(SCRATCH), body as i32 * 8, r(GUARD), AliasClass::Global(90))
                    .expect("load shape"),
            );
            asm.branch_to(Opcode::Beq, r(GUARD), format!("skip_{body}"));
        }
        let addr_of = |b: usize| -> (u8, AliasClass) {
            if chase && b == 0 {
                (CHASE, AliasClass::Heap(0))
            } else if random {
                (ANCHOR, AliasClass::Global(0))
            } else {
                (ADDR_T[b], AliasClass::Global(b as u16))
            }
        };
        let mut addrs: Vec<(u8, AliasClass)> = vec![addr_of(body)];
        if !random {
            for other in 0..p.block_bodies as usize {
                if other != body {
                    addrs.push(addr_of(other));
                }
            }
        }
        let trees = rng.gen_range(p.trees_per_block.0..=p.trees_per_block.1);
        let singles = rng.gen_range(p.singles_per_block.0..=p.singles_per_block.1);
        // Results land *behind* the walk (like a stencil writing its output
        // plane), so future iterations' loads never depend on them; the
        // pointer-chase body stores into its own node's payload instead.
        let mut store_disp = if chase && body == 0 { 24 } else { -512 };
        let mut singles_left = singles;
        for t in 0..trees {
            if singles_left > 0 && rng.gen_bool(0.5) {
                emit_singles(&mut asm, &mut rng, 1, &mut used_events);
                singles_left -= 1;
            }
            let fp = rng.gen_bool(p.fp_frac);
            let ops = rng.gen_range(p.tree_ops.0..=p.tree_ops.1);
            emit_tree(&mut asm, &mut rng, p, fp, ops, body + t as usize, &addrs, &mut store_disp);
        }
        emit_singles(&mut asm, &mut rng, singles_left, &mut used_events);
        // Advance this body's address — a single-instruction braid whose
        // consumer is the next iteration (the paper's `lda` braid).
        if !(random || (chase && body == 0)) {
            asm.push(alui(Opcode::Lda, ADDR_T[body], stride, ADDR_T[body]));
        }
        if guarded[body] {
            asm.label(format!("skip_{body}"));
        }
    }

    // ---- Induction and back edges ----
    asm.push(alui(Opcode::Lda, INDEX, 1, INDEX));
    asm.br_to("loop_top");
    asm.label("inner_exit");
    asm.push(alui(Opcode::Subi, OUTER, 1, OUTER));
    asm.branch_to(Opcode::Bne, r(OUTER), "outer_top");
    asm.push(Inst::halt());

    // Pick iteration counts from the measured loop-body length: the inner
    // sweep covers a bounded working set (at most a quarter of the run, and
    // at most `footprint/4` bytes per array), the outer loop repeats it.
    let body_len = (asm.here() - loop_start - 3) as u64; // per inner iteration
    let outer_block = (loop_start - outer_start) as u64 + 3;
    let target = (p.dyn_insts as f64 * scale) as u64;
    let total_iters = (target / body_len).max(8);
    // The swept working set is the benchmark's character (its footprint),
    // independent of how long the run is: each array's sweep covers
    // `footprint / 4` bytes (clamped), and the outer loop repeats it.
    let cap_by_foot = (p.footprint / 4).max(4096) / stride_bytes(p.pattern).max(1);
    let inner_iters = cap_by_foot.clamp(64, 8192).min(total_iters);
    let outer_iters = total_iters.div_ceil(inner_iters);
    asm.insts[counter_patch] = alui(Opcode::Addi, 0, inner_iters as i32, COUNTER);
    asm.insts[outer_patch] = alui(Opcode::Addi, 0, outer_iters as i32, OUTER);
    let iters = inner_iters * outer_iters;
    let fuel =
        outer_start as u64 + outer_iters * (outer_block + (inner_iters + 1) * body_len) + 10_000;

    // ---- Data segments (sized from the iteration count) ----
    let mut data = Vec::new();
    let guard_words: Vec<u64> = (0..guard_entries)
        .map(|i| {
            if rng.gen_bool(p.branch_noise) {
                rng.gen_range(0..2u64)
            } else {
                (i % 4 != 0) as u64
            }
        })
        .collect();
    data.push(DataSegment::from_words(GUARD_TABLE, &guard_words));
    if chase {
        let nodes = (p.footprint / NODE_BYTES).clamp(64, 1 << 15);
        let mut perm: Vec<u64> = (0..nodes).collect();
        // Sattolo's algorithm produces a single cycle.
        #[allow(clippy::needless_range_loop)] // Sattolo's algorithm is index-based
        for i in (1..nodes as usize).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let mut seg = DataSegment::zeroed(CHASE_BASE, (nodes * NODE_BYTES) as usize);
        #[allow(clippy::needless_range_loop)] // i addresses node offsets and perm
        for i in 0..nodes as usize {
            seg.put_word(i * NODE_BYTES as usize, CHASE_BASE + perm[i] * NODE_BYTES);
            seg.put_word(i * NODE_BYTES as usize + 8, i as u64 + 1);
            seg.put_word(i * NODE_BYTES as usize + 16, (i as u64).wrapping_mul(7) + 3);
        }
        data.push(seg);
    }
    // Initialized array contents: cover the walked region (or the index
    // mask for data-dependent addressing), capped to keep generation fast.
    let _ = iters;
    let walked = if random {
        idx_mask + 512
    } else {
        (inner_iters * stride_bytes(p.pattern) + 4096).min(8 << 20)
    };
    let data_bodies: &[usize] = if random { &[0] } else { &[0, 1, 2, 3, 4, 5] };
    for &body in data_bodies.iter().take((p.block_bodies as usize).max(1)) {
        if chase && body == 0 && !random {
            continue;
        }
        let words = (walked / 8) as usize;
        let mut content = Vec::with_capacity(words);
        for i in 0..words {
            if p.class == BenchClass::Float {
                content.push((1.0 + i as f64 * 0.001).to_bits());
            } else {
                content.push(rng.gen_range(1..1_000_000u64));
            }
        }
        data.push(DataSegment::from_words(array_base(body), &content));
    }
    if random {
        // The index table: random 8-aligned offsets under the mask.
        let words = (idx_mask / 8 + 64) as usize;
        let content: Vec<u64> =
            (0..words).map(|_| rng.gen_range(0..idx_mask / 8) * 8).collect();
        data.push(DataSegment::from_words(array_base(p.block_bodies as usize), &content));
    }

    let program = asm.finish(p.name, data);
    debug_assert!(program.validate().is_ok(), "generated program must validate");
    Workload { name: p.name.to_string(), class: p.class, program, fuel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::PROFILES;

    #[test]
    fn every_benchmark_generates_and_validates() {
        for p in PROFILES {
            let w = generate(p, 0.05);
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(w.program.insts.len() > 20, "{} too small", p.name);
            assert!(w.fuel > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PROFILES[0], 0.1);
        let b = generate(&PROFILES[0], 0.1);
        assert_eq!(a.program.insts, b.program.insts);
        assert_eq!(a.program.data, b.program.data);
    }

    #[test]
    fn scale_changes_iteration_count_not_code() {
        let small = generate(&PROFILES[3], 0.1);
        let large = generate(&PROFILES[3], 1.0);
        assert_eq!(small.program.insts.len(), large.program.insts.len());
        // Fuel includes a fixed safety margin; the loop portion scales.
        assert!(large.fuel - 10_000 > (small.fuel - 10_000) * 5);
    }

    #[test]
    fn tables_live_below_the_arrays() {
        for p in PROFILES {
            let w = generate(p, 0.05);
            for seg in &w.program.data {
                assert!(seg.base >= GUARD_TABLE);
                assert!(seg.end() < 0x4000_0000, "{}: data below the text base", p.name);
            }
        }
    }

    #[test]
    fn pointer_chase_ring_is_a_cycle() {
        let w = generate(PROFILES.iter().find(|p| p.name == "mcf").unwrap(), 0.05);
        let ring = w
            .program
            .data
            .iter()
            .find(|s| s.base == CHASE_BASE)
            .expect("chase segment");
        let nodes = ring.bytes.len() / NODE_BYTES as usize;
        let read = |i: usize| {
            let off = i * NODE_BYTES as usize;
            u64::from_le_bytes(ring.bytes[off..off + 8].try_into().unwrap())
        };
        let mut seen = vec![false; nodes];
        let mut cur = 0usize;
        for _ in 0..nodes {
            assert!(!seen[cur], "ring revisits node {cur} early");
            seen[cur] = true;
            cur = ((read(cur) - ring.base) / NODE_BYTES) as usize;
        }
        assert_eq!(cur, 0, "ring closes after visiting every node");
    }

    #[test]
    fn streaming_benchmarks_advance_with_lda_singles() {
        let w = generate(PROFILES.iter().find(|p| p.name == "swim").unwrap(), 0.05);
        let ldas = w
            .program
            .insts
            .iter()
            .filter(|i| i.opcode == Opcode::Lda)
            .count();
        // One per body plus the induction update.
        assert!(ldas >= 3, "swim advances its arrays with lda: {ldas}");
    }
}
