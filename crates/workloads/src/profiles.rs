//! Per-benchmark generator parameters.
//!
//! Each profile is tuned toward the paper's measured braid statistics
//! (Tables 1–3) and the benchmark's well-known memory/branch character.
//! `tree_ops` drives braid size; `trees_per_block` plus
//! `singles_per_block` drive braids per block; `join_prob` drives braid
//! width (the paper measures ~1.1, i.e. near-chains).

/// Integer or floating-point benchmark (the paper reports the two groups
/// separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchClass {
    /// SPECint-like program.
    Int,
    /// SPECfp-like program.
    Float,
}

/// The memory access pattern of a workload's dominant loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPattern {
    /// Sequential streaming through arrays (unit stride).
    Stream,
    /// Strided accesses (`stride` elements apart, a power of two).
    Strided(u64),
    /// Data-dependent indexing over the footprint.
    Random,
    /// Pointer chasing through a shuffled linked ring (mcf-like).
    PointerChase,
}

/// Generator parameters for one benchmark.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Benchmark name (SPEC CPU2000).
    pub name: &'static str,
    /// Integer or floating point.
    pub class: BenchClass,
    /// Code bodies in the main loop (at most 6).
    pub block_bodies: u32,
    /// Operation trees (≈ multi-instruction braids) per body.
    pub trees_per_block: (u32, u32),
    /// Operations per tree (braid size ≈ ops + 1 for the sink).
    pub tree_ops: (u32, u32),
    /// Single-instruction braids (nops, event counters) per body.
    pub singles_per_block: (u32, u32),
    /// Probability an operation joins/forks chains (braid width control).
    pub join_prob: f64,
    /// Probability a tree leaf is a load.
    pub load_prob: f64,
    /// Probability a tree root is stored (vs. accumulated).
    pub store_prob: f64,
    /// Fraction of trees computed in floating point.
    pub fp_frac: f64,
    /// Probability each body is guarded by a data-dependent branch.
    pub guard_prob: f64,
    /// Fraction of guard outcomes that are data-random (unpredictable).
    pub branch_noise: f64,
    /// Data footprint in bytes.
    pub footprint: u64,
    /// Dominant access pattern.
    pub pattern: MemPattern,
    /// Baseline dynamic instructions at scale 1.0.
    pub dyn_insts: u64,
}

macro_rules! profile {
    ($name:literal, $class:ident, bodies=$bodies:literal, trees=($t0:literal,$t1:literal),
     ops=($o0:literal,$o1:literal), singles=($s0:literal,$s1:literal), join=$join:literal,
     load=$load:literal, store=$store:literal, fp=$fp:literal, guard=$guard:literal,
     noise=$noise:literal, foot=$foot:expr, pat=$pat:expr) => {
        WorkloadProfile {
            name: $name,
            class: BenchClass::$class,
            block_bodies: $bodies,
            trees_per_block: ($t0, $t1),
            tree_ops: ($o0, $o1),
            singles_per_block: ($s0, $s1),
            join_prob: $join,
            load_prob: $load,
            store_prob: $store,
            fp_frac: $fp,
            guard_prob: $guard,
            branch_noise: $noise,
            footprint: $foot,
            pattern: $pat,
            dyn_insts: 60_000,
        }
    };
}

use MemPattern::*;

/// The 26 benchmark profiles (12 integer, 14 floating point), tuned toward
/// the paper's Tables 1–3.
pub static PROFILES: &[WorkloadProfile] = &[
    // ---- SPECint 2000 ----
    profile!("bzip2", Int, bodies=3, trees=(1,2), ops=(5,7), singles=(0,1), join=0.08,
             load=0.30, store=0.50, fp=0.0, guard=0.80, noise=0.25, foot=128<<10, pat=Stream),
    profile!("crafty", Int, bodies=5, trees=(1,2), ops=(4,6), singles=(0,1), join=0.10,
             load=0.35, store=0.35, fp=0.0, guard=0.85, noise=0.35, foot=64<<10, pat=Random),
    profile!("eon", Int, bodies=4, trees=(2,3), ops=(2,3), singles=(1,2), join=0.08,
             load=0.30, store=0.45, fp=0.25, guard=0.70, noise=0.15, foot=32<<10, pat=Strided(4)),
    profile!("gap", Int, bodies=4, trees=(1,2), ops=(3,5), singles=(0,1), join=0.08,
             load=0.35, store=0.40, fp=0.0, guard=0.75, noise=0.20, foot=96<<10, pat=Stream),
    profile!("gcc", Int, bodies=6, trees=(1,2), ops=(3,4), singles=(0,1), join=0.10,
             load=0.35, store=0.40, fp=0.0, guard=0.80, noise=0.30, foot=128<<10, pat=Random),
    profile!("gzip", Int, bodies=3, trees=(1,2), ops=(5,7), singles=(0,1), join=0.08,
             load=0.35, store=0.45, fp=0.0, guard=0.75, noise=0.25, foot=96<<10, pat=Stream),
    profile!("mcf", Int, bodies=3, trees=(1,1), ops=(3,4), singles=(0,0), join=0.05,
             load=0.50, store=0.25, fp=0.0, guard=0.70, noise=0.30, foot=4<<20, pat=PointerChase),
    profile!("parser", Int, bodies=5, trees=(1,2), ops=(2,4), singles=(1,2), join=0.06,
             load=0.35, store=0.35, fp=0.0, guard=0.85, noise=0.30, foot=64<<10, pat=Random),
    profile!("perlbmk", Int, bodies=5, trees=(1,2), ops=(3,4), singles=(2,2), join=0.08,
             load=0.35, store=0.40, fp=0.0, guard=0.80, noise=0.25, foot=64<<10, pat=Random),
    profile!("twolf", Int, bodies=5, trees=(2,3), ops=(3,5), singles=(1,1), join=0.10,
             load=0.35, store=0.40, fp=0.10, guard=0.80, noise=0.30, foot=64<<10, pat=Random),
    profile!("vortex", Int, bodies=5, trees=(2,3), ops=(2,3), singles=(1,2), join=0.06,
             load=0.35, store=0.45, fp=0.0, guard=0.75, noise=0.15, foot=64<<10, pat=Strided(8)),
    profile!("vpr", Int, bodies=5, trees=(1,2), ops=(3,5), singles=(1,2), join=0.10,
             load=0.35, store=0.40, fp=0.10, guard=0.80, noise=0.30, foot=64<<10, pat=Random),
    // ---- SPECfp 2000 ----
    profile!("ammp", Float, bodies=3, trees=(1,2), ops=(4,5), singles=(0,0), join=0.28,
             load=0.40, store=0.35, fp=0.85, guard=0.70, noise=0.10, foot=96<<10, pat=Stream),
    profile!("applu", Float, bodies=2, trees=(3,3), ops=(4,6), singles=(1,1), join=0.28,
             load=0.40, store=0.45, fp=0.85, guard=0.0, noise=0.05, foot=128<<10, pat=Stream),
    profile!("apsi", Float, bodies=2, trees=(2,2), ops=(4,5), singles=(0,1), join=0.28,
             load=0.40, store=0.45, fp=0.80, guard=0.1, noise=0.05, foot=64<<10, pat=Strided(16)),
    profile!("art", Float, bodies=3, trees=(1,2), ops=(4,5), singles=(0,1), join=0.28,
             load=0.45, store=0.30, fp=0.75, guard=0.5, noise=0.15, foot=3<<20, pat=Stream),
    profile!("equake", Float, bodies=3, trees=(1,2), ops=(3,5), singles=(0,1), join=0.28,
             load=0.45, store=0.35, fp=0.80, guard=0.6, noise=0.10, foot=128<<10, pat=Random),
    profile!("facerec", Float, bodies=3, trees=(1,2), ops=(2,4), singles=(1,1), join=0.28,
             load=0.40, store=0.35, fp=0.80, guard=0.5, noise=0.10, foot=96<<10, pat=Stream),
    profile!("fma3d", Float, bodies=4, trees=(1,2), ops=(4,5), singles=(0,1), join=0.28,
             load=0.40, store=0.40, fp=0.80, guard=0.5, noise=0.10, foot=96<<10, pat=Strided(8)),
    profile!("galgel", Float, bodies=2, trees=(2,3), ops=(2,3), singles=(0,1), join=0.28,
             load=0.40, store=0.40, fp=0.80, guard=0.0, noise=0.05, foot=128<<10, pat=Stream),
    profile!("lucas", Float, bodies=1, trees=(3,4), ops=(9,11), singles=(0,1), join=0.28,
             load=0.35, store=0.40, fp=0.85, guard=0.0, noise=0.05, foot=128<<10, pat=Strided(32)),
    profile!("mesa", Float, bodies=4, trees=(1,2), ops=(2,3), singles=(1,1), join=0.28,
             load=0.35, store=0.40, fp=0.60, guard=0.6, noise=0.15, foot=96<<10, pat=Stream),
    profile!("mgrid", Float, bodies=1, trees=(5,5), ops=(23,27), singles=(0,0), join=0.28,
             load=0.45, store=0.35, fp=0.90, guard=0.0, noise=0.02, foot=4<<20, pat=Strided(4)),
    profile!("sixtrack", Float, bodies=3, trees=(1,2), ops=(3,4), singles=(1,1), join=0.28,
             load=0.35, store=0.40, fp=0.80, guard=0.4, noise=0.10, foot=96<<10, pat=Stream),
    profile!("swim", Float, bodies=2, trees=(3,4), ops=(7,9), singles=(1,1), join=0.28,
             load=0.45, store=0.45, fp=0.90, guard=0.0, noise=0.02, foot=4<<20, pat=Stream),
    profile!("wupwise", Float, bodies=2, trees=(1,2), ops=(4,6), singles=(1,1), join=0.28,
             load=0.40, store=0.40, fp=0.85, guard=0.3, noise=0.05, foot=128<<10, pat=Stream),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_profiles_with_unique_names() {
        assert_eq!(PROFILES.len(), 26);
        let mut names: Vec<&str> = PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn class_split_matches_paper() {
        let ints = PROFILES.iter().filter(|p| p.class == BenchClass::Int).count();
        let fps = PROFILES.iter().filter(|p| p.class == BenchClass::Float).count();
        assert_eq!((ints, fps), (12, 14));
    }

    #[test]
    fn parameters_are_sane() {
        for p in PROFILES {
            assert!(p.block_bodies >= 1 && p.block_bodies <= 6);
            assert!(p.trees_per_block.0 >= 1 && p.trees_per_block.0 <= p.trees_per_block.1);
            assert!(p.tree_ops.0 >= 1 && p.tree_ops.0 <= p.tree_ops.1);
            assert!(p.singles_per_block.0 <= p.singles_per_block.1);
            for f in [p.join_prob, p.load_prob, p.store_prob, p.fp_frac, p.guard_prob, p.branch_noise] {
                assert!((0.0..=1.0).contains(&f), "{}: {f} out of range", p.name);
            }
            assert!(p.footprint >= 4096);
            assert!(p.dyn_insts > 0);
            if p.class == BenchClass::Int {
                assert!(p.fp_frac <= 0.3);
            } else {
                assert!(p.fp_frac >= 0.5);
            }
        }
    }

    #[test]
    fn mgrid_has_the_big_braids() {
        let mgrid = PROFILES.iter().find(|p| p.name == "mgrid").unwrap();
        assert!(mgrid.tree_ops.0 >= 10, "paper Table 2: mgrid braid size 13.2");
        let mcf = PROFILES.iter().find(|p| p.name == "mcf").unwrap();
        assert_eq!(mcf.pattern, MemPattern::PointerChase);
    }
}
