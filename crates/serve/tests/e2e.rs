//! End-to-end tests: a live daemon on an ephemeral port, real sockets,
//! real threads. Each test owns its own server and shuts it down via the
//! protocol, so the tests double as drain-semantics coverage.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::thread::{self, JoinHandle};

use braid_serve::loadgen::{run_loadgen, LoadgenConfig};
use braid_serve::server::{Server, ServerConfig};
use braid_sweep::json::{self, Json};

/// Boots a daemon and returns its address plus the join handle for its
/// accept loop.
fn start(cfg: ServerConfig) -> (String, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// A simple synchronous client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, writer: BufWriter::new(stream) }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        json::parse(&self.recv()).expect("response is JSON")
    }
}

fn status(doc: &Json) -> &str {
    doc.get("status").and_then(Json::as_str).expect("status field")
}

#[test]
fn simulate_is_served_cached_and_drained() {
    let (addr, handle) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let req = r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid"}"#;
    c.send(req);
    let first = c.recv();
    let doc = json::parse(&first).unwrap();
    assert_eq!(status(&doc), "ok");
    assert!(doc.get("result").unwrap().get("cycles").unwrap().as_u64().unwrap() > 0);

    // Same content, different id: byte-identical modulo the id field.
    c.send(r#"{"id":2,"kind":"simulate","workload":"dot_product","core":"braid"}"#);
    let second = c.recv();
    assert_eq!(first.replace("\"id\":1", "\"id\":2"), second);

    let stats = c.round_trip(r#"{"id":3,"kind":"stats"}"#);
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));

    let bye = c.round_trip(r#"{"id":4,"kind":"shutdown"}"#);
    assert_eq!(status(&bye), "ok");
    handle.join().unwrap().unwrap();
}

#[test]
fn responses_come_back_in_request_order() {
    let (addr, handle) = start(ServerConfig { threads: 4, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    // Pipeline a burst of differently-sized jobs; the pool finishes them
    // out of order, the writer must not.
    let n = 16u64;
    for id in 0..n {
        let workload = ["dot_product", "stencil", "histogram", "pointer_chase"][id as usize % 4];
        let core = ["braid", "ooo", "inorder", "dep"][(id as usize / 4) % 4];
        c.send(&format!(
            r#"{{"id":{id},"kind":"simulate","workload":"{workload}","core":"{core}"}}"#
        ));
    }
    for id in 0..n {
        let doc = json::parse(&c.recv()).unwrap();
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(id), "in-order delivery");
        assert_eq!(status(&doc), "ok");
    }

    c.send(r#"{"id":99,"kind":"shutdown"}"#);
    let _ = c.recv();
    handle.join().unwrap().unwrap();
}

#[test]
fn deadline_aborts_return_structured_errors() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let doc = c.round_trip(
        r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"ooo","deadline":50}"#,
    );
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("deadline"));
    let msg = doc.get("message").unwrap().as_str().unwrap();
    assert!(msg.contains("deadline exceeded"), "structured deadline message, got {msg}");

    // The server-wide default applies when the request carries none.
    let (addr2, handle2) =
        start(ServerConfig { threads: 1, deadline_cycles: 50, ..ServerConfig::default() });
    let mut c2 = Client::connect(&addr2);
    let doc = c2
        .round_trip(r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"ooo"}"#);
    assert_eq!(doc.get("code").unwrap().as_str(), Some("deadline"));
    let _ = c2.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle2.join().unwrap().unwrap();

    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn protocol_errors_are_replied_not_fatal() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let doc = c.round_trip("this is not json");
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("bad-request"));

    let doc = c.round_trip(r#"{"id":5,"kind":"simulate","workload":"nonesuch","core":"ooo"}"#);
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("unknown-workload"));
    assert_eq!(doc.get("id").unwrap().as_u64(), Some(5));

    // The connection survived both errors.
    let doc = c.round_trip(r#"{"id":6,"kind":"translate","workload":"fig2_life"}"#);
    assert_eq!(status(&doc), "ok");
    assert!(doc.get("result").unwrap().get("braids").unwrap().as_u64().unwrap() > 0);

    let _ = c.round_trip(r#"{"id":7,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn check_requests_return_the_full_report() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);
    let doc = c.round_trip(r#"{"id":1,"kind":"check","workload":"stencil"}"#);
    assert_eq!(status(&doc), "ok");
    assert_eq!(doc.get("result").unwrap().get("errors").unwrap().as_u64(), Some(0));
    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn full_connection_table_refuses_with_retry() {
    let (addr, handle) =
        start(ServerConfig { threads: 1, max_connections: 0, ..ServerConfig::default() });
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read retry line");
    let doc = json::parse(line.trim_end()).unwrap();
    assert_eq!(status(&doc), "retry");
    assert!(doc.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);

    // With zero connection slots no shutdown request can ever be
    // delivered; the daemon thread dies with the test process.
    drop(reader);
    drop(handle);
}

#[test]
fn loadgen_verifies_concurrent_equals_sequential() {
    let (addr, handle) = start(ServerConfig { threads: 4, ..ServerConfig::default() });
    let cfg = LoadgenConfig {
        addr,
        connections: 3,
        requests: 60,
        seed: 7,
        verify: true,
        shutdown: true,
    };
    let report = run_loadgen(&cfg).expect("loadgen run");
    assert!(report.verified(), "replay digest must match");
    assert_eq!(report.ok, report.sent, "kernel mix produces no errors");
    assert!(report.cache_hits > 0, "repeated content must hit the cache");
    assert_eq!(report.digest.len(), 16, "canonical digest rendering");
    handle.join().unwrap().unwrap();
}
