//! End-to-end tests: a live daemon on an ephemeral port, real sockets,
//! real threads. Each test owns its own server and shuts it down via the
//! protocol, so the tests double as drain-semantics coverage.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread::{self, JoinHandle};

use braid_serve::chaos::ChaosSpec;
use braid_serve::loadgen::{run_loadgen, LoadgenConfig};
use braid_serve::server::{Server, ServerConfig};
use braid_sweep::json::{self, Json};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("braid-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots a daemon and returns its address plus the join handle for its
/// accept loop.
fn start(cfg: ServerConfig) -> (String, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// A simple synchronous client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, writer: BufWriter::new(stream) }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        json::parse(&self.recv()).expect("response is JSON")
    }
}

fn status(doc: &Json) -> &str {
    doc.get("status").and_then(Json::as_str).expect("status field")
}

#[test]
fn simulate_is_served_cached_and_drained() {
    let (addr, handle) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let req = r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid"}"#;
    c.send(req);
    let first = c.recv();
    let doc = json::parse(&first).unwrap();
    assert_eq!(status(&doc), "ok");
    assert!(doc.get("result").unwrap().get("cycles").unwrap().as_u64().unwrap() > 0);

    // Same content, different id: byte-identical modulo the id field.
    c.send(r#"{"id":2,"kind":"simulate","workload":"dot_product","core":"braid"}"#);
    let second = c.recv();
    assert_eq!(first.replace("\"id\":1", "\"id\":2"), second);

    let stats = c.round_trip(r#"{"id":3,"kind":"stats"}"#);
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));

    let bye = c.round_trip(r#"{"id":4,"kind":"shutdown"}"#);
    assert_eq!(status(&bye), "ok");
    handle.join().unwrap().unwrap();
}

#[test]
fn responses_come_back_in_request_order() {
    let (addr, handle) = start(ServerConfig { threads: 4, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    // Pipeline a burst of differently-sized jobs; the pool finishes them
    // out of order, the writer must not.
    let n = 16u64;
    for id in 0..n {
        let workload = ["dot_product", "stencil", "histogram", "pointer_chase"][id as usize % 4];
        let core = ["braid", "ooo", "inorder", "dep"][(id as usize / 4) % 4];
        c.send(&format!(
            r#"{{"id":{id},"kind":"simulate","workload":"{workload}","core":"{core}"}}"#
        ));
    }
    for id in 0..n {
        let doc = json::parse(&c.recv()).unwrap();
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(id), "in-order delivery");
        assert_eq!(status(&doc), "ok");
    }

    c.send(r#"{"id":99,"kind":"shutdown"}"#);
    let _ = c.recv();
    handle.join().unwrap().unwrap();
}

#[test]
fn deadline_aborts_return_structured_errors() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let doc = c.round_trip(
        r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"ooo","deadline":50}"#,
    );
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("deadline"));
    let msg = doc.get("message").unwrap().as_str().unwrap();
    assert!(msg.contains("deadline exceeded"), "structured deadline message, got {msg}");

    // The server-wide default applies when the request carries none.
    let (addr2, handle2) =
        start(ServerConfig { threads: 1, deadline_cycles: 50, ..ServerConfig::default() });
    let mut c2 = Client::connect(&addr2);
    let doc = c2
        .round_trip(r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"ooo"}"#);
    assert_eq!(doc.get("code").unwrap().as_str(), Some("deadline"));
    let _ = c2.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle2.join().unwrap().unwrap();

    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn protocol_errors_are_replied_not_fatal() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let doc = c.round_trip("this is not json");
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("bad-request"));

    let doc = c.round_trip(r#"{"id":5,"kind":"simulate","workload":"nonesuch","core":"ooo"}"#);
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("unknown-workload"));
    assert_eq!(doc.get("id").unwrap().as_u64(), Some(5));

    // The connection survived both errors.
    let doc = c.round_trip(r#"{"id":6,"kind":"translate","workload":"fig2_life"}"#);
    assert_eq!(status(&doc), "ok");
    assert!(doc.get("result").unwrap().get("braids").unwrap().as_u64().unwrap() > 0);

    let _ = c.round_trip(r#"{"id":7,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn check_requests_return_the_full_report() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);
    let doc = c.round_trip(r#"{"id":1,"kind":"check","workload":"stencil"}"#);
    assert_eq!(status(&doc), "ok");
    assert_eq!(doc.get("result").unwrap().get("errors").unwrap().as_u64(), Some(0));
    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn execution_tiers_are_distinct_cache_entries_with_identical_hits() {
    let (addr, handle) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    // The same workload/core at three tiers: three distinct computations
    // (the tier joins the cache digest), then one byte-identical hit each.
    let req = |id: u64, tier: &str| {
        format!(
            r#"{{"id":{id},"kind":"simulate","workload":"dot_product","core":"braid","tier":"{tier}"}}"#
        )
    };
    let mut cold = Vec::new();
    for (i, tier) in ["full", "func", "sampled"].iter().enumerate() {
        c.send(&req(i as u64, tier));
        cold.push(c.recv());
    }
    let full = json::parse(&cold[0]).unwrap();
    assert_eq!(status(&full), "ok");
    // The full tier answers exactly as an untiered request would — the
    // tier field must not perturb the original payload or its digest.
    c.send(r#"{"id":9,"kind":"simulate","workload":"dot_product","core":"braid"}"#);
    assert_eq!(c.recv(), cold[0].replace("\"id\":0", "\"id\":9"), "tier full == untiered, cached");

    let func = json::parse(&cold[1]).unwrap();
    let fr = func.get("result").unwrap();
    assert_eq!(fr.get("tier").unwrap().as_str(), Some("func"));
    assert_eq!(fr.get("digest").unwrap().as_str().map(str::len), Some(16));
    assert!(fr.get("cycles").is_none(), "functional tier reports no timing");

    let sampled = json::parse(&cold[2]).unwrap();
    let sr = sampled.get("result").unwrap();
    assert_eq!(sr.get("tier").unwrap().as_str(), Some("sampled"));
    assert!(sr.get("est_cycles").unwrap().as_u64().unwrap() > 0);
    assert!(sr.get("intervals").unwrap().as_u64().unwrap() > 0);
    let est = sr.get("est_cycles").unwrap().as_u64().unwrap();
    let exact = full.get("result").unwrap().get("cycles").unwrap().as_u64().unwrap();
    let err = (est as f64 / exact as f64 - 1.0).abs();
    assert!(err <= 0.05, "sampled estimate within 5% of exact: {est} vs {exact}");

    // All three tiers, plus the untiered alias of full, share the
    // instruction count: tiers agree on the executed stream.
    let insts = |d: &Json| d.get("result").unwrap().get("instructions").unwrap().as_u64();
    assert_eq!(insts(&full), insts(&func));
    assert_eq!(insts(&full), insts(&sampled));

    // Second round: every tier hits its own cache entry byte-for-byte.
    for (i, tier) in ["full", "func", "sampled"].iter().enumerate() {
        let id = 20 + i as u64;
        c.send(&req(id, tier));
        let warm = c.recv();
        assert_eq!(
            warm,
            cold[i].replace(&format!("\"id\":{i}"), &format!("\"id\":{id}")),
            "tier {tier} cache hit is byte-identical"
        );
    }
    let stats = c.round_trip(r#"{"id":40,"kind":"stats"}"#);
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(3), "one computation per tier");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(4), "untiered full + three repeats");

    // Sampling knobs are part of the digest: a different window is a new
    // computation, not a stale hit.
    let doc = c.round_trip(
        r#"{"id":41,"kind":"simulate","workload":"dot_product","core":"braid","tier":"sampled","sample_period":8192,"sample_warmup":256,"sample_len":1024}"#,
    );
    assert_eq!(status(&doc), "ok");
    let stats = c.round_trip(r#"{"id":42,"kind":"stats"}"#);
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(4));

    // Tiered sweep points carry the estimate alongside the exact run.
    let doc = c.round_trip(
        r#"{"id":43,"kind":"sweep-point","workload":"dot_product","core":"ooo","tier":"sampled"}"#,
    );
    assert_eq!(status(&doc), "ok");
    let r = doc.get("result").unwrap();
    assert!(r.get("key").unwrap().as_str().unwrap().ends_with(":tsampled"));
    assert!(r.get("cycles").unwrap().as_u64().unwrap() > 0, "exact run rides along");
    assert!(r.get("est_cycles").unwrap().as_u64().unwrap() > 0);
    assert!(r.get("ipc_err").unwrap().as_f64().unwrap().abs() <= 0.05);

    let _ = c.round_trip(r#"{"id":50,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn full_connection_table_refuses_with_retry() {
    let (addr, handle) =
        start(ServerConfig { threads: 1, max_connections: 0, ..ServerConfig::default() });
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read retry line");
    let doc = json::parse(line.trim_end()).unwrap();
    assert_eq!(status(&doc), "retry");
    assert!(doc.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);

    // With zero connection slots no shutdown request can ever be
    // delivered; the daemon thread dies with the test process.
    drop(reader);
    drop(handle);
}

#[test]
fn loadgen_verifies_concurrent_equals_sequential() {
    let (addr, handle) = start(ServerConfig { threads: 4, ..ServerConfig::default() });
    let cfg = LoadgenConfig {
        addr,
        connections: 3,
        requests: 60,
        seed: 7,
        verify: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&cfg).expect("loadgen run");
    assert!(report.verified(), "replay digest must match");
    assert_eq!(report.ok, report.sent, "kernel mix produces no errors");
    assert!(report.cache_hits > 0, "repeated content must hit the cache");
    assert_eq!(report.digest.len(), 16, "canonical digest rendering");
    handle.join().unwrap().unwrap();
}

#[test]
fn disk_cache_survives_restart_with_byte_identical_hits() {
    let tmp = TempDir::new("restart");
    let req = r#"{"id":1,"kind":"simulate","workload":"stencil","core":"braid","width":8}"#;

    // First daemon computes and persists the result.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        cache_dir: Some(tmp.0.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.send(req);
    let cold = c.recv();
    assert_eq!(status(&json::parse(&cold).unwrap()), "ok");
    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();

    // A fresh daemon over the same directory serves the same bytes from
    // the disk tier without recomputing.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        cache_dir: Some(tmp.0.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.send(req);
    let warm = c.recv();
    assert_eq!(warm, cold, "disk-tier hit must be byte-identical to the cold compute");

    let stats = c.round_trip(r#"{"id":2,"kind":"stats"}"#);
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1), "served as a hit, not recomputed");
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(0));
    let disk = cache.get("disk").expect("disk counters present with a cache dir");
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(disk.get("quarantined").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("enabled").unwrap().as_bool(), Some(true));

    let _ = c.round_trip(r#"{"id":3,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn chaos_faults_are_injected_and_fully_recovered() {
    let tmp = TempDir::new("chaos");
    let spec = ChaosSpec::parse("seed=11,torn=0.08,drop=0.05,stall=0.05,stall_ms=5,panic=0.04,corrupt=0.15")
        .expect("valid spec");
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        cache_dir: Some(tmp.0.clone()),
        chaos: Some(spec),
        ..ServerConfig::default()
    });

    // The resilient load generator must absorb every injected fault and
    // still verify byte-identical responses against the single-connection
    // replay.
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        connections: 3,
        requests: 60,
        seed: 9,
        verify: true,
        shutdown: false,
        timeout_ms: 30_000,
        max_attempts: 32,
    };
    let report = run_loadgen(&cfg).expect("loadgen survives chaos");
    assert!(report.verified(), "responses under chaos must match the replay byte for byte");
    assert_eq!(report.ok, report.sent, "every request eventually succeeds");

    // Control traffic is exempt from injection, so stats is reliable:
    // the harness must have actually fired.
    let mut c = Client::connect(&addr);
    let stats = c.round_trip(r#"{"id":1,"kind":"stats"}"#);
    let chaos = stats.get("result").unwrap().get("chaos").expect("chaos block armed");
    assert_eq!(chaos.get("seed").unwrap().as_u64(), Some(11));
    let injected = chaos.get("injected").unwrap();
    let total: u64 = ["torn", "drop", "stall", "panic", "corrupt", "enospc"]
        .iter()
        .map(|k| injected.get(k).unwrap().as_u64().unwrap())
        .sum();
    assert!(total > 0, "chaos schedule injected at least one fault across the run");

    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_request_lines_get_an_error_then_a_close() {
    let (addr, handle) =
        start(ServerConfig { threads: 1, max_line_bytes: 128, ..ServerConfig::default() });
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);

    // Far past the limit, and never a newline until the end: a slowloris
    // frame. The server must answer with a structured error and hang up
    // rather than buffer or stall.
    let long = "x".repeat(4096);
    writeln!(writer, "{long}").unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).expect("error response");
    let doc = json::parse(line.trim_end()).unwrap();
    assert_eq!(status(&doc), "error");
    assert_eq!(doc.get("code").unwrap().as_str(), Some("line-too-long"));

    line.clear();
    let n = reader.read_line(&mut line).expect("read after error");
    assert_eq!(n, 0, "server closes the abusive connection");

    // The daemon itself is unharmed.
    let mut c = Client::connect(&addr);
    let doc = c.round_trip(r#"{"id":1,"kind":"check","workload":"stencil"}"#);
    assert_eq!(status(&doc), "ok");
    let _ = c.round_trip(r#"{"id":2,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn overload_sheds_heavy_requests_and_recovers() {
    // One worker, a small queue: pipelining distinct heavy simulations
    // faster than they execute must trip the class watermark and shed
    // with `retry`, never hang or drop.
    let (addr, handle) =
        start(ServerConfig { threads: 1, queue_bound: 8, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);

    let mut reqs = Vec::new();
    for (i, core) in ["inorder", "dep", "ooo", "braid"].iter().enumerate() {
        for (j, width) in [0u32, 4, 8].iter().enumerate() {
            let id = (i * 3 + j) as u64;
            reqs.push(format!(
                r#"{{"id":{id},"kind":"simulate","workload":"pointer_chase","core":"{core}","width":{width}}}"#
            ));
        }
    }
    for r in &reqs {
        c.send(r);
    }

    let mut shed_ids = Vec::new();
    for _ in 0..reqs.len() {
        let doc = json::parse(&c.recv()).unwrap();
        match status(&doc) {
            "ok" => {}
            "retry" => {
                assert!(doc.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
                shed_ids.push(doc.get("id").unwrap().as_u64().unwrap());
            }
            other => panic!("unexpected status under overload: {other}"),
        }
    }
    assert!(!shed_ids.is_empty(), "the queue-depth watermark must shed some heavy requests");

    // Shed requests succeed on resend once pressure drains.
    for id in shed_ids {
        let doc = c.round_trip(&reqs[id as usize]);
        assert_eq!(status(&doc), "ok", "shed request succeeds on retry");
    }

    let stats = c.round_trip(r#"{"id":90,"kind":"stats"}"#);
    assert!(
        stats.get("result").unwrap().get("shed").unwrap().as_u64().unwrap() > 0,
        "shed counter is visible in stats"
    );
    let _ = c.round_trip(r#"{"id":91,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}
