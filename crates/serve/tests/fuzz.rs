//! Fuzz-style property tests: seeded, reproducible hostile input.
//!
//! Real fuzzing needs a corpus and a coverage engine; what a hermetic
//! test suite can afford is the next best thing — a seeded generator
//! (`braid-prng`, so every failure is a replayable seed) that mangles
//! known-valid request lines through truncation, byte flips, splices,
//! garbage injection, and oversizing, then asserts the two properties
//! that matter:
//!
//! 1. [`parse_request`] is **total**: any input returns `Ok` or a
//!    structured error — it never panics, whatever the bytes.
//! 2. A live daemon fed the same hostile stream on one connection stays
//!    coherent: every complete line gets exactly one response, framing
//!    never desynchronizes, and afterwards the daemon still serves
//!    correct results.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::thread;

use braid_prng::Rng;
use braid_serve::loadgen::generate_requests;
use braid_serve::protocol::parse_request;
use braid_serve::server::{Server, ServerConfig};
use braid_sweep::json::{self, Json};

/// How many mangled cases each property sees.
const CASES: usize = 256;

/// Produces one mangled line from a pool of valid ones. The result never
/// contains `\n`/`\r` (the transport test sends each case as exactly one
/// frame) but is otherwise arbitrary bytes rendered as lossy UTF-8.
fn mangle(rng: &mut Rng, pool: &[String]) -> String {
    let base = rng.choose(pool).clone().into_bytes();
    let mut bytes = base;
    match rng.gen_range(0..6) {
        // Truncate at an arbitrary byte offset.
        0 => {
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        // Flip 1..=8 bytes anywhere in the line.
        1 => {
            for _ in 0..rng.gen_range(1..9) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= rng.gen_range(1..=255u8);
            }
        }
        // Splice the tail of one request onto the head of another.
        2 => {
            let other = rng.choose(pool).as_bytes();
            let cut = rng.gen_range(0..bytes.len());
            let from = rng.gen_range(0..other.len());
            bytes.truncate(cut);
            bytes.extend_from_slice(&other[from..]);
        }
        // Insert raw garbage at a random offset.
        3 => {
            let at = rng.gen_range(0..=bytes.len());
            let garbage: Vec<u8> =
                (0..rng.gen_range(1..32)).map(|_| rng.gen_range(0..=255u8)).collect();
            bytes.splice(at..at, garbage);
        }
        // Duplicate the whole line back to back (interleaved objects).
        4 => {
            let copy = bytes.clone();
            bytes.extend_from_slice(&copy);
        }
        // Oversize a field value (still under the server's line bound).
        5 => {
            let at = rng.gen_range(0..=bytes.len());
            let run = vec![b'A'; rng.gen_range(64..512usize)];
            bytes.splice(at..at, run);
        }
        _ => unreachable!(),
    }
    String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ")
}

#[test]
fn parse_request_is_total_over_mangled_input() {
    let pool = generate_requests(32, 41);
    let mut rng = Rng::seed_from_u64(42);
    for case in 0..CASES {
        let line = mangle(&mut rng, &pool);
        // The property is totality: parsing must terminate without
        // panicking for every input. (A mangled line may still be valid.)
        let _ = parse_request(&line);
        if case % 8 == 0 {
            // And known-good lines must keep parsing between the attacks.
            let good = rng.choose(&pool);
            assert!(parse_request(good).is_ok(), "valid line rejected: {good}");
        }
    }
    // Degenerate shapes, explicitly.
    for line in ["", " ", "{}", "[]", "null", "\"id\"", "{\"id\":", "\u{0}\u{1}\u{2}"] {
        let _ = parse_request(line);
    }
}

#[test]
fn daemon_survives_a_mangled_frame_stream() {
    let server = Server::bind(ServerConfig { threads: 2, ..ServerConfig::default() })
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());

    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("arm client timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);

    let pool = generate_requests(32, 43);
    let mut rng = Rng::seed_from_u64(44);
    let mut protocol_errors_sent = 0u64;
    for case in 0..CASES {
        let line = mangle(&mut rng, &pool);
        writeln!(writer, "{line}").expect("send mangled line");
        writer.flush().expect("flush");
        // One complete line in, exactly one response line out — whatever
        // the bytes were. Anything else means the framing desynchronized.
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).expect("one response per line");
        assert!(n > 0, "case {case}: server closed on a bounded, newline-terminated line");
        let doc = json::parse(resp.trim_end())
            .unwrap_or_else(|e| panic!("case {case}: response not JSON ({e}): {resp:?}"));
        let status = doc.get("status").and_then(Json::as_str).expect("status field");
        assert!(
            matches!(status, "ok" | "error" | "retry"),
            "case {case}: unknown status {status}"
        );
        if status == "error" {
            protocol_errors_sent += 1;
        }
    }
    assert!(
        protocol_errors_sent > 0,
        "the mangler never produced an invalid line — generator is broken"
    );

    // After all of that, the daemon still computes correct results on the
    // very same connection.
    writeln!(writer, r#"{{"id":7,"kind":"simulate","workload":"dot_product","core":"braid"}}"#)
        .expect("send valid request");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("valid request answered");
    let doc = json::parse(resp.trim_end()).expect("response is JSON");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
    assert!(doc.get("result").unwrap().get("cycles").unwrap().as_u64().unwrap() > 0);

    // And its stats counted the abuse.
    writeln!(writer, r#"{{"id":8,"kind":"stats"}}"#).expect("send stats");
    writer.flush().expect("flush");
    resp.clear();
    reader.read_line(&mut resp).expect("stats answered");
    let doc = json::parse(resp.trim_end()).expect("stats is JSON");
    let counted =
        doc.get("result").unwrap().get("protocol_errors").unwrap().as_u64().unwrap();
    assert!(counted > 0, "protocol errors show up in stats");

    writeln!(writer, r#"{{"id":9,"kind":"shutdown"}}"#).expect("send shutdown");
    writer.flush().expect("flush");
    resp.clear();
    reader.read_line(&mut resp).expect("shutdown answered");
    handle.join().expect("accept loop").expect("clean exit");
}
