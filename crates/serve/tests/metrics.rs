//! End-to-end tests for the tracing surface: the `metrics` request's
//! schema and determinism contract, the phase-conservation invariant,
//! trace-ID round-trips into the span log, and chaos-driven cache events.
//!
//! Schema tests here are deliberately brittle: the `stats` and `metrics`
//! key sets are wire contract, consumed by scripts (`tier1.sh`,
//! `bench_serve.sh`) that grep for exact field names. Renaming a field
//! must fail a test, not silently break a dashboard.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread::{self, JoinHandle};

use braid_serve::chaos::ChaosSpec;
use braid_serve::server::{Server, ServerConfig};
use braid_sweep::json::{self, Json};

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("braid-metrics-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots a daemon and returns its address plus the accept-loop handle.
fn start(cfg: ServerConfig) -> (String, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// A simple synchronous client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, writer: BufWriter::new(stream) }
    }

    fn round_trip(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        json::parse(resp.trim_end()).expect("response is JSON")
    }
}

/// Top-level keys of an object, in rendering order.
fn keys(doc: &Json) -> Vec<String> {
    match doc {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

/// Recursively drops every object field whose key ends in `_us` — the
/// documented nondeterministic remainder of a metrics document.
fn strip_host_time(doc: &Json) -> Json {
    match doc {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !k.ends_with("_us"))
                .map(|(k, v)| (k.clone(), strip_host_time(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_host_time).collect()),
        other => other.clone(),
    }
}

/// The request sequence both determinism-test servers replay.
const MIX: [&str; 7] = [
    r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid"}"#,
    r#"{"id":2,"kind":"simulate","workload":"stencil","core":"ooo","tier":"func"}"#,
    r#"{"id":3,"kind":"translate","workload":"fig2_life"}"#,
    r#"{"id":4,"kind":"check","workload":"dot_product"}"#,
    // Cache hit: byte-identical to request 1 modulo the id.
    r#"{"id":5,"kind":"simulate","workload":"dot_product","core":"braid"}"#,
    // A protocol error is part of the deterministic surface too.
    r#"{"id":6,"kind":"no-such-kind"}"#,
    r#"{"id":7,"kind":"simulate","workload":"histogram","core":"inorder"}"#,
];

#[test]
fn metrics_schema_is_pinned_and_phases_conserve() {
    let (addr, handle) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);
    for line in MIX {
        c.round_trip(line);
    }

    let stats = c.round_trip(r#"{"id":90,"kind":"stats"}"#);
    let stats = stats.get("result").expect("stats result");
    assert_eq!(
        keys(stats),
        ["requests", "protocol_errors", "request_errors", "retries", "shed", "cache", "pool",
         "latency_us", "cpi"],
        "stats document key set is wire contract"
    );

    let doc = c.round_trip(r#"{"id":91,"kind":"metrics"}"#);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    let m = doc.get("result").expect("metrics result");
    assert_eq!(
        keys(m),
        ["requests", "protocol_errors", "request_errors", "retries", "shed", "cache", "trace"],
        "metrics document key set is wire contract"
    );
    let trace = m.get("trace").expect("trace block");
    assert_eq!(keys(trace), ["spans", "status", "phases", "classes", "events", "conserved"]);
    assert_eq!(
        keys(trace.get("phases").unwrap()),
        ["read", "parse", "queue_wait", "cache_probe", "execute", "serialize", "write"],
        "phase taxonomy in lifetime order"
    );
    for (_, summary) in match trace.get("phases").unwrap() {
        Json::Obj(fields) => fields.iter(),
        _ => unreachable!(),
    } {
        assert_eq!(
            keys(summary),
            ["count", "total_us", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"]
        );
    }

    // Conservation, checked remotely: 6 parsed requests + 1 protocol
    // error had completed spans when metrics was served, every phase
    // histogram saw every span, and phase time sums to class time.
    let spans = trace.get("spans").and_then(Json::as_u64).expect("spans");
    assert_eq!(spans, MIX.len() as u64 + 1, "mix spans plus the stats span");
    for p in ["read", "parse", "queue_wait", "cache_probe", "execute", "serialize", "write"] {
        let count =
            trace.get("phases").unwrap().get(p).unwrap().get("count").unwrap().as_u64();
        assert_eq!(count, Some(spans), "phase {p} saw every span");
    }
    assert_eq!(trace.get("conserved").and_then(Json::as_bool), Some(true));

    // Classes and statuses reflect the mix.
    let classes = trace.get("classes").expect("classes");
    assert_eq!(
        classes.get("simulate").unwrap().get("count").unwrap().as_u64(),
        Some(4),
        "four simulate spans (including the cache hit)"
    );
    assert_eq!(classes.get("invalid").unwrap().get("count").unwrap().as_u64(), Some(1));
    let status = trace.get("status").expect("status");
    assert_eq!(status.get("ok").unwrap().as_u64(), Some(MIX.len() as u64));
    assert_eq!(status.get("protocol_error").unwrap().as_u64(), Some(1));

    // The cache verdictless stats request probed nothing; compute spans
    // carried hit/miss — visible indirectly through the cache counters.
    assert_eq!(m.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(1));

    c.round_trip(r#"{"id":99,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn metrics_is_byte_deterministic_modulo_host_time() {
    let fetch = || {
        let (addr, handle) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
        let mut c = Client::connect(&addr);
        for line in MIX {
            c.round_trip(line);
        }
        let doc = c.round_trip(r#"{"id":91,"kind":"metrics"}"#);
        c.round_trip(r#"{"id":99,"kind":"shutdown"}"#);
        handle.join().unwrap().unwrap();
        doc.get("result").expect("metrics result").clone()
    };
    let a = fetch();
    let b = fetch();
    assert_eq!(
        strip_host_time(&a).compact(),
        strip_host_time(&b).compact(),
        "same request sequence, same metrics bytes modulo *_us fields"
    );
    // And the stripped document still carries the deterministic core.
    let stripped = strip_host_time(&a);
    assert!(stripped.get("trace").unwrap().get("spans").is_some());
    assert!(stripped.compact().contains("\"count\""));
    assert!(!stripped.compact().contains("_us\""), "no host-time key survives the strip");
}

#[test]
fn trace_ids_round_trip_into_the_span_log() {
    let tmp = TempDir::new("spanlog");
    std::fs::create_dir_all(&tmp.0).expect("mkdir");
    let log_path = tmp.0.join("spans.jsonl");
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        trace_log: Some(log_path.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr);
    let traced = r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid","trace":"cafe-d00d-0001"}"#;
    assert_eq!(
        c.round_trip(traced).get("status").and_then(Json::as_str),
        Some("ok"),
        "the trace field must not perturb request handling"
    );
    c.round_trip(r#"{"id":2,"kind":"translate","workload":"stencil"}"#);
    c.round_trip(r#"{"id":9,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();

    let log = std::fs::read_to_string(&log_path).expect("span log written");
    let spans: Vec<Json> = log
        .lines()
        .map(|l| json::parse(l).expect("every log line is JSON"))
        .filter(|d| d.get("event").and_then(Json::as_str) == Some("span"))
        .collect();
    assert_eq!(spans.len(), 3, "simulate + translate + shutdown spans");

    let traced_span = spans
        .iter()
        .find(|s| s.get("trace").and_then(Json::as_str) == Some("cafe-d00d-0001"))
        .expect("client-supplied trace ID lands in the log verbatim");
    assert_eq!(traced_span.get("kind").and_then(Json::as_str), Some("simulate"));
    assert_eq!(traced_span.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(traced_span.get("cache").and_then(Json::as_str), Some("miss"));
    assert!(
        traced_span.get("cycles").and_then(Json::as_u64).unwrap() > 0,
        "a full-tier simulate attributes simulated cycles to its span"
    );

    for span in &spans {
        // Requests without a trace field get generated `t-` IDs.
        let trace = span.get("trace").and_then(Json::as_str).unwrap();
        assert!(trace == "cafe-d00d-0001" || trace.starts_with("t-"), "{trace}");
        // Per-span conservation in the exported record.
        let phases = span.get("phases_us").expect("phase object");
        let sum: u64 = ["read", "parse", "queue_wait", "cache_probe", "execute", "serialize",
                        "write"]
            .iter()
            .map(|p| phases.get(p).and_then(Json::as_u64).expect("every phase present"))
            .sum();
        assert_eq!(span.get("total_us").and_then(Json::as_u64), Some(sum));
    }

    // Trace IDs never leak into response lines (checked above implicitly:
    // the simulate response parsed as ok). The cache-hit path must be
    // insensitive to the trace too: replay on a fresh server.
    let (addr2, handle2) = start(ServerConfig { threads: 2, ..ServerConfig::default() });
    let mut c2 = Client::connect(&addr2);
    let untraced = r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid"}"#;
    let with_trace = c2.round_trip(traced).compact();
    let without = c2.round_trip(untraced).compact();
    assert_eq!(with_trace, without, "trace field never reaches the response bytes");
    c2.round_trip(r#"{"id":9,"kind":"shutdown"}"#);
    handle2.join().unwrap().unwrap();
}

#[test]
fn oversized_trace_field_is_a_structured_error() {
    let (addr, handle) = start(ServerConfig { threads: 1, ..ServerConfig::default() });
    let mut c = Client::connect(&addr);
    let long = "x".repeat(braid_serve::protocol::MAX_TRACE_LEN + 1);
    let doc = c.round_trip(&format!(
        r#"{{"id":5,"kind":"simulate","workload":"dot_product","core":"braid","trace":"{long}"}}"#
    ));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(5), "error still correlates by id");
    c.round_trip(r#"{"id":9,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}

#[test]
fn chaos_cache_faults_surface_as_trace_events() {
    // Corruption: every insert writes a corrupt disk entry (and skips
    // RAM), so re-requesting forces a disk read → quarantine → event.
    let tmp = TempDir::new("chaos-events");
    let log_path = tmp.0.join("spans.jsonl");
    let cache_dir = tmp.0.join("cache");
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        cache_dir: Some(cache_dir),
        trace_log: Some(log_path.clone()),
        chaos: Some(ChaosSpec::parse("seed=3,corrupt=1.0").expect("spec")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr);
    let req = r#"{"id":1,"kind":"simulate","workload":"dot_product","core":"braid"}"#;
    c.round_trip(req);
    c.round_trip(req); // forced disk read detects the corruption
    let m = c.round_trip(r#"{"id":2,"kind":"metrics"}"#);
    let events = m.get("result").unwrap().get("trace").unwrap().get("events").unwrap();
    assert!(
        events.get("cache-quarantined").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "quarantine is a countable event, not just an stderr line: {}",
        events.compact()
    );
    c.round_trip(r#"{"id":9,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
    let log = std::fs::read_to_string(&log_path).expect("span log");
    assert!(
        log.lines().any(|l| l.contains("\"event\":\"cache-quarantined\"")),
        "quarantine event exported to the span log"
    );

    // Disk-full: the first insert fails and demotes the tier — once.
    let tmp2 = TempDir::new("chaos-demote");
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        cache_dir: Some(tmp2.0.join("cache")),
        chaos: Some(ChaosSpec::parse("seed=3,enospc=1.0").expect("spec")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.round_trip(req);
    c.round_trip(r#"{"id":2,"kind":"translate","workload":"stencil"}"#);
    let m = c.round_trip(r#"{"id":3,"kind":"metrics"}"#);
    let events = m.get("result").unwrap().get("trace").unwrap().get("events").unwrap();
    assert_eq!(
        events.get("cache-demoted").and_then(Json::as_u64),
        Some(1),
        "demotion is log-once: {}",
        events.compact()
    );
    c.round_trip(r#"{"id":9,"kind":"shutdown"}"#);
    handle.join().unwrap().unwrap();
}
