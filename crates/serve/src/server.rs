//! The daemon: TCP accept loop, per-connection ordering, dispatch, drain.
//!
//! ## Threading model
//!
//! One accept loop, two threads per connection (reader and writer), one
//! shared [`JobPool`] sized to the host. The reader parses each line,
//! stamps it with a per-connection sequence number, and submits the work
//! to the pool; the pool finishes jobs in whatever order the machine
//! likes; the writer holds a reorder buffer keyed by sequence number and
//! releases lines strictly in request order. Clients therefore see an
//! in-order protocol over an out-of-order core — the same bargain the
//! simulated machine makes.
//!
//! ## Backpressure and load shedding
//!
//! Both queues are bounded and both refusals are explicit protocol
//! events, never stalls or silent drops:
//!
//! - job queue full → `{"status":"retry","retry_after_ms":N}` for that
//!   request; the client resends later.
//! - connection table full → a single `retry` line at accept time, then
//!   the connection closes.
//!
//! Before the queue is full, requests shed **by class**
//! ([`protocol::ShedClass`]): the expensive simulation classes are
//! refused first (3/4 occupancy), `translate` next (7/8), `check` only
//! when the queue is actually full, and `stats`/`shutdown` — answered
//! inline by the reader — never. Overload therefore degrades the service
//! deterministically from the most expensive work inward, and a loaded
//! daemon stays introspectable.
//!
//! ## Hostile clients
//!
//! Every connection carries socket read/write timeouts and a bounded
//! request-line length: a slowloris connection costs one worker at most
//! `io_timeout_ms` of patience and `max_line_bytes` of memory, then a
//! structured error and a close — never a wedged worker.
//!
//! ## Fault injection
//!
//! With a [`crate::chaos`] spec armed, pooled response writes, worker
//! jobs, and disk-cache inserts absorb seeded faults. Inline responses
//! (`stats`, `shutdown`, protocol errors) are exempt so control traffic
//! stays reliable. See the chaos module docs for the class table.
//!
//! ## Tracing
//!
//! Every request is wrapped in a [`braid_trace::RequestSpan`]: the reader
//! opens it before blocking on the socket, phases are charged as the
//! request moves through parse → shed/queue → cache probe → execute →
//! serialize, and the **writer** closes it after the response line is
//! flushed — so a span's total covers the full on-server lifetime and its
//! phases sum to that total by construction. Completed spans feed the
//! always-on [`braid_trace::Registry`] (served by the `metrics` request)
//! and, when [`ServerConfig::trace_log`] is set, a JSON-lines span log.
//! Trace IDs (client-supplied via the `trace` field or generated) appear
//! only in that log — never in response lines or cache keys, so tracing
//! cannot perturb the byte-determinism contract `--verify` checks.
//!
//! ## Shutdown and drain
//!
//! A `shutdown` request closes the pool's intake (queued jobs still run),
//! stops the accept loop, and answers `ok` once the drain is underway.
//! Requests already queued — on any connection — complete and are
//! delivered; compute requests arriving after the drain began get an
//! `error` with code `shutting-down`. [`Server::run`] returns once every
//! connection thread has exited and the pool is empty, so a caller that
//! joins `run` observes a fully quiesced daemon.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use braid_core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid_core::processor::{
    run_braid, run_dep, run_inorder, run_ooo, run_tier, CoreConfig, RunError, TierReport,
};
use braid_core::Tier;
use braid_obs::report_json;
use braid_sweep::digest::{hex, ContentDigest};
use braid_sweep::grid::CoreModel;
use braid_sweep::json::Json;
use braid_sweep::pool::{JobPool, SubmitError};
use braid_sweep::{run_point, SweepError};

use braid_trace::{next_trace_id, Phase, RequestSpan, TraceHub, TraceLog};

use crate::cache::{DiskFault, ResultCache};
use crate::chaos::{Chaos, ChaosSpec, WriteFault};
use crate::protocol::{self, BoundedLine, ParsedRequest, Request};
use crate::stats::ServeStats;

/// Daemon configuration. The defaults suit tests and smoke runs; the
/// `braidd` binary maps its flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads in the shared job pool (`0` = available
    /// parallelism).
    pub threads: usize,
    /// Bound on queued (not yet running) jobs; beyond it requests get
    /// `retry` responses, and class-based shedding starts at 3/4 of it.
    pub queue_bound: usize,
    /// Maximum simultaneous connections; beyond it connections are
    /// refused with a `retry` line.
    pub max_connections: usize,
    /// Result-cache capacity in payloads (the RAM tier).
    pub cache_capacity: usize,
    /// Directory for the crash-safe disk cache tier (`None` = RAM-only).
    /// An unusable directory demotes to RAM-only with a warning, never a
    /// refusal to start.
    pub cache_dir: Option<PathBuf>,
    /// Default simulated-cycle deadline applied to `simulate` requests
    /// that do not carry their own (`0` = none).
    pub deadline_cycles: u64,
    /// The `retry_after_ms` hint sent with backpressure responses.
    pub retry_after_ms: u64,
    /// Socket read/write timeout per connection in milliseconds (`0` =
    /// none). A connection idle or stalled past this is closed.
    pub io_timeout_ms: u64,
    /// Maximum request-line length in bytes; longer lines get a
    /// structured `line-too-long` error and the connection closes.
    pub max_line_bytes: usize,
    /// Fault-injection schedule (`None` = no chaos).
    pub chaos: Option<ChaosSpec>,
    /// Span-log file for JSON-lines trace export (`None` = registry
    /// only). Unlike the cache directory, an unusable path is a bind
    /// error: a requested-but-silently-absent trace log would defeat the
    /// point of asking for one.
    pub trace_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            queue_bound: 256,
            max_connections: 32,
            cache_capacity: 4096,
            cache_dir: None,
            deadline_cycles: 0,
            retry_after_ms: 25,
            io_timeout_ms: 30_000,
            max_line_bytes: 64 * 1024,
            chaos: None,
            trace_log: None,
        }
    }
}

/// State shared by the accept loop, every connection, and every job.
struct Shared {
    cfg: ServerConfig,
    cache: ResultCache,
    stats: ServeStats,
    pool: JobPool,
    chaos: Option<Chaos>,
    trace: Arc<TraceHub>,
    shutdown: AtomicBool,
    active: AtomicUsize,
}

impl Shared {
    /// One chaos roll for a disk-cache insert (never rolls unarmed).
    fn disk_fault(&self) -> Option<DiskFault> {
        self.chaos.as_ref().and_then(Chaos::disk_fault)
    }
}

/// The simulation daemon. [`Server::bind`] claims the socket (so callers
/// can learn the ephemeral port before any client connects);
/// [`Server::run`] serves until a `shutdown` request drains it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket and builds the shared state. A configured
    /// but unusable cache directory falls back to RAM-only (warned, not
    /// fatal) — the disk tier is an accelerator, not a dependency.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let threads = if cfg.threads == 0 {
            thread::available_parallelism().map_or(4, usize::from)
        } else {
            cfg.threads
        };
        let cache = match &cfg.cache_dir {
            Some(dir) => ResultCache::with_disk(cfg.cache_capacity, dir).unwrap_or_else(|e| {
                eprintln!(
                    "braidd: cache dir {} unusable ({e}); running RAM-only",
                    dir.display()
                );
                ResultCache::new(cfg.cache_capacity)
            }),
            None => ResultCache::new(cfg.cache_capacity),
        };
        let log = cfg.trace_log.as_ref().map(|p| TraceLog::create(p)).transpose()?;
        let trace = Arc::new(TraceHub::new(log));
        cache.arm_trace(Arc::clone(&trace));
        let shared = Arc::new(Shared {
            cache,
            stats: ServeStats::new(),
            pool: JobPool::new(threads, cfg.queue_bound),
            chaos: cfg.chaos.clone().map(Chaos::new),
            trace,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            cfg,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a `shutdown` request, then drains: waits
    /// for every connection thread to exit and every queued job to
    /// finish before returning.
    ///
    /// # Errors
    ///
    /// Returns accept-loop I/O errors; per-connection I/O errors only end
    /// that connection.
    pub fn run(&self) -> io::Result<()> {
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                shared.stats.record_retry();
                let mut w = BufWriter::new(&stream);
                let _ = writeln!(w, "{}", protocol::retry_line(0, shared.cfg.retry_after_ms));
                let _ = w.flush();
                continue;
            }
            shared.active.fetch_add(1, Ordering::SeqCst);
            let addr = self.local_addr()?;
            handles.push(thread::spawn(move || {
                let _ = handle_connection(stream, &shared, addr);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        self.shared.pool.drain();
        Ok(())
    }
}

/// One line bound for the wire: `(sequence, line, chaos_exempt, span)`.
/// Inline responses (stats, shutdown, protocol errors) are exempt from
/// write faults so control traffic stays reliable under chaos. The span,
/// when present, is completed by the writer when the line is released in
/// order — the `write` phase covers the reorder-buffer wait. A `None`
/// span marks responses whose span was lost to the pool's
/// submit-refusal path (the closure is consumed either way).
type Outgoing = (u64, String, bool, Option<RequestSpan>);

/// Writer half of a connection: reorders [`Outgoing`] messages back into
/// request order and flushes each line as soon as it is releasable,
/// applying any armed chaos write fault to non-exempt lines.
///
/// Spans complete when their line is *released* to the socket — after the
/// chaos fault roll, before the flush. Completing before the flush keeps
/// the metrics document deterministic for a sequential client: by the
/// time a response is observable on the wire, its span is in the
/// registry, so a follow-up `metrics` request always counts it. Spans of
/// chaos-severed responses are dropped, not completed — the client never
/// saw those lines, so they must not count as served.
fn writer_loop(stream: &TcpStream, rx: &Receiver<Outgoing>, shared: &Shared, dead: &AtomicBool) {
    let mut out = BufWriter::new(stream);
    let mut pending = std::collections::BTreeMap::new();
    let mut next = 0u64;
    let sever = || {
        let _ = stream.shutdown(Shutdown::Both);
        dead.store(true, Ordering::Relaxed);
    };
    for (seq, line, exempt, span) in rx {
        pending.insert(seq, (line, exempt, span));
        while let Some((line, exempt, span)) = pending.remove(&next) {
            if !exempt {
                match shared.chaos.as_ref().and_then(Chaos::write_fault) {
                    Some(WriteFault::Torn { keep }) if line.len() >= 2 => {
                        // A strict prefix of the line, never the newline:
                        // the client sees a frame that cannot parse and
                        // must reconnect and replay.
                        let b = line.as_bytes();
                        let cut = ((keep * b.len() as f64) as usize).clamp(1, b.len() - 1);
                        let _ = out.write_all(&b[..cut]).and_then(|()| out.flush());
                        sever();
                        return;
                    }
                    Some(WriteFault::Drop) => {
                        sever();
                        return;
                    }
                    Some(WriteFault::Stall(d)) => thread::sleep(d),
                    Some(WriteFault::Torn { .. }) | None => {}
                }
            }
            if let Some(mut span) = span {
                span.mark(Phase::Write);
                shared.trace.complete(span);
            }
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                sever();
                return;
            }
            next += 1;
        }
    }
}

/// Reader half of a connection: parse (bounded), shed or stamp, dispatch.
fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    addr: std::net::SocketAddr,
) -> io::Result<()> {
    if shared.cfg.io_timeout_ms > 0 {
        let t = Some(Duration::from_millis(shared.cfg.io_timeout_ms));
        stream.set_read_timeout(t)?;
        stream.set_write_timeout(t)?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = mpsc::channel::<Outgoing>();
    // The writer observes chaos-severed or broken connections; the reader
    // polls this flag to stop accepting work for a dead socket.
    let dead = Arc::new(AtomicBool::new(false));
    let writer = {
        let shared = Arc::clone(shared);
        let dead = Arc::clone(&dead);
        thread::spawn(move || writer_loop(&stream, &rx, &shared, &dead))
    };
    let mut seq = 0u64;
    while !dead.load(Ordering::Relaxed) {
        // The span opens before the blocking read: its `read` phase is
        // the time spent waiting for (and receiving) the request bytes.
        let mut span = RequestSpan::begin();
        let line = match protocol::read_bounded_line(&mut reader, shared.cfg.max_line_bytes) {
            Ok(BoundedLine::Line(l)) => l,
            Ok(BoundedLine::TooLong) => {
                // Slowloris / runaway frame: answer structurally, then
                // close — the line framing cannot be trusted afterwards.
                span.mark(Phase::Read);
                span.describe(next_trace_id(), "invalid", 0);
                span.set_status("protocol_error");
                shared.stats.record_protocol_error();
                let msg =
                    format!("request line exceeds {} bytes", shared.cfg.max_line_bytes);
                let line = protocol::error_line(0, "line-too-long", &msg);
                span.mark(Phase::Serialize);
                let _ = tx.send((seq, line, true, Some(span)));
                break;
            }
            Ok(BoundedLine::Eof) | Err(_) => break,
        };
        span.mark(Phase::Read);
        if line.trim().is_empty() {
            continue;
        }
        let this_seq = seq;
        seq += 1;
        let send = |line: String, span: Option<RequestSpan>| {
            // The writer only exits once every sender is dropped, so a
            // failed send means the socket died; the reader will see EOF.
            let _ = tx.send((this_seq, line, true, span));
        };
        match protocol::parse_request_traced(&line) {
            Err(e) => {
                span.mark(Phase::Parse);
                span.describe(next_trace_id(), "invalid", e.id);
                span.set_status("protocol_error");
                shared.stats.record_protocol_error();
                let line = protocol::error_line(e.id, e.code, &e.message);
                span.mark(Phase::Serialize);
                send(line, Some(span));
            }
            Ok(ParsedRequest { id, trace, request }) => {
                span.mark(Phase::Parse);
                span.describe(trace.unwrap_or_else(next_trace_id), request.kind(), id);
                match request {
                    Request::Stats => {
                        shared.stats.record_request("stats");
                        let doc = shared.stats.to_json(
                            &shared.cache,
                            &shared.pool,
                            shared.chaos.as_ref(),
                        );
                        span.mark(Phase::Execute);
                        let line = protocol::ok_line(id, &doc.compact());
                        span.mark(Phase::Serialize);
                        send(line, Some(span));
                    }
                    Request::Metrics => {
                        shared.stats.record_request("metrics");
                        let doc = shared.stats.metrics_json(
                            shared.trace.registry(),
                            &shared.cache,
                            shared.chaos.as_ref(),
                        );
                        span.mark(Phase::Execute);
                        let line = protocol::ok_line(id, &doc.compact());
                        span.mark(Phase::Serialize);
                        send(line, Some(span));
                    }
                    Request::Shutdown => {
                        shared.stats.record_request("shutdown");
                        shared.shutdown.store(true, Ordering::SeqCst);
                        shared.pool.close();
                        span.mark(Phase::Execute);
                        let line = protocol::ok_line(id, "\"draining\"");
                        span.mark(Phase::Serialize);
                        send(line, Some(span));
                        // Wake the accept loop out of `incoming()` so it
                        // can observe the flag; the dummy connection is
                        // discarded.
                        drop(TcpStream::connect(addr));
                        break;
                    }
                    req => {
                        shared.stats.record_request(req.kind());
                        // Deterministic load shedding by class: expensive
                        // work is refused early so cheap introspection
                        // stays live.
                        let depth = shared.pool.depth().queued;
                        if req.shed_class().sheds(depth, shared.cfg.queue_bound) {
                            shared.stats.record_shed();
                            span.set_status("retry");
                            let line = protocol::retry_line(id, shared.cfg.retry_after_ms);
                            span.mark(Phase::Serialize);
                            send(line, Some(span));
                            continue;
                        }
                        let tx_job = tx.clone();
                        let job_shared = Arc::clone(shared);
                        // The span moves into the closure; when the pool
                        // refuses the submission the closure (and span)
                        // is consumed anyway, so the refusal responses
                        // below travel span-less.
                        let submitted = shared.pool.try_submit(move || {
                            span.mark(Phase::QueueWait);
                            if job_shared.chaos.as_ref().is_some_and(Chaos::job_panic) {
                                // Contained by the pool (counted in
                                // `panics`); the response never arrives
                                // and the client's per-request timeout
                                // must recover.
                                panic!("chaos: injected worker panic");
                            }
                            let started = Instant::now();
                            let line = execute(&job_shared, id, &req, &mut span);
                            job_shared
                                .stats
                                .record_latency_us(started.elapsed().as_micros() as u64);
                            let _ = tx_job.send((this_seq, line, false, Some(span)));
                        });
                        match submitted {
                            Ok(()) => {}
                            Err(SubmitError::Saturated) => {
                                shared.stats.record_retry();
                                send(protocol::retry_line(id, shared.cfg.retry_after_ms), None);
                            }
                            Err(SubmitError::Closing) => {
                                shared.stats.record_request_error();
                                send(
                                    protocol::error_line(
                                        id,
                                        "shutting-down",
                                        "server is draining; no new work accepted",
                                    ),
                                    None,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// Runs one compute request to a finished response line. Infallible at
/// this layer: failures become `error` lines (with the span's status set
/// to match). The span picks up its cache-probe/execute phase charges
/// inside [`run_request`] and its serialize charge here.
fn execute(shared: &Shared, id: u64, req: &Request, span: &mut RequestSpan) -> String {
    let line = match run_request(shared, req, span) {
        Ok(payload) => protocol::ok_line(id, &payload),
        Err(e) => {
            shared.stats.record_request_error();
            span.set_status("error");
            // Whatever ran before the failure is execute time.
            span.mark(Phase::Execute);
            protocol::error_line(id, e.code(), &e.to_string())
        }
    };
    span.mark(Phase::Serialize);
    line
}

/// Resolves a workload and digests its container bytes — the
/// program-identity half of every cache key.
fn program_digest(workload: &str, scale: f64) -> Result<(braid_workloads::Workload, String), SweepError> {
    let w = braid_workloads::by_name_any(workload, scale)
        .ok_or_else(|| SweepError::UnknownWorkload { workload: workload.to_string() })?;
    let bytes = braid_isa::container::to_bytes(&w.program).map_err(|e| SweepError::Malformed {
        path: std::path::PathBuf::from(&w.name),
        msg: format!("workload failed container serialization: {e}"),
    })?;
    let digest = hex(&bytes);
    Ok((w, digest))
}

/// Executes a compute request, serving the payload from the cache when
/// the content digest matches a previous computation. Cache inserts roll
/// the chaos disk-fault schedule when one is armed.
///
/// Span accounting: key derivation and the cache lookup are charged to
/// `cache_probe` (with the hit/miss verdict recorded); the simulation or
/// translation itself to `execute`, along with its simulated-cycle count
/// where the payload carries one.
fn run_request(shared: &Shared, req: &Request, span: &mut RequestSpan) -> Result<String, SweepError> {
    let probe = |span: &mut RequestSpan, hit: bool| {
        span.mark(Phase::CacheProbe);
        span.set_cache(if hit { "hit" } else { "miss" });
    };
    match req {
        Request::Simulate { workload, core, width, scale, perfect, deadline, tier, sampling } => {
            let (w, pdigest) = program_digest(workload, *scale)?;
            let deadline = if *deadline > 0 { *deadline } else { shared.cfg.deadline_cycles };
            let mut key = ContentDigest::new()
                .field("kind", "simulate")
                .field("program", &pdigest)
                .field("core", core.name())
                .field("config", format!("w{width}:p{perfect}:d{deadline}"));
            if *tier != Tier::Full {
                // Full-tier digests predate execution tiers; the tier
                // fields join the key only for the new tiers so existing
                // cache entries (RAM and disk) keep matching.
                key = key.field("tier", tier.name()).field("sampling", sampling.digest_key());
            }
            let key = key.finish();
            if let Some(hit) = shared.cache.get(&key) {
                probe(span, true);
                return Ok(hit);
            }
            probe(span, false);
            let payload = if *tier == Tier::Full {
                let report = simulate(&w, *core, *width, *perfect, deadline)
                    .map_err(|source| SweepError::Point { key: w.name.clone(), source })?;
                shared.stats.merge_cpi(&report.cpi);
                span.add_cycles(report.cycles);
                report_json(&report).compact()
            } else {
                let cfg = tier_core_config(*core, *width, *perfect, deadline);
                let rep = run_tier(&w.program, &cfg, *tier, w.fuel, sampling)
                    .map_err(|source| SweepError::Point { key: w.name.clone(), source })?;
                if let TierReport::Sampled(r) = &rep {
                    shared.stats.merge_cpi(&r.cpi);
                    span.add_cycles(r.est_cycles);
                }
                tier_payload(&w.name, *tier, &rep).compact()
            };
            span.mark(Phase::Execute);
            shared.cache.insert_faulty(key, payload.clone(), shared.disk_fault());
            Ok(payload)
        }
        Request::Translate { workload, scale } => {
            let (w, pdigest) = program_digest(workload, *scale)?;
            let key = ContentDigest::new()
                .field("kind", "translate")
                .field("program", &pdigest)
                .finish();
            if let Some(hit) = shared.cache.get(&key) {
                probe(span, true);
                return Ok(hit);
            }
            probe(span, false);
            let t = braid_compiler::translate(&w.program, &braid_compiler::TranslatorConfig::default())
                .map_err(|e| SweepError::Point { key: w.name.clone(), source: RunError::Translate(e) })?;
            let payload = translation_json(&w.name, &t).compact();
            span.mark(Phase::Execute);
            shared.cache.insert_faulty(key, payload.clone(), shared.disk_fault());
            Ok(payload)
        }
        Request::Check { workload, scale } => {
            let (w, pdigest) = program_digest(workload, *scale)?;
            let key =
                ContentDigest::new().field("kind", "check").field("program", &pdigest).finish();
            if let Some(hit) = shared.cache.get(&key) {
                probe(span, true);
                return Ok(hit);
            }
            probe(span, false);
            let t = braid_compiler::translate(&w.program, &braid_compiler::TranslatorConfig::default())
                .map_err(|e| SweepError::Point { key: w.name.clone(), source: RunError::Translate(e) })?;
            let report = t.check(&w.program, &braid_check::CheckConfig::default());
            let doc = braid_sweep::json::parse(&report.to_json()).map_err(|e| {
                SweepError::Malformed { path: std::path::PathBuf::from(&w.name), msg: e.to_string() }
            })?;
            let payload = doc.compact();
            span.mark(Phase::Execute);
            shared.cache.insert_faulty(key, payload.clone(), shared.disk_fault());
            Ok(payload)
        }
        Request::SweepPoint { point } => {
            let (_, pdigest) = program_digest(&point.workload, point.scale)?;
            let key = ContentDigest::new()
                .field("kind", "sweep-point")
                .field("program", &pdigest)
                .field("core", point.core.name())
                .field("config", point.key())
                .field("perfect", format!("{}", point.perfect))
                .finish();
            if let Some(hit) = shared.cache.get(&key) {
                probe(span, true);
                return Ok(hit);
            }
            probe(span, false);
            let stats = run_point(point)?;
            shared.stats.merge_cpi(&stats.cpi);
            span.add_cycles(stats.cycles);
            let mut fields = vec![
                ("key".into(), Json::Str(point.key())),
                ("instructions".into(), Json::Int(stats.instructions)),
                ("cycles".into(), Json::Int(stats.cycles)),
                ("ipc".into(), Json::Float(stats.ipc())),
                ("cpi".into(), braid_obs::cpi_json(&stats.cpi)),
            ];
            if point.tier == Tier::Sampled {
                fields.push(("est_cycles".into(), Json::Int(stats.est_cycles)));
                fields.push(("ipc_est".into(), Json::Float(stats.ipc_est())));
                fields.push(("ipc_err".into(), Json::Float(stats.ipc_err)));
            }
            let payload = Json::Obj(fields).compact();
            span.mark(Phase::Execute);
            shared.cache.insert_faulty(key, payload.clone(), shared.disk_fault());
            Ok(payload)
        }
        Request::Trace { workload, core, width, scale } => {
            let (w, pdigest) = program_digest(workload, *scale)?;
            let key = ContentDigest::new()
                .field("kind", "trace")
                .field("program", &pdigest)
                .field("core", core.name())
                .field("config", format!("w{width}"))
                .finish();
            if let Some(hit) = shared.cache.get(&key) {
                probe(span, true);
                return Ok(hit);
            }
            probe(span, false);
            let malformed = |w: &braid_workloads::Workload, msg: String| SweepError::Malformed {
                path: std::path::PathBuf::from(&w.name),
                msg,
            };
            let file = braid_tracein::TraceFile::record(&w.program, w.fuel)
                .map_err(|e| malformed(&w, format!("trace record failed: {e}")))?;
            let cfg = tier_core_config(*core, *width, false, shared.cfg.deadline_cycles);
            let report = braid_tracein::replay(&file, &cfg)
                .map_err(|e| malformed(&w, format!("trace replay failed: {e}")))?;
            shared.stats.merge_cpi(&report.cpi);
            span.add_cycles(report.cycles);
            let payload = Json::Obj(vec![
                ("workload".into(), Json::Str(w.name.clone())),
                ("core".into(), Json::Str(core.name().into())),
                ("entries".into(), Json::Int(file.trace.entries.len() as u64)),
                (
                    "trace_digest".into(),
                    Json::Str(
                        file.digest()
                            .map_err(|e| malformed(&w, format!("trace digest failed: {e}")))?,
                    ),
                ),
                ("instructions".into(), Json::Int(report.instructions)),
                ("cycles".into(), Json::Int(report.cycles)),
                (
                    "cycle_digest".into(),
                    Json::Str(
                        braid_tracein::cycle_digest_of(&file, &[(core.name(), &report)])
                            .map_err(|e| malformed(&w, format!("cycle digest failed: {e}")))?,
                    ),
                ),
            ])
            .compact();
            span.mark(Phase::Execute);
            shared.cache.insert_faulty(key, payload.clone(), shared.disk_fault());
            Ok(payload)
        }
        // Handled inline by the reader; never dispatched to the pool.
        Request::Stats | Request::Metrics | Request::Shutdown => {
            unreachable!("inline request reached the pool")
        }
    }
}

/// Runs one simulate request: the paper config for `core` at `width`,
/// with the perfect-hardware switch and the simulated-cycle deadline
/// applied.
fn simulate(
    w: &braid_workloads::Workload,
    core: CoreModel,
    width: u32,
    perfect: bool,
    deadline: u64,
) -> Result<braid_core::SimReport, RunError> {
    match core {
        CoreModel::InOrder => {
            let mut cfg =
                if width > 0 { InOrderConfig::paper_wide(width) } else { InOrderConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            run_inorder(&w.program, &cfg, w.fuel)
        }
        CoreModel::DepSteer => {
            let mut cfg = if width > 0 { DepConfig::paper_wide(width) } else { DepConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            run_dep(&w.program, &cfg, w.fuel)
        }
        CoreModel::Ooo => {
            let mut cfg = if width > 0 { OooConfig::paper_wide(width) } else { OooConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            run_ooo(&w.program, &cfg, w.fuel)
        }
        CoreModel::Braid => {
            let mut cfg =
                if width > 0 { BraidConfig::paper_wide(width) } else { BraidConfig::paper_default() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            run_braid(&w.program, &cfg, w.fuel)
        }
    }
}

/// Builds the [`CoreConfig`] for a tiered simulate request — the same
/// paper configuration [`simulate`] applies, wrapped for the tier driver.
fn tier_core_config(core: CoreModel, width: u32, perfect: bool, deadline: u64) -> CoreConfig {
    match core {
        CoreModel::InOrder => {
            let mut cfg =
                if width > 0 { InOrderConfig::paper_wide(width) } else { InOrderConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            CoreConfig::InOrder(cfg)
        }
        CoreModel::DepSteer => {
            let mut cfg = if width > 0 { DepConfig::paper_wide(width) } else { DepConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            CoreConfig::Dep(cfg)
        }
        CoreModel::Ooo => {
            let mut cfg = if width > 0 { OooConfig::paper_wide(width) } else { OooConfig::paper_8wide() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            CoreConfig::Ooo(cfg)
        }
        CoreModel::Braid => {
            let mut cfg =
                if width > 0 { BraidConfig::paper_wide(width) } else { BraidConfig::paper_default() };
            if perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            cfg.common.deadline_cycles = deadline;
            CoreConfig::Braid(cfg)
        }
    }
}

/// Deterministic payload for a non-full-tier simulate. Host wall-clock
/// numbers never enter the payload: cache hits must be byte-identical to
/// the original computation, and the loadgen verify mode digests these
/// bytes across runs.
fn tier_payload(workload: &str, tier: Tier, rep: &TierReport) -> Json {
    let mut fields = vec![
        ("workload".into(), Json::Str(workload.into())),
        ("tier".into(), Json::Str(tier.name().into())),
        ("instructions".into(), Json::Int(rep.instructions())),
    ];
    match rep {
        TierReport::Full(r) => {
            fields.push(("cycles".into(), Json::Int(r.cycles)));
            fields.push(("ipc".into(), Json::Float(r.ipc())));
        }
        TierReport::Func(r) => {
            fields.push(("digest".into(), Json::Str(format!("{:016x}", r.digest))));
        }
        TierReport::Sampled(r) => {
            fields.push(("est_cycles".into(), Json::Int(r.est_cycles)));
            fields.push(("est_ipc_micro".into(), Json::Int((r.est_ipc() * 1e6).round() as u64)));
            fields.push(("intervals".into(), Json::Int(r.intervals)));
            fields.push(("timed_insts".into(), Json::Int(r.timed_insts)));
            fields.push(("measured_insts".into(), Json::Int(r.measured_insts)));
            fields.push(("measured_cycles".into(), Json::Int(r.measured_cycles)));
            fields.push(("overhead_cycles".into(), Json::Int(r.overhead_cycles)));
            fields.push(("cpi".into(), braid_obs::cpi_json(&r.cpi)));
        }
    }
    Json::Obj(fields)
}

/// The `translate` result payload: program shape plus the paper's braid
/// statistics (means over the program's braids).
fn translation_json(name: &str, t: &braid_compiler::Translation) -> Json {
    let s = &t.stats;
    Json::Obj(vec![
        ("workload".into(), Json::Str(name.into())),
        ("instructions".into(), Json::Int(t.program.insts.len() as u64)),
        ("braids".into(), Json::Int(t.braids.len() as u64)),
        ("size_mean".into(), Json::Float(s.size.mean())),
        ("width_mean".into(), Json::Float(s.width.mean())),
        ("internals_mean".into(), Json::Float(s.internals.mean())),
        ("ext_inputs_mean".into(), Json::Float(s.ext_inputs.mean())),
        ("ext_outputs_mean".into(), Json::Float(s.ext_outputs.mean())),
    ])
}
