//! The deterministic load generator and determinism harness.
//!
//! [`run_loadgen`] drives a braid-serve daemon with a seeded request mix
//! over N concurrent connections. Because the request stream is a pure
//! function of the seed, and the server's responses are a pure function
//! of the requests, the *entire exchange* is reproducible — so the
//! generator doubles as a correctness harness: with
//! [`LoadgenConfig::verify`] set it replays the identical mix over a
//! single connection and asserts the response bytes (matched by request,
//! compared in request order) are identical to the concurrent run's.
//! Any nondeterminism in the server — a rounding difference between
//! cached and computed payloads, a cross-connection data race, a reorder
//! bug in the writer — shows up as a digest mismatch.
//!
//! Every connection is a resilient [`Client`]: `retry` backpressure
//! responses are absorbed by resending after the server's hint, and
//! transport faults — torn frames, dropped connections, responses lost
//! to a panicked worker — are absorbed by reconnect-and-replay with
//! seeded, bounded backoff. Only the terminal response of each request
//! enters the digest, so a run that hit backpressure or chaos faults
//! digests identically to one that did not. That is the acceptance test
//! for the chaos harness: `braid-loadgen --verify` against a daemon
//! under `--chaos` must still report byte-identical responses.

use std::collections::BTreeMap;
use std::io;
use std::thread;
use std::time::Instant;

use braid_sweep::digest::hex;
use braid_sweep::json::{self, Json};
use braid_trace::hist_summary_json;
use braid_uarch::Histogram;

use crate::client::{Client, ClientConfig, ClientError};

/// Workloads the generated mix draws from (hand-written kernels: cheap,
/// deterministic, scale-independent).
const WORKLOADS: [&str; 5] = ["dot_product", "fig2_life", "stencil", "pointer_chase", "histogram"];
const CORES: [&str; 4] = ["inorder", "dep", "ooo", "braid"];
const WIDTHS: [u32; 3] = [0, 4, 8];
/// Workloads the `trace` record-and-replay class draws from: a couple of
/// cheap hand kernels plus compiled loop-nest families, so the mix
/// exercises the braid-lang frontend end to end through the daemon.
const TRACE_WORKLOADS: [&str; 4] = ["dot_product", "stencil", "ln_saxpy_u2", "ln_chains_c2_u1"];
/// Execution tiers the simulate mix draws from, weighted toward `full`
/// so the mix still exercises the original timing path hardest.
const TIERS: [&str; 4] = ["full", "full", "func", "sampled"];

/// Load-generator configuration; the `braid-loadgen` binary maps its
/// flags onto these fields.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:4848`.
    pub addr: String,
    /// Concurrent connections for the main phase.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Mix seed; same seed, same requests, byte for byte. Also seeds the
    /// per-connection backoff jitter streams.
    pub seed: u64,
    /// Replay the mix on one connection and verify byte-identical
    /// responses.
    pub verify: bool,
    /// Send `shutdown` after the run (and after verification).
    pub shutdown: bool,
    /// Per-request wall-clock budget in milliseconds (all attempts).
    pub timeout_ms: u64,
    /// Transport-fault attempts per request before giving up.
    pub max_attempts: u32,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: String::new(),
            connections: 2,
            requests: 50,
            seed: 7,
            verify: true,
            shutdown: false,
            timeout_ms: 10_000,
            max_attempts: 16,
        }
    }
}

impl LoadgenConfig {
    /// The client configuration for connection slot `slot` (each slot
    /// gets its own derived jitter seed so backoff schedules decorrelate).
    fn client_cfg(&self, slot: u64) -> ClientConfig {
        ClientConfig {
            request_timeout_ms: self.timeout_ms,
            max_attempts: self.max_attempts,
            ..ClientConfig::new(self.addr.clone(), self.seed ^ slot.wrapping_add(0x9e37_79b9))
        }
    }
}

/// What a load-generator run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent (excluding resends after `retry` or faults).
    pub sent: usize,
    /// `ok` responses received.
    pub ok: usize,
    /// `error` responses received.
    pub errors: usize,
    /// Backpressure (`retry`) responses absorbed by resending.
    pub retries: usize,
    /// Requests replayed after transport faults (torn frames, drops,
    /// lost responses).
    pub replays: usize,
    /// Connections established beyond the initial one per slot.
    pub reconnects: usize,
    /// Digest over the concurrent run's responses, in request order.
    pub digest: String,
    /// Digest of the single-connection replay (verify mode only).
    pub replay_digest: Option<String>,
    /// Server cache hits at the end of the run (from `stats`).
    pub cache_hits: u64,
    /// Server cache misses at the end of the run.
    pub cache_misses: u64,
    /// Cache hits served from the disk tier (0 without one).
    pub disk_hits: u64,
    /// Disk-cache entries quarantined as corrupt (0 without a disk tier).
    pub quarantined: u64,
    /// Client-observed latency per terminal response in microseconds,
    /// merged across every connection of the **concurrent** phase (the
    /// verify replay is excluded — it is a correctness probe, not a
    /// performance sample). Each sample covers a request's full journey:
    /// backpressure resends and reconnect-and-replay included.
    pub latency: Histogram,
    /// The same latency samples keyed by request kind.
    pub by_class: BTreeMap<String, Histogram>,
    /// Wall-clock duration of the concurrent phase in microseconds.
    pub elapsed_us: u64,
}

impl LoadgenReport {
    /// Whether verification (when requested) held: every request
    /// answered, replay digest identical.
    pub fn verified(&self) -> bool {
        match &self.replay_digest {
            Some(d) => d == &self.digest,
            None => true,
        }
    }

    /// Renders the machine-readable report (the `--json` output of
    /// `braid-loadgen`). Key order is fixed; every latency field key ends
    /// in `_us`, matching the server-side convention that host-time
    /// fields are the only nondeterministic ones.
    pub fn to_json(&self) -> Json {
        let mut doc = vec![
            ("sent".into(), Json::Int(self.sent as u64)),
            ("ok".into(), Json::Int(self.ok as u64)),
            ("errors".into(), Json::Int(self.errors as u64)),
            ("retries".into(), Json::Int(self.retries as u64)),
            ("replays".into(), Json::Int(self.replays as u64)),
            ("reconnects".into(), Json::Int(self.reconnects as u64)),
            ("digest".into(), Json::Str(self.digest.clone())),
            ("verified".into(), Json::Bool(self.verified())),
        ];
        if let Some(d) = &self.replay_digest {
            doc.push(("replay_digest".into(), Json::Str(d.clone())));
        }
        doc.push((
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Int(self.cache_hits)),
                ("misses".into(), Json::Int(self.cache_misses)),
                ("disk_hits".into(), Json::Int(self.disk_hits)),
                ("quarantined".into(), Json::Int(self.quarantined)),
            ]),
        ));
        doc.push(("elapsed_us".into(), Json::Int(self.elapsed_us)));
        doc.push(("latency".into(), hist_summary_json(&self.latency)));
        doc.push((
            "by_class".into(),
            Json::Obj(
                self.by_class
                    .iter()
                    .map(|(k, h)| (k.clone(), hist_summary_json(h)))
                    .collect(),
            ),
        ));
        Json::Obj(doc)
    }
}

/// Load-generator failures.
#[derive(Debug)]
pub enum LoadgenError {
    /// Socket I/O failed.
    Io(io::Error),
    /// The server closed a connection or sent an unparseable line.
    Protocol(String),
    /// A request exhausted its attempts or wall-clock budget.
    Client(ClientError),
    /// A request never received a terminal response.
    Lost {
        /// Requests sent.
        expected: usize,
        /// Terminal responses received.
        got: usize,
    },
    /// Verify mode: the replay responses differ from the concurrent run.
    Mismatch {
        /// Digest of the concurrent run.
        concurrent: String,
        /// Digest of the sequential replay.
        replay: String,
    },
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Io(e) => write!(f, "i/o: {e}"),
            LoadgenError::Protocol(m) => write!(f, "protocol: {m}"),
            LoadgenError::Client(e) => write!(f, "client: {e}"),
            LoadgenError::Lost { expected, got } => {
                write!(f, "lost responses: sent {expected}, got {got}")
            }
            LoadgenError::Mismatch { concurrent, replay } => write!(
                f,
                "determinism violation: concurrent digest {concurrent} != replay digest {replay}"
            ),
        }
    }
}

impl std::error::Error for LoadgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadgenError::Io(e) => Some(e),
            LoadgenError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadgenError {
    fn from(e: io::Error) -> LoadgenError {
        LoadgenError::Io(e)
    }
}

impl From<ClientError> for LoadgenError {
    fn from(e: ClientError) -> LoadgenError {
        LoadgenError::Client(e)
    }
}

/// Generates the deterministic request mix: `n` request lines with ids
/// `1..=n`, drawn from a seeded distribution of roughly 55% `simulate`,
/// 13% `sweep-point`, 10% `trace`, 13% `translate`, 9% `check` over the
/// kernel workloads and all four cores. Simulate requests carry an
/// explicit execution tier (half `full`, the rest `func`/`sampled`), and
/// `trace` requests record-and-replay compiled loop-nest workloads, so a
/// verified run covers every tier's and every request kind's determinism
/// and cache behaviour at once.
pub fn generate_requests(n: usize, seed: u64) -> Vec<String> {
    let mut rng = braid_prng::Rng::seed_from_u64(seed);
    (1..=n as u64)
        .map(|id| {
            let workload = *rng.choose(&WORKLOADS);
            let r = rng.next_f64();
            if r < 0.55 {
                let core = *rng.choose(&CORES);
                let width = *rng.choose(&WIDTHS);
                let tier = *rng.choose(&TIERS);
                format!(
                    "{{\"id\":{id},\"kind\":\"simulate\",\"workload\":\"{workload}\",\
                     \"core\":\"{core}\",\"width\":{width},\"tier\":\"{tier}\"}}"
                )
            } else if r < 0.68 {
                let core = *rng.choose(&CORES);
                let width = *rng.choose(&WIDTHS);
                let fifo = if rng.gen_bool(0.5) { 16 } else { 0 };
                format!(
                    "{{\"id\":{id},\"kind\":\"sweep-point\",\"workload\":\"{workload}\",\
                     \"core\":\"{core}\",\"width\":{width},\"fifo\":{fifo}}}"
                )
            } else if r < 0.78 {
                let workload = *rng.choose(&TRACE_WORKLOADS);
                let core = *rng.choose(&CORES);
                format!(
                    "{{\"id\":{id},\"kind\":\"trace\",\"workload\":\"{workload}\",\
                     \"core\":\"{core}\"}}"
                )
            } else if r < 0.91 {
                format!("{{\"id\":{id},\"kind\":\"translate\",\"workload\":\"{workload}\"}}")
            } else {
                format!("{{\"id\":{id},\"kind\":\"check\",\"workload\":\"{workload}\"}}")
            }
        })
        .collect()
}

/// Resilience counters and latency samples one connection slot
/// accumulated.
#[derive(Debug, Clone, Default)]
struct SlotStats {
    retries: usize,
    replays: usize,
    reconnects: usize,
    /// Per-request client-observed latency in microseconds.
    latency: Histogram,
    /// The same samples keyed by request kind.
    by_class: BTreeMap<String, Histogram>,
}

/// One connection slot's worth of send/receive through a resilient
/// [`Client`]: requests go one at a time; backpressure and transport
/// faults are absorbed inside [`Client::request`] — and therefore inside
/// the latency sample, which times the full journey to a terminal
/// response. Returns `(request index, terminal line)` pairs plus the
/// slot's counters.
fn drive_connection(
    cfg: ClientConfig,
    slice: Vec<(usize, String)>,
) -> Result<(Vec<(usize, String)>, SlotStats), LoadgenError> {
    let mut client = Client::new(cfg);
    let mut out = Vec::with_capacity(slice.len());
    let mut latency = Histogram::default();
    let mut by_class: BTreeMap<String, Histogram> = BTreeMap::new();
    for (idx, line) in slice {
        let kind = crate::protocol::parse_request(&line)
            .map(|(_, req)| req.kind())
            .unwrap_or("invalid");
        let started = Instant::now();
        let resp = client.request(&line)?;
        let us = started.elapsed().as_micros() as u64;
        latency.record(us);
        by_class.entry(kind.to_string()).or_default().record(us);
        out.push((idx, resp));
    }
    let stats = SlotStats {
        retries: client.retries as usize,
        replays: client.replays as usize,
        reconnects: client.connects.saturating_sub(1) as usize,
        latency,
        by_class,
    };
    Ok((out, stats))
}

/// Sends the request list over `connections` client slots (request `i`
/// rides slot `i % connections`, orders preserved per slot) and returns
/// the terminal responses in request order plus the summed resilience
/// counters and merged cross-connection latency histograms.
fn run_phase(
    cfg: &LoadgenConfig,
    lines: &[String],
    connections: usize,
) -> Result<(Vec<String>, SlotStats), LoadgenError> {
    let connections = connections.max(1);
    let mut slices: Vec<Vec<(usize, String)>> = vec![Vec::new(); connections];
    for (i, line) in lines.iter().enumerate() {
        slices[i % connections].push((i, line.clone()));
    }
    let mut handles = Vec::new();
    for (slot, slice) in slices.into_iter().enumerate() {
        let ccfg = cfg.client_cfg(slot as u64);
        handles.push(thread::spawn(move || drive_connection(ccfg, slice)));
    }
    let mut by_index = BTreeMap::new();
    let mut total = SlotStats::default();
    for h in handles {
        let (pairs, s) = h.join().map_err(|_| {
            LoadgenError::Protocol("connection thread panicked".into())
        })??;
        total.retries += s.retries;
        total.replays += s.replays;
        total.reconnects += s.reconnects;
        total.latency.merge(&s.latency);
        for (kind, h) in &s.by_class {
            total.by_class.entry(kind.clone()).or_default().merge(h);
        }
        for (idx, line) in pairs {
            by_index.insert(idx, line);
        }
    }
    if by_index.len() != lines.len() {
        return Err(LoadgenError::Lost { expected: lines.len(), got: by_index.len() });
    }
    Ok((by_index.into_values().collect(), total))
}

/// Digests a response list: the canonical 16-hex-digit rendering of the
/// newline-joined lines.
fn digest_responses(lines: &[String]) -> String {
    hex(lines.join("\n").as_bytes())
}

/// Sends one out-of-mix request on a fresh resilient client and returns
/// the parsed response document.
fn control_request(cfg: &LoadgenConfig, line: &str) -> Result<Json, LoadgenError> {
    // Slot id far outside the mix range keeps the jitter stream distinct.
    let mut client = Client::new(cfg.client_cfg(u64::MAX));
    let resp = client.request(line)?;
    json::parse(&resp).map_err(|e| LoadgenError::Protocol(format!("bad control response: {e}")))
}

/// Runs the full load-generation session against a live daemon.
///
/// # Errors
///
/// Returns [`LoadgenError::Mismatch`] when verify mode detects a
/// determinism violation, [`LoadgenError::Lost`] when a request never got
/// a terminal response, [`LoadgenError::Client`] when a request exhausted
/// its retry budget, and I/O or protocol errors for transport failures.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, LoadgenError> {
    let lines = generate_requests(cfg.requests, cfg.seed);
    let phase_started = Instant::now();
    let (responses, stats) = run_phase(cfg, &lines, cfg.connections)?;
    let elapsed_us = phase_started.elapsed().as_micros() as u64;
    let digest = digest_responses(&responses);

    let replay_digest = if cfg.verify {
        let (replay, _) = run_phase(cfg, &lines, 1)?;
        let replay_digest = digest_responses(&replay);
        if replay_digest != digest {
            return Err(LoadgenError::Mismatch { concurrent: digest, replay: replay_digest });
        }
        Some(replay_digest)
    } else {
        None
    };

    let mut ok = 0usize;
    let mut errors = 0usize;
    for line in &responses {
        match json::parse(line).ok().as_ref().and_then(|d| d.get("status")).and_then(Json::as_str)
        {
            Some("ok") => ok += 1,
            _ => errors += 1,
        }
    }

    let stats_doc = control_request(cfg, "{\"id\":1,\"kind\":\"stats\"}")?;
    let cache = stats_doc.get("result").and_then(|r| r.get("cache"));
    let counter = |path: &[&str]| {
        let mut node = cache;
        for key in path {
            node = node.and_then(|c| c.get(key));
        }
        node.and_then(Json::as_u64).unwrap_or(0)
    };
    let cache_hits = counter(&["hits"]);
    let cache_misses = counter(&["misses"]);
    let disk_hits = counter(&["disk", "hits"]);
    let quarantined = counter(&["disk", "quarantined"]);

    if cfg.shutdown {
        let resp = control_request(cfg, "{\"id\":1,\"kind\":\"shutdown\"}")?;
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(LoadgenError::Protocol(format!(
                "shutdown refused: {}",
                resp.compact()
            )));
        }
    }

    Ok(LoadgenReport {
        sent: cfg.requests,
        ok,
        errors,
        retries: stats.retries,
        replays: stats.replays,
        reconnects: stats.reconnects,
        digest,
        replay_digest,
        cache_hits,
        cache_misses,
        disk_hits,
        quarantined,
        latency: stats.latency,
        by_class: stats.by_class,
        elapsed_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_and_well_formed() {
        let a = generate_requests(200, 7);
        let b = generate_requests(200, 7);
        assert_eq!(a, b, "same seed, same bytes");
        let c = generate_requests(200, 8);
        assert_ne!(a, c, "different seed, different mix");
        let mut kinds = std::collections::BTreeMap::new();
        for (i, line) in a.iter().enumerate() {
            let (id, req) = crate::protocol::parse_request(line)
                .unwrap_or_else(|e| panic!("line {i} malformed: {e:?}"));
            assert_eq!(id, i as u64 + 1, "ids are 1..=n in order");
            *kinds.entry(req.kind()).or_insert(0u32) += 1;
        }
        for kind in ["simulate", "sweep-point", "trace", "translate", "check"] {
            assert!(kinds.get(kind).copied().unwrap_or(0) > 0, "mix contains {kind}");
        }
        for tier in ["\"tier\":\"full\"", "\"tier\":\"func\"", "\"tier\":\"sampled\""] {
            assert!(a.iter().any(|l| l.contains(tier)), "mix exercises {tier}");
        }
    }

    #[test]
    fn response_digest_is_order_sensitive() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "x".to_string()];
        assert_ne!(digest_responses(&a), digest_responses(&b));
    }

    #[test]
    fn report_json_has_stable_shape_and_percentile_fields() {
        let mut latency = Histogram::default();
        let mut sim = Histogram::default();
        for us in [100, 200, 300, 4000] {
            latency.record(us);
            sim.record(us);
        }
        let report = LoadgenReport {
            sent: 4,
            ok: 4,
            errors: 0,
            retries: 1,
            replays: 0,
            reconnects: 0,
            digest: "abc".into(),
            replay_digest: Some("abc".into()),
            cache_hits: 2,
            cache_misses: 2,
            disk_hits: 0,
            quarantined: 0,
            latency,
            by_class: BTreeMap::from([("simulate".to_string(), sim)]),
            elapsed_us: 5000,
        };
        let doc = report.to_json();
        assert_eq!(doc.get("verified").unwrap().as_bool(), Some(true));
        let lat = doc.get("latency").expect("latency summary");
        for key in ["count", "total_us", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"] {
            assert!(lat.get(key).is_some(), "latency summary carries {key}");
        }
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(lat.get("max_us").unwrap().as_u64(), Some(4000));
        let sim = doc.get("by_class").unwrap().get("simulate").expect("class summary");
        assert_eq!(sim.get("count").unwrap().as_u64(), Some(4));
        // Same document twice: the report rendering itself is a pure
        // function of the report.
        assert_eq!(doc.compact(), report.to_json().compact());
    }

    #[test]
    fn client_seeds_decorrelate_across_slots() {
        let cfg = LoadgenConfig::default();
        let seeds: Vec<u64> = (0..4).map(|s| cfg.client_cfg(s).seed).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "each slot gets its own jitter seed");
    }
}
