//! Server-side observability: request counters, latency histograms, and
//! the aggregated CPI stack.
//!
//! Everything lives behind one mutex and is rendered to JSON on demand by
//! the `stats` request. Latency is host wall-clock time and therefore the
//! one non-deterministic part of the protocol surface — the load
//! generator's verify mode excludes `stats` responses from its digests
//! for exactly that reason.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use braid_core::CpiStack;
use braid_obs::{cpi_json, hist_json};
use braid_sweep::json::Json;
use braid_sweep::pool::JobPool;
use braid_uarch::Histogram;

use crate::cache::ResultCache;
use crate::chaos::Chaos;

#[derive(Default)]
struct StatsInner {
    by_kind: BTreeMap<&'static str, u64>,
    protocol_errors: u64,
    request_errors: u64,
    retries: u64,
    shed: u64,
    latency_us: Histogram,
    cpi: CpiStack,
}

/// Aggregated server statistics, shared by every connection.
#[derive(Default)]
pub struct ServeStats {
    inner: Mutex<StatsInner>,
}

impl ServeStats {
    /// An empty collector.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StatsInner> {
        // Poison recovery: every mutation here is a single counter or
        // histogram bump, so state behind a panicking thread is still
        // coherent — one crashed worker must not cost the stats document.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Counts one accepted request of `kind`.
    pub fn record_request(&self, kind: &'static str) {
        *self.lock().by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Counts a line the protocol layer rejected.
    pub fn record_protocol_error(&self) {
        self.lock().protocol_errors += 1;
    }

    /// Counts a request that executed but failed (error response).
    pub fn record_request_error(&self) {
        self.lock().request_errors += 1;
    }

    /// Counts a backpressure (`retry`) response.
    pub fn record_retry(&self) {
        self.lock().retries += 1;
    }

    /// Counts a request shed by class under overload (also answered
    /// `retry`, but before reaching the job queue).
    pub fn record_shed(&self) {
        let mut inner = self.lock();
        inner.shed += 1;
        inner.retries += 1;
    }

    /// Records one executed request's service latency in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        self.lock().latency_us.record(us);
    }

    /// Merges the CPI stack of one **computed** (non-cached) simulation.
    /// Cache hits skip the simulation, so they add nothing here — the
    /// stack attributes the cycles this server actually simulated.
    pub fn merge_cpi(&self, cpi: &CpiStack) {
        self.lock().cpi.merge(cpi);
    }

    /// Renders the cache counter block shared by the `stats` and
    /// `metrics` documents.
    fn cache_json(cache: &ResultCache) -> Json {
        let (hits, misses) = cache.counters();
        let mut cache_obj = vec![
            ("hits".into(), Json::Int(hits)),
            ("misses".into(), Json::Int(misses)),
            ("entries".into(), Json::Int(cache.len() as u64)),
            ("capacity".into(), Json::Int(cache.capacity() as u64)),
        ];
        if let Some(d) = cache.disk_counters() {
            cache_obj.push((
                "disk".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Int(d.hits)),
                    ("writes".into(), Json::Int(d.writes)),
                    ("quarantined".into(), Json::Int(d.quarantined)),
                    ("errors".into(), Json::Int(d.errors)),
                    ("enabled".into(), Json::Bool(d.enabled)),
                ]),
            ));
        }
        Json::Obj(cache_obj)
    }

    /// Renders the full statistics document served by the `stats` request.
    /// `chaos` is the armed fault harness, if any — its spec seed and
    /// per-class injection counts are part of the document.
    pub fn to_json(&self, cache: &ResultCache, pool: &JobPool, chaos: Option<&Chaos>) -> Json {
        let inner = self.lock();
        let depth = pool.depth();
        let requests =
            inner.by_kind.iter().map(|(k, n)| ((*k).to_string(), Json::Int(*n))).collect();
        let cache_obj = Self::cache_json(cache);
        let mut doc = vec![
            ("requests".into(), Json::Obj(requests)),
            ("protocol_errors".into(), Json::Int(inner.protocol_errors)),
            ("request_errors".into(), Json::Int(inner.request_errors)),
            ("retries".into(), Json::Int(inner.retries)),
            ("shed".into(), Json::Int(inner.shed)),
            ("cache".into(), cache_obj),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("queued".into(), Json::Int(depth.queued as u64)),
                    ("running".into(), Json::Int(depth.running as u64)),
                    ("panics".into(), Json::Int(pool.panics())),
                ]),
            ),
            ("latency_us".into(), hist_json(&inner.latency_us)),
            ("cpi".into(), cpi_json(&inner.cpi)),
        ];
        if let Some(chaos) = chaos {
            doc.push(("chaos".into(), chaos.to_json()));
        }
        Json::Obj(doc)
    }

    /// Renders the `metrics` document: the trace registry (phase and
    /// per-class histograms, structured-event counters, the conservation
    /// verdict) with the service's request/shed/cache/chaos counters
    /// folded in.
    ///
    /// Determinism contract: for the same request sequence the document
    /// is byte-identical modulo fields whose keys end in `_us` — the
    /// racy pool depths and the host-latency histogram of the `stats`
    /// document are deliberately excluded.
    pub fn metrics_json(
        &self,
        registry: &braid_trace::Registry,
        cache: &ResultCache,
        chaos: Option<&Chaos>,
    ) -> Json {
        let inner = self.lock();
        let requests =
            inner.by_kind.iter().map(|(k, n)| ((*k).to_string(), Json::Int(*n))).collect();
        let mut doc = vec![
            ("requests".into(), Json::Obj(requests)),
            ("protocol_errors".into(), Json::Int(inner.protocol_errors)),
            ("request_errors".into(), Json::Int(inner.request_errors)),
            ("retries".into(), Json::Int(inner.retries)),
            ("shed".into(), Json::Int(inner.shed)),
            ("cache".into(), Self::cache_json(cache)),
            ("trace".into(), registry.to_json()),
        ];
        if let Some(chaos) = chaos {
            doc.push(("chaos".into(), chaos.to_json()));
        }
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_core::StallCause;

    #[test]
    fn stats_document_reflects_recorded_events() {
        let stats = ServeStats::new();
        let cache = ResultCache::new(4);
        let pool = JobPool::new(1, 4);
        stats.record_request("simulate");
        stats.record_request("simulate");
        stats.record_request("stats");
        stats.record_retry();
        stats.record_protocol_error();
        stats.record_latency_us(120);
        let mut cpi = CpiStack::new();
        cpi.add(StallCause::Base, 10);
        stats.merge_cpi(&cpi);
        cache.insert("k".into(), "v".into());
        let _ = cache.get("k");

        stats.record_shed();

        let doc = stats.to_json(&cache, &pool, None);
        assert_eq!(doc.get("requests").unwrap().get("simulate").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("retries").unwrap().as_u64(), Some(2), "shed also counts as a retry");
        assert_eq!(doc.get("shed").unwrap().as_u64(), Some(1));
        assert!(doc.get("chaos").is_none(), "no chaos object when the harness is unarmed");
        assert!(doc.get("cache").unwrap().get("disk").is_none(), "RAM-only cache: no disk object");
        assert_eq!(doc.get("protocol_errors").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("latency_us").unwrap().get("samples").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("cpi").unwrap().get("base").unwrap().as_u64(), Some(10));
        pool.shutdown();
    }

    #[test]
    fn metrics_document_folds_service_counters_around_the_registry() {
        use braid_trace::{Phase, Registry, RequestSpan};
        let stats = ServeStats::new();
        let cache = ResultCache::new(4);
        let registry = Registry::new();
        stats.record_request("simulate");
        stats.record_shed();
        let mut span = RequestSpan::begin();
        span.describe("t-1".into(), "simulate", 1);
        span.mark(Phase::Read);
        span.mark(Phase::Execute);
        registry.record(&span.finish());
        registry.record_event("cache-demoted");

        let doc = stats.metrics_json(&registry, &cache, None);
        assert_eq!(doc.get("requests").unwrap().get("simulate").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("shed").unwrap().as_u64(), Some(1));
        let trace = doc.get("trace").expect("registry block");
        assert_eq!(trace.get("spans").unwrap().as_u64(), Some(1));
        assert_eq!(trace.get("conserved").unwrap().as_bool(), Some(true));
        assert_eq!(trace.get("events").unwrap().get("cache-demoted").unwrap().as_u64(), Some(1));
        assert!(doc.get("pool").is_none(), "racy pool depths stay out of metrics");
        assert!(doc.get("latency_us").is_none(), "host latency block stays out of metrics");
    }
}
