//! The content-addressed result cache.
//!
//! Keys come from [`braid_sweep::digest::ContentDigest`] over everything
//! that determines a response payload: the workload's serialized container
//! bytes (so two names for the same program share entries, and a changed
//! program misses), the core model, and every config knob including the
//! effective deadline. Values are the compact-JSON `result` payload —
//! **without** the response frame, because the frame carries the
//! client-chosen request id.
//!
//! Because simulations are deterministic, a hit is indistinguishable from
//! a recomputation on the wire; the only observable difference is the
//! hit/miss counters exposed through the `stats` request.
//!
//! Eviction is FIFO at a fixed capacity. That is deliberately dumber than
//! LRU: insertion order is identical however requests interleave across
//! connections, so a capacity-limited server still behaves reproducibly
//! under the load generator's concurrent/sequential comparison.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

struct CacheInner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

/// A bounded, thread-safe map from content digest to response payload.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` payloads (clamped to ≥ 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a payload, evicting the oldest entry at capacity. Losing a
    /// race with another worker computing the same key is harmless: both
    /// payloads are byte-identical by determinism.
    pub fn insert(&self, key: String, payload: String) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key.clone(), payload).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Number of cached payloads.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let c = ResultCache::new(8);
        assert_eq!(c.get("k"), None);
        c.insert("k".into(), "v".into());
        assert_eq!(c.get("k").as_deref(), Some("v"));
        assert_eq!(c.counters(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_drops_the_oldest() {
        let c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into());
        assert_eq!(c.get("a"), None, "oldest entry evicted");
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_order_queue() {
        let c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1"), "no spurious eviction");
    }
}
