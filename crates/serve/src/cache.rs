//! The content-addressed result cache: a RAM FIFO in front of an
//! optional crash-safe on-disk store.
//!
//! Keys come from [`braid_sweep::digest::ContentDigest`] over everything
//! that determines a response payload: the workload's serialized container
//! bytes (so two names for the same program share entries, and a changed
//! program misses), the core model, and every config knob including the
//! effective deadline. Values are the compact-JSON `result` payload —
//! **without** the response frame, because the frame carries the
//! client-chosen request id.
//!
//! Because simulations are deterministic, a hit is indistinguishable from
//! a recomputation on the wire — whether it came from RAM, from disk, or
//! from fresh compute. The only observable difference is the hit/miss
//! counters exposed through the `stats` request.
//!
//! RAM eviction is FIFO at a fixed capacity. That is deliberately dumber
//! than LRU: insertion order is identical however requests interleave
//! across connections, so a capacity-limited server still behaves
//! reproducibly under the load generator's concurrent/sequential
//! comparison.
//!
//! ## Disk tier and its atomicity invariant
//!
//! With a cache directory configured, every computed payload is also
//! written to `<dir>/<key>.entry`, framed by
//! [`braid_sweep::digest::frame`] (payload + magic/length/digest footer).
//! Writes go to a uniquely named temp file first and are published by
//! `rename`, which is atomic on the same filesystem — so a reader (or a
//! daemon restarted after `kill -9`) sees either no entry or a complete
//! one, never a half-written file under the final name. Every read
//! re-verifies the footer; an entry that fails verification is
//! **quarantined** (moved to `<dir>/quarantine/`), counted, and treated
//! as a miss — the payload is recomputed and rewritten, never served
//! corrupt.
//!
//! Disk *write* failures (full disk, permissions, a yanked volume) demote
//! the cache to RAM-only for the rest of the process: logged once, never
//! an exit, because the disk tier is an accelerator, not a correctness
//! dependency.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use braid_sweep::digest::{frame, unframe};
use braid_sweep::json::Json;
use braid_trace::TraceHub;

use std::collections::{HashMap, VecDeque};

/// A disk fault injected by the chaos harness on one insert. The cache
/// itself never generates these; the server's chaos schedule passes them
/// into [`ResultCache::insert_faulty`] so the corruption-detection and
/// demotion paths are exercised deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Flip a byte of the framed entry before writing and skip the RAM
    /// tier, so the next lookup reads the corrupt entry from disk and
    /// must quarantine it.
    Corrupt,
    /// Fail the write with an ENOSPC-style I/O error, exercising the
    /// log-once demotion to RAM-only.
    WriteError,
}

/// Counters for the disk tier, surfaced through the `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Lookups served from disk (after footer verification).
    pub hits: u64,
    /// Entries that failed verification and were moved to quarantine.
    pub quarantined: u64,
    /// I/O errors on the disk tier (reads and writes).
    pub errors: u64,
    /// Entries successfully published via temp-file + rename.
    pub writes: u64,
    /// Whether the disk tier is still accepting writes (false after a
    /// write failure demoted the cache to RAM-only).
    pub enabled: bool,
}

struct CacheInner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    disk_hits: u64,
}

/// The on-disk tier: content-addressed files with verified footers.
struct DiskStore {
    dir: PathBuf,
    /// Cleared after the first write failure (log-once demotion).
    enabled: AtomicBool,
    /// Uniquifies temp-file names across concurrent writers.
    tmp_seq: AtomicU64,
    quarantined: AtomicU64,
    errors: AtomicU64,
    writes: AtomicU64,
    /// Structured-event sink (armed by [`ResultCache::arm_trace`]):
    /// quarantine and demotion become countable trace events, not just
    /// stderr lines, so chaos runs are diagnosable from the span log.
    trace: OnceLock<Arc<TraceHub>>,
}

impl DiskStore {
    fn open(dir: &Path) -> io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        // Sweep temp files left by a crash mid-write; entries under the
        // final name are always complete (rename is atomic), but orphaned
        // temps are garbage.
        for entry in fs::read_dir(dir)?.flatten() {
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            enabled: AtomicBool::new(true),
            tmp_seq: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            trace: OnceLock::new(),
        })
    }

    /// Emits one structured event when a trace hub is armed.
    fn trace_event(&self, kind: &str, fields: Vec<(String, Json)>) {
        if let Some(hub) = self.trace.get() {
            hub.event(kind, fields);
        }
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.entry"))
    }

    /// Moves a corrupt entry aside so it is never read again but stays
    /// available for post-mortems, then counts it.
    fn quarantine(&self, key: &str, why: &impl std::fmt::Display) {
        let qdir = self.dir.join("quarantine");
        let _ = fs::create_dir_all(&qdir);
        let from = self.entry_path(key);
        if fs::rename(&from, qdir.join(format!("{key}.entry"))).is_err() {
            // Renaming failed (e.g. the quarantine dir is unwritable);
            // deleting still prevents re-serving the corrupt bytes.
            let _ = fs::remove_file(&from);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.trace_event(
            "cache-quarantined",
            vec![
                ("key".into(), Json::Str(key.into())),
                ("reason".into(), Json::Str(why.to_string())),
            ],
        );
        eprintln!("braid-serve: quarantined corrupt cache entry {key}: {why}");
    }

    /// Reads and verifies one entry. Corruption quarantines; I/O errors
    /// other than not-found are counted. Either way a failed read is a
    /// miss, never an exit.
    fn get(&self, key: &str) -> Option<String> {
        let bytes = match fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let payload = match unframe(&bytes) {
            Ok(p) => p,
            Err(e) => {
                self.quarantine(key, &e);
                return None;
            }
        };
        match String::from_utf8(payload.to_vec()) {
            Ok(s) => Some(s),
            Err(_) => {
                self.quarantine(key, &"payload is not UTF-8");
                None
            }
        }
    }

    /// Publishes one framed entry atomically: write a uniquely named temp
    /// file, then `rename` onto the final name. Returns the I/O error on
    /// failure so the caller can demote.
    fn put(&self, key: &str, framed: &[u8], injected_error: bool) -> io::Result<()> {
        let n = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("{key}.{}.{n}.tmp", std::process::id()));
        let publish = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(framed)?;
            if injected_error {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "chaos: injected ENOSPC"));
            }
            fs::rename(&tmp, self.entry_path(key))
        })();
        if publish.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        publish
    }

    fn counters(&self) -> DiskCounters {
        DiskCounters {
            hits: 0, // filled in by the cache, which owns the hit counter
            quarantined: self.quarantined.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            enabled: self.enabled.load(Ordering::Relaxed),
        }
    }
}

/// A bounded, thread-safe map from content digest to response payload,
/// optionally backed by a crash-safe disk store.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    disk: Option<DiskStore>,
}

impl ResultCache {
    /// A RAM-only cache holding at most `capacity` payloads (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                disk_hits: 0,
            }),
            capacity: capacity.max(1),
            disk: None,
        }
    }

    /// A two-tier cache: RAM FIFO in front of a content-addressed store
    /// under `dir` (created if absent; stale temp files from a previous
    /// crash are swept).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when `dir` cannot be created or scanned —
    /// the caller decides whether to fall back to RAM-only.
    pub fn with_disk(capacity: usize, dir: &Path) -> io::Result<ResultCache> {
        let mut cache = ResultCache::new(capacity);
        cache.disk = Some(DiskStore::open(dir)?);
        Ok(cache)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // Poison recovery: a panicking thread (chaos-injected or real)
        // must not cascade into total cache loss — the counters and map
        // it held are still internally consistent line by line.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up in RAM, then on disk (verifying the footer and
    /// promoting the payload into RAM), counting a hit or a miss.
    pub fn get(&self, key: &str) -> Option<String> {
        {
            let mut inner = self.lock();
            if let Some(v) = inner.map.get(key).cloned() {
                inner.hits += 1;
                return Some(v);
            }
        }
        if let Some(hit) = self.disk.as_ref().and_then(|d| d.get(key)) {
            let mut inner = self.lock();
            inner.hits += 1;
            inner.disk_hits += 1;
            drop(inner);
            self.insert_ram(key.to_string(), hit.clone());
            return Some(hit);
        }
        self.lock().misses += 1;
        None
    }

    fn insert_ram(&self, key: String, payload: String) {
        let mut inner = self.lock();
        if inner.map.insert(key.clone(), payload).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Inserts a payload into both tiers, evicting the oldest RAM entry
    /// at capacity. Losing a race with another worker computing the same
    /// key is harmless: both payloads are byte-identical by determinism.
    pub fn insert(&self, key: String, payload: String) {
        self.insert_faulty(key, payload, None);
    }

    /// [`ResultCache::insert`] with an optional injected disk fault (see
    /// [`DiskFault`]) — the chaos harness's hook into the disk tier.
    pub fn insert_faulty(&self, key: String, payload: String, fault: Option<DiskFault>) {
        if fault != Some(DiskFault::Corrupt) {
            self.insert_ram(key.clone(), payload.clone());
        }
        let Some(disk) = &self.disk else { return };
        if !disk.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut framed = frame(payload.as_bytes());
        if fault == Some(DiskFault::Corrupt) {
            // Flip a payload byte so the footer digest no longer matches;
            // the next disk read must quarantine, recompute, and rewrite.
            let i = framed.len() / 2;
            framed[i] ^= 0x5a;
        }
        match disk.put(&key, &framed, fault == Some(DiskFault::WriteError)) {
            Ok(()) => {
                disk.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                disk.errors.fetch_add(1, Ordering::Relaxed);
                // Log-once demotion to RAM-only: the first write failure
                // disables the tier; correctness never depended on it.
                if disk.enabled.swap(false, Ordering::Relaxed) {
                    disk.trace_event(
                        "cache-demoted",
                        vec![("error".into(), Json::Str(e.to_string()))],
                    );
                    eprintln!(
                        "braid-serve: disk cache write failed ({e}); demoting to RAM-only"
                    );
                }
            }
        }
    }

    /// Arms the structured-event sink: disk-tier quarantine and demotion
    /// events are counted in `hub`'s registry and appended to its span
    /// log (when one is armed) in addition to the stderr warning. A
    /// no-op for RAM-only caches (they have no such events) and after
    /// the first call.
    pub fn arm_trace(&self, hub: Arc<TraceHub>) {
        if let Some(disk) = &self.disk {
            let _ = disk.trace.set(hub);
        }
    }

    /// `(hits, misses)` since construction. Hits count both tiers.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Disk-tier counters, or `None` for a RAM-only cache.
    pub fn disk_counters(&self) -> Option<DiskCounters> {
        self.disk.as_ref().map(|d| {
            let mut c = d.counters();
            c.hits = self.lock().disk_hits;
            c
        })
    }

    /// Number of RAM-cached payloads.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the RAM tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured RAM capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("braid-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let c = ResultCache::new(8);
        assert_eq!(c.get("k"), None);
        c.insert("k".into(), "v".into());
        assert_eq!(c.get("k").as_deref(), Some("v"));
        assert_eq!(c.counters(), (1, 1));
        assert_eq!(c.len(), 1);
        assert!(c.disk_counters().is_none(), "RAM-only cache has no disk tier");
    }

    #[test]
    fn fifo_eviction_drops_the_oldest() {
        let c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into());
        assert_eq!(c.get("a"), None, "oldest entry evicted");
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_order_queue() {
        let c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1"), "no spurious eviction");
    }

    #[test]
    fn disk_tier_survives_a_new_process_image() {
        let dir = tmp_dir("persist");
        let payload = r#"{"cycles":123}"#;
        {
            let c = ResultCache::with_disk(4, &dir).expect("open disk tier");
            c.insert("deadbeef".into(), payload.into());
        }
        // A "restarted" cache: fresh RAM, same directory.
        let c = ResultCache::with_disk(4, &dir).expect("reopen disk tier");
        assert_eq!(c.get("deadbeef").as_deref(), Some(payload), "warm hit from disk");
        let d = c.disk_counters().expect("disk tier");
        assert_eq!(d.hits, 1);
        assert_eq!(d.quarantined, 0);
        // Promotion: the second lookup is a RAM hit, not another disk read.
        assert_eq!(c.get("deadbeef").as_deref(), Some(payload));
        assert_eq!(c.disk_counters().expect("disk tier").hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_of_an_entry_is_quarantined_not_served() {
        let dir = tmp_dir("truncate");
        let payload = "0123456789abcdef0123456789abcdef";
        let full = {
            let c = ResultCache::with_disk(4, &dir).expect("open");
            c.insert("k".into(), payload.into());
            fs::read(dir.join("k.entry")).expect("entry written")
        };
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            let c = ResultCache::with_disk(4, &dir).expect("reopen");
            fs::write(dir.join("k.entry"), &full[..cut]).expect("truncate");
            assert_eq!(c.get("k"), None, "cut at {cut} must miss, not serve garbage");
            let d = c.disk_counters().expect("disk tier");
            assert_eq!(d.quarantined, 1, "cut at {cut} quarantined");
            assert!(!dir.join("k.entry").exists(), "corrupt entry moved aside");
            // Recompute path: reinsert publishes a fresh, verified entry.
            c.insert("k".into(), payload.into());
        }
        let c = ResultCache::with_disk(4, &dir).expect("reopen");
        assert_eq!(c.get("k").as_deref(), Some(payload), "rewritten entry verifies");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_detected_on_the_next_read() {
        let dir = tmp_dir("corrupt");
        let c = ResultCache::with_disk(4, &dir).expect("open");
        c.insert_faulty("k".into(), "payload".into(), Some(DiskFault::Corrupt));
        // Corrupt insert skipped RAM, so this lookup reads disk, detects
        // the flip, quarantines, and misses.
        assert_eq!(c.get("k"), None);
        let d = c.disk_counters().expect("disk tier");
        assert_eq!(d.quarantined, 1);
        assert!(d.enabled, "corruption does not demote the tier");
        // The recompute-and-rewrite cycle restores service.
        c.insert("k".into(), "payload".into());
        assert_eq!(c.get("k").as_deref(), Some("payload"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_demotes_to_ram_only_without_losing_service() {
        let dir = tmp_dir("demote");
        let c = ResultCache::with_disk(4, &dir).expect("open");
        c.insert_faulty("k".into(), "v".into(), Some(DiskFault::WriteError));
        let d = c.disk_counters().expect("disk tier");
        assert!(!d.enabled, "first write failure demotes");
        assert_eq!(d.errors, 1);
        // RAM tier still serves, and later inserts skip disk silently.
        assert_eq!(c.get("k").as_deref(), Some("v"));
        c.insert("j".into(), "w".into());
        assert_eq!(c.get("j").as_deref(), Some("w"));
        assert!(!dir.join("j.entry").exists(), "demoted tier writes nothing");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_trace_hub_counts_quarantine_and_demotion_events() {
        let dir = tmp_dir("trace-events");
        let hub = Arc::new(TraceHub::new(None));
        let c = ResultCache::with_disk(4, &dir).expect("open");
        c.arm_trace(Arc::clone(&hub));
        // Corrupt insert skips RAM; the next lookup reads the corrupt disk
        // entry and quarantines it — that must surface as a trace event.
        c.insert_faulty("k".into(), "payload".into(), Some(DiskFault::Corrupt));
        assert_eq!(c.get("k"), None);
        assert_eq!(hub.registry().event_count("cache-quarantined"), 1);
        // First write failure demotes (one event), later failures do not.
        c.insert_faulty("j".into(), "v".into(), Some(DiskFault::WriteError));
        assert_eq!(hub.registry().event_count("cache-demoted"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn arm_trace_is_a_no_op_on_a_ram_only_cache() {
        let hub = Arc::new(TraceHub::new(None));
        let c = ResultCache::new(4);
        c.arm_trace(Arc::clone(&hub));
        c.insert("k".into(), "v".into());
        assert_eq!(hub.registry().event_count("cache-quarantined"), 0);
        assert_eq!(hub.registry().event_count("cache-demoted"), 0);
    }

    #[test]
    fn stale_temp_files_are_swept_on_open() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("k.123.0.tmp"), b"half a wri").expect("stale temp");
        let c = ResultCache::with_disk(4, &dir).expect("open sweeps temps");
        assert!(!dir.join("k.123.0.tmp").exists(), "stale temp removed");
        assert_eq!(c.get("k"), None, "a temp file is never an entry");
        let _ = fs::remove_dir_all(&dir);
    }
}
