//! The JSON-lines wire protocol.
//!
//! One request object per line; every request carries a client-chosen
//! numeric `id` and a `kind`. Responses echo the `id` with a `status` of
//! `ok`, `error`, or `retry`:
//!
//! ```text
//! → {"id":1,"kind":"simulate","workload":"dot_product","core":"braid","width":8}
//! ← {"id":1,"status":"ok","result":{...}}
//! → {"id":2,"kind":"simulate","workload":"nonesuch","core":"ooo"}
//! ← {"id":2,"status":"error","code":"unknown-workload","message":"..."}
//! ← {"id":3,"status":"retry","retry_after_ms":25}
//! ```
//!
//! Response lines are built by splicing a cached compact-JSON payload into
//! a fixed frame, so a cache hit and the original computation emit
//! **byte-identical** lines — the load generator's verify mode depends on
//! this.
//!
//! Error `code` strings are a wire contract (extend, never repurpose):
//! `bad-request` for lines this module rejects, `shutting-down` for work
//! refused mid-drain, and [`braid_sweep::SweepError::code`]'s codes
//! (`unknown-workload`, `livelock`, `deadline`, `translate`, ...) for
//! simulation failures.

use braid_core::{SamplingConfig, Tier};
use braid_sweep::grid::CoreModel;
use braid_sweep::json::{self, Json};

/// A parsed request, minus the `id` (returned alongside by
/// [`parse_request`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one workload on one core and return the full simulation report.
    Simulate {
        /// Workload name (synthetic suite or kernel).
        workload: String,
        /// Core model to run.
        core: CoreModel,
        /// Machine width (`0` = the model's 8-wide paper default).
        width: u32,
        /// Synthetic-suite scale (kernels ignore it).
        scale: f64,
        /// Perfect front end and caches.
        perfect: bool,
        /// Simulated-cycle deadline override (`0` = the server default).
        deadline: u64,
        /// Execution tier (`full`, `func`, or `sampled`; default `full`).
        tier: Tier,
        /// Sampling knobs for the `sampled` tier (`sample_period`,
        /// `sample_warmup`, `sample_len` on the wire; lockstep is always
        /// off in the daemon). Ignored by the other tiers.
        sampling: SamplingConfig,
    },
    /// Translate a workload into braids and return the Table 1–3 statistics.
    Translate {
        /// Workload name.
        workload: String,
        /// Synthetic-suite scale.
        scale: f64,
    },
    /// Translate a workload and run the static braid-contract checker.
    Check {
        /// Workload name.
        workload: String,
        /// Synthetic-suite scale.
        scale: f64,
    },
    /// Run one sweep grid point (the full axis set) and return its stats.
    SweepPoint {
        /// The grid point to run (its `index` is ignored).
        point: braid_sweep::GridPoint,
    },
    /// Record a workload's committed trace and replay it through a
    /// timing core, returning the cycle count and the trace's content
    /// digest (the braid-tracein path).
    Trace {
        /// Workload name.
        workload: String,
        /// Core model to replay on.
        core: CoreModel,
        /// Machine width (`0` = the model's 8-wide paper default).
        width: u32,
        /// Synthetic-suite scale (kernels and `ln_*` nests ignore it).
        scale: f64,
    },
    /// Return server statistics: cache counters, queue depths, latency
    /// histogram, aggregated CPI stack.
    Stats,
    /// Return the trace metrics document: request spans decomposed into
    /// lifetime phases, per-class latency histograms, structured-event
    /// counters, with cache/chaos/shed counters folded in.
    Metrics,
    /// Drain queued work and stop the daemon.
    Shutdown,
}

/// A request the protocol layer rejected, with the response fields to
/// report it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The request id if one could be recovered, else `0`.
    pub id: u64,
    /// Stable machine-readable code (`bad-request`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ProtocolError {
    fn new(id: u64, message: impl Into<String>) -> ProtocolError {
        ProtocolError { id, code: "bad-request", message: message.into() }
    }
}

fn opt_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_u32(obj: &Json, key: &str, default: u32) -> Result<u32, String> {
    let v = opt_u64(obj, key, u64::from(default))?;
    u32::try_from(v).map_err(|_| format!("`{key}` is out of range"))
}

fn opt_f64(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn opt_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn req_workload(obj: &Json) -> Result<String, String> {
    obj.get("workload")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "`workload` (string) is required".to_string())
}

fn opt_tier(obj: &Json) -> Result<Tier, String> {
    match obj.get("tier") {
        None => Ok(Tier::Full),
        Some(v) => {
            let name = v.as_str().ok_or("`tier` must be a string")?;
            Tier::parse(name).ok_or_else(|| format!("unknown tier `{name}`"))
        }
    }
}

/// Parses the sampling knobs, defaulting each to the library default.
/// Lockstep validation is forced off: it never changes results and the
/// daemon's payloads must not depend on the build profile.
fn opt_sampling(obj: &Json) -> Result<SamplingConfig, String> {
    let d = SamplingConfig::default();
    Ok(SamplingConfig {
        period: opt_u64(obj, "sample_period", d.period)?,
        warmup: opt_u64(obj, "sample_warmup", d.warmup)?,
        sample: opt_u64(obj, "sample_len", d.sample)?,
        lockstep: false,
    })
}

fn req_core(obj: &Json) -> Result<CoreModel, String> {
    let name = obj
        .get("core")
        .and_then(Json::as_str)
        .ok_or_else(|| "`core` (string) is required".to_string())?;
    CoreModel::parse(name).ok_or_else(|| format!("unknown core model `{name}`"))
}

/// A fully parsed request line: the id, the optional client-supplied
/// trace ID, and the request itself.
///
/// The `trace` field exists purely for observability — it names the
/// request's span in the trace log and is **never** part of a cache key
/// or a response line, so supplying one cannot perturb the service's
/// byte-determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRequest {
    /// The client-chosen request id (echoed in the response).
    pub id: u64,
    /// Client-supplied trace ID, when the line carried a `trace` field.
    pub trace: Option<String>,
    /// The request.
    pub request: Request,
}

/// Longest accepted client-supplied trace ID; anything longer is a
/// `bad-request`, bounding what a hostile client can pump into the span
/// log per request.
pub const MAX_TRACE_LEN: usize = 128;

/// Parses one request line into `(id, request)`, discarding any `trace`
/// field — the compatibility wrapper around [`parse_request_traced`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] (always code `bad-request`) for anything
/// that is not a JSON object with a numeric `id` and a recognized `kind`
/// with well-typed fields. The error carries the request's `id` when one
/// was readable so the reply still correlates.
pub fn parse_request(line: &str) -> Result<(u64, Request), ProtocolError> {
    parse_request_traced(line).map(|p| (p.id, p.request))
}

/// Parses one request line, including the optional `trace` field (a
/// string of at most [`MAX_TRACE_LEN`] bytes).
///
/// # Errors
///
/// Everything [`parse_request`] rejects, plus a `trace` field that is
/// not a string or exceeds the length bound.
pub fn parse_request_traced(line: &str) -> Result<ParsedRequest, ProtocolError> {
    let doc = json::parse(line).map_err(|e| ProtocolError::new(0, format!("not JSON: {e}")))?;
    let id = match doc.get("id") {
        Some(v) => v.as_u64().ok_or_else(|| ProtocolError::new(0, "`id` must be a non-negative integer"))?,
        None => return Err(ProtocolError::new(0, "`id` is required")),
    };
    let fail = |msg: String| ProtocolError::new(id, msg);
    let trace = match doc.get("trace") {
        None => None,
        Some(v) => {
            let t = v.as_str().ok_or_else(|| fail("`trace` must be a string".into()))?;
            if t.len() > MAX_TRACE_LEN {
                return Err(fail(format!("`trace` exceeds {MAX_TRACE_LEN} bytes")));
            }
            Some(t.to_string())
        }
    };
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("`kind` (string) is required".into()))?;
    let req = match kind {
        "simulate" => Request::Simulate {
            workload: req_workload(&doc).map_err(fail)?,
            core: req_core(&doc).map_err(fail)?,
            width: opt_u32(&doc, "width", 0).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
            perfect: opt_bool(&doc, "perfect", false).map_err(fail)?,
            deadline: opt_u64(&doc, "deadline", 0).map_err(fail)?,
            tier: opt_tier(&doc).map_err(fail)?,
            sampling: opt_sampling(&doc).map_err(fail)?,
        },
        "translate" => Request::Translate {
            workload: req_workload(&doc).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
        },
        "check" => Request::Check {
            workload: req_workload(&doc).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
        },
        "sweep-point" => Request::SweepPoint {
            point: braid_sweep::GridPoint {
                index: 0,
                workload: req_workload(&doc).map_err(fail)?,
                core: req_core(&doc).map_err(fail)?,
                width: opt_u32(&doc, "width", 0).map_err(fail)?,
                beus: opt_u32(&doc, "beus", 0).map_err(fail)?,
                fifo: opt_u32(&doc, "fifo", 0).map_err(fail)?,
                window: opt_u32(&doc, "window", 0).map_err(fail)?,
                bypass: opt_u32(&doc, "bypass", 0).map_err(fail)?,
                scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
                perfect: opt_bool(&doc, "perfect", false).map_err(fail)?,
                tier: opt_tier(&doc).map_err(fail)?,
            },
        },
        "trace" => Request::Trace {
            workload: req_workload(&doc).map_err(fail)?,
            core: req_core(&doc).map_err(fail)?,
            width: opt_u32(&doc, "width", 0).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => return Err(fail(format!("unknown kind `{other}`"))),
    };
    Ok(ParsedRequest { id, trace, request: req })
}

/// How early a request class is shed under overload. Lower water marks
/// shed first: the expensive simulation classes go long before the cheap
/// introspection ones, and `stats`/`shutdown` (handled inline, never
/// queued) cannot be shed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedClass {
    /// `simulate` and `sweep-point`: full timing simulations, shed first
    /// (at 3/4 queue occupancy).
    Heavy,
    /// `translate`: compiler-only, shed next (at 7/8 occupancy).
    Medium,
    /// `check`: static analysis, shed last (only when the queue is
    /// actually full).
    Light,
    /// `stats`/`metrics`/`shutdown`: answered inline by the reader,
    /// never shed.
    Inline,
}

impl ShedClass {
    /// Whether a request of this class is shed when `queued` jobs are
    /// waiting behind a queue bounded at `bound`. Deterministic in the
    /// observable queue state; the full queue (`try_submit` saturation)
    /// remains the backstop for every class.
    pub fn sheds(self, queued: usize, bound: usize) -> bool {
        let mark = match self {
            ShedClass::Heavy => (bound * 3).div_ceil(4),
            ShedClass::Medium => (bound * 7).div_ceil(8),
            ShedClass::Light | ShedClass::Inline => return false,
        };
        queued >= mark.max(1)
    }
}

impl Request {
    /// The request's wire kind, used for per-kind stats counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Simulate { .. } => "simulate",
            Request::Translate { .. } => "translate",
            Request::Check { .. } => "check",
            Request::SweepPoint { .. } => "sweep-point",
            Request::Trace { .. } => "trace",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// The request's load-shedding class (see [`ShedClass`]).
    pub fn shed_class(&self) -> ShedClass {
        match self {
            Request::Simulate { .. } | Request::SweepPoint { .. } | Request::Trace { .. } => {
                ShedClass::Heavy
            }
            Request::Translate { .. } => ShedClass::Medium,
            Request::Check { .. } => ShedClass::Light,
            Request::Stats | Request::Metrics | Request::Shutdown => ShedClass::Inline,
        }
    }
}

/// One bounded read from the wire (see [`read_bounded_line`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedLine {
    /// A complete line (without the newline), within the bound. Invalid
    /// UTF-8 is replaced lossily — the JSON parser then rejects it with a
    /// structured error rather than the connection dying.
    Line(String),
    /// The line exceeded the bound before a newline arrived. The caller
    /// should answer a structured error and close: the framing cannot be
    /// resynchronized.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-terminated line without ever buffering more than
/// `max` bytes — the slowloris defense: a client feeding an endless
/// unterminated line costs O(`max`) memory and one structured error, not
/// a wedged worker.
///
/// # Errors
///
/// Propagates transport I/O errors (including read timeouts) from the
/// underlying stream.
pub fn read_bounded_line(r: &mut impl std::io::BufRead, max: usize) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                BoundedLine::Eof
            } else {
                // EOF mid-line: surface what arrived; the parser will
                // reject a torn request with a structured error.
                BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                r.consume(pos + 1);
                return Ok(BoundedLine::TooLong);
            }
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        let n = chunk.len();
        if buf.len() + n > max {
            r.consume(n);
            return Ok(BoundedLine::TooLong);
        }
        buf.extend_from_slice(chunk);
        r.consume(n);
    }
}

/// Builds an `ok` response line by splicing a compact-JSON `result`
/// payload into the frame. The payload is exactly what the result cache
/// stores, so hits and misses emit byte-identical lines.
pub fn ok_line(id: u64, payload: &str) -> String {
    format!("{{\"id\":{id},\"status\":\"ok\",\"result\":{payload}}}")
}

/// Builds an `error` response line.
pub fn error_line(id: u64, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Int(id)),
        ("status".into(), Json::Str("error".into())),
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
    ])
    .compact()
}

/// Builds a `retry` (backpressure) response line: the request was not
/// queued; resend it after roughly `retry_after_ms`.
pub fn retry_line(id: u64, retry_after_ms: u64) -> String {
    format!("{{\"id\":{id},\"status\":\"retry\",\"retry_after_ms\":{retry_after_ms}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_round_trips_with_defaults() {
        let (id, req) =
            parse_request(r#"{"id":7,"kind":"simulate","workload":"dot_product","core":"braid"}"#)
                .unwrap();
        assert_eq!(id, 7);
        assert_eq!(
            req,
            Request::Simulate {
                workload: "dot_product".into(),
                core: CoreModel::Braid,
                width: 0,
                scale: 0.05,
                perfect: false,
                deadline: 0,
                tier: Tier::Full,
                sampling: SamplingConfig {
                    lockstep: false,
                    ..SamplingConfig::default()
                },
            }
        );
    }

    #[test]
    fn tier_and_sampling_knobs_parse() {
        let line = r#"{"id":2,"kind":"simulate","workload":"stencil","core":"ooo","tier":"sampled","sample_period":8192,"sample_warmup":256,"sample_len":1024}"#;
        let (_, req) = parse_request(line).unwrap();
        let Request::Simulate { tier, sampling, .. } = req else { panic!("wrong kind") };
        assert_eq!(tier, Tier::Sampled);
        assert_eq!(
            sampling,
            SamplingConfig { period: 8192, warmup: 256, sample: 1024, lockstep: false }
        );
        // Lockstep is never negotiable over the wire, whatever the build.
        let (_, req) =
            parse_request(r#"{"id":3,"kind":"simulate","workload":"x","core":"braid","tier":"func"}"#)
                .unwrap();
        let Request::Simulate { tier, sampling, .. } = req else { panic!("wrong kind") };
        assert_eq!(tier, Tier::Func);
        assert!(!sampling.lockstep);
        // An unknown tier is a bad request, not a silent default.
        let e = parse_request(r#"{"id":4,"kind":"simulate","workload":"x","core":"ooo","tier":"warp"}"#)
            .unwrap_err();
        assert!(e.message.contains("warp"));
    }

    #[test]
    fn sweep_point_accepts_a_tier() {
        let line = r#"{"id":5,"kind":"sweep-point","workload":"x","core":"braid","tier":"sampled"}"#;
        let (_, req) = parse_request(line).unwrap();
        let Request::SweepPoint { point } = req else { panic!("wrong kind") };
        assert_eq!(point.tier, Tier::Sampled);
        assert!(point.key().ends_with(":tsampled"), "tier rides the point key: {}", point.key());
    }

    #[test]
    fn sweep_point_carries_every_axis() {
        let line = r#"{"id":1,"kind":"sweep-point","workload":"x","core":"ooo","width":4,"fifo":16,"window":32,"bypass":2,"scale":0.02,"perfect":true}"#;
        let (_, req) = parse_request(line).unwrap();
        let Request::SweepPoint { point } = req else { panic!("wrong kind") };
        assert_eq!(point.key(), "x:ooo:w4:b0:f16:v32:y2");
        assert!(point.perfect);
    }

    #[test]
    fn bad_lines_keep_the_id_when_readable() {
        assert_eq!(parse_request("not json").unwrap_err().id, 0);
        assert_eq!(parse_request(r#"{"kind":"stats"}"#).unwrap_err().id, 0);
        let e = parse_request(r#"{"id":9,"kind":"warp"}"#).unwrap_err();
        assert_eq!((e.id, e.code), (9, "bad-request"));
        let e = parse_request(r#"{"id":3,"kind":"simulate","core":"braid"}"#).unwrap_err();
        assert!(e.message.contains("workload"));
        let e = parse_request(r#"{"id":4,"kind":"simulate","workload":"x","core":"vliw"}"#)
            .unwrap_err();
        assert!(e.message.contains("vliw"));
    }

    #[test]
    fn shed_classes_order_the_degradation() {
        let bound = 256;
        // Heavy sheds at 3/4, medium at 7/8, light and inline never (the
        // saturated queue is their backstop).
        assert!(!ShedClass::Heavy.sheds(191, bound));
        assert!(ShedClass::Heavy.sheds(192, bound));
        assert!(!ShedClass::Medium.sheds(223, bound));
        assert!(ShedClass::Medium.sheds(224, bound));
        assert!(!ShedClass::Light.sheds(bound, bound));
        assert!(!ShedClass::Inline.sheds(bound, bound));
        // Tiny bounds degenerate to shedding only at a non-empty queue.
        assert!(!ShedClass::Heavy.sheds(0, 1));
        assert!(ShedClass::Heavy.sheds(1, 1));
        // Class assignment.
        let (_, sim) = parse_request(
            r#"{"id":1,"kind":"simulate","workload":"x","core":"braid"}"#,
        )
        .unwrap();
        assert_eq!(sim.shed_class(), ShedClass::Heavy);
        let (_, tr) = parse_request(r#"{"id":1,"kind":"translate","workload":"x"}"#).unwrap();
        assert_eq!(tr.shed_class(), ShedClass::Medium);
        let (_, ck) = parse_request(r#"{"id":1,"kind":"check","workload":"x"}"#).unwrap();
        assert_eq!(ck.shed_class(), ShedClass::Light);
        let (_, st) = parse_request(r#"{"id":1,"kind":"stats"}"#).unwrap();
        assert_eq!(st.shed_class(), ShedClass::Inline);
    }

    #[test]
    fn bounded_reads_enforce_the_line_limit() {
        use std::io::Cursor;
        let mut ok = Cursor::new(b"{\"id\":1}\nrest".to_vec());
        assert_eq!(
            read_bounded_line(&mut ok, 64).unwrap(),
            BoundedLine::Line("{\"id\":1}".into())
        );
        let mut crlf = Cursor::new(b"abc\r\n".to_vec());
        assert_eq!(read_bounded_line(&mut crlf, 64).unwrap(), BoundedLine::Line("abc".into()));
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_bounded_line(&mut empty, 64).unwrap(), BoundedLine::Eof);
        let mut torn = Cursor::new(b"no newline at all".to_vec());
        assert_eq!(
            read_bounded_line(&mut torn, 64).unwrap(),
            BoundedLine::Line("no newline at all".into())
        );
        // An endless unterminated line trips the bound, buffering at most
        // `max` bytes.
        let mut slowloris = Cursor::new(vec![b'x'; 10_000]);
        assert_eq!(read_bounded_line(&mut slowloris, 64).unwrap(), BoundedLine::TooLong);
        // A too-long *terminated* line is also refused, and the stream
        // resynchronizes on the byte after its newline.
        let mut long = Cursor::new([vec![b'y'; 100], b"\nshort\n".to_vec()].concat());
        assert_eq!(read_bounded_line(&mut long, 64).unwrap(), BoundedLine::TooLong);
        assert_eq!(read_bounded_line(&mut long, 64).unwrap(), BoundedLine::Line("short".into()));
        // Non-UTF-8 bytes survive as a (lossy) line for the JSON parser
        // to reject — never a panic or a dropped connection.
        let mut binary = Cursor::new(vec![0xff, 0xfe, b'\n']);
        assert!(matches!(read_bounded_line(&mut binary, 64).unwrap(), BoundedLine::Line(_)));
    }

    #[test]
    fn trace_field_is_optional_validated_and_separated() {
        // Absent: no trace, same request as before.
        let p = parse_request_traced(r#"{"id":1,"kind":"stats"}"#).unwrap();
        assert_eq!((p.id, p.trace, p.request), (1, None, Request::Stats));
        // Present: carried out-of-band, never inside the Request (so it
        // cannot reach a cache key).
        let p = parse_request_traced(
            r#"{"id":2,"kind":"simulate","workload":"x","core":"braid","trace":"req-77"}"#,
        )
        .unwrap();
        assert_eq!(p.trace.as_deref(), Some("req-77"));
        let (_, bare) =
            parse_request(r#"{"id":2,"kind":"simulate","workload":"x","core":"braid","trace":"req-77"}"#)
                .unwrap();
        assert_eq!(bare, p.request, "trace does not change the parsed request");
        // Wrong type and oversized traces are bad requests.
        let e = parse_request_traced(r#"{"id":3,"kind":"stats","trace":9}"#).unwrap_err();
        assert!(e.message.contains("trace"));
        let long = format!(r#"{{"id":4,"kind":"stats","trace":"{}"}}"#, "x".repeat(200));
        let e = parse_request_traced(&long).unwrap_err();
        assert!(e.message.contains("exceeds"));
    }

    #[test]
    fn metrics_kind_parses_and_is_inline() {
        let (id, req) = parse_request(r#"{"id":6,"kind":"metrics"}"#).unwrap();
        assert_eq!((id, &req), (6, &Request::Metrics));
        assert_eq!(req.kind(), "metrics");
        assert_eq!(req.shed_class(), ShedClass::Inline, "metrics must survive overload");
    }

    #[test]
    fn response_lines_are_stable() {
        assert_eq!(ok_line(5, r#"{"cycles":10}"#), r#"{"id":5,"status":"ok","result":{"cycles":10}}"#);
        assert_eq!(
            error_line(6, "deadline", "too slow"),
            r#"{"id":6,"status":"error","code":"deadline","message":"too slow"}"#
        );
        assert_eq!(retry_line(8, 25), r#"{"id":8,"status":"retry","retry_after_ms":25}"#);
    }
}
