//! The JSON-lines wire protocol.
//!
//! One request object per line; every request carries a client-chosen
//! numeric `id` and a `kind`. Responses echo the `id` with a `status` of
//! `ok`, `error`, or `retry`:
//!
//! ```text
//! → {"id":1,"kind":"simulate","workload":"dot_product","core":"braid","width":8}
//! ← {"id":1,"status":"ok","result":{...}}
//! → {"id":2,"kind":"simulate","workload":"nonesuch","core":"ooo"}
//! ← {"id":2,"status":"error","code":"unknown-workload","message":"..."}
//! ← {"id":3,"status":"retry","retry_after_ms":25}
//! ```
//!
//! Response lines are built by splicing a cached compact-JSON payload into
//! a fixed frame, so a cache hit and the original computation emit
//! **byte-identical** lines — the load generator's verify mode depends on
//! this.
//!
//! Error `code` strings are a wire contract (extend, never repurpose):
//! `bad-request` for lines this module rejects, `shutting-down` for work
//! refused mid-drain, and [`braid_sweep::SweepError::code`]'s codes
//! (`unknown-workload`, `livelock`, `deadline`, `translate`, ...) for
//! simulation failures.

use braid_sweep::grid::CoreModel;
use braid_sweep::json::{self, Json};

/// A parsed request, minus the `id` (returned alongside by
/// [`parse_request`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one workload on one core and return the full simulation report.
    Simulate {
        /// Workload name (synthetic suite or kernel).
        workload: String,
        /// Core model to run.
        core: CoreModel,
        /// Machine width (`0` = the model's 8-wide paper default).
        width: u32,
        /// Synthetic-suite scale (kernels ignore it).
        scale: f64,
        /// Perfect front end and caches.
        perfect: bool,
        /// Simulated-cycle deadline override (`0` = the server default).
        deadline: u64,
    },
    /// Translate a workload into braids and return the Table 1–3 statistics.
    Translate {
        /// Workload name.
        workload: String,
        /// Synthetic-suite scale.
        scale: f64,
    },
    /// Translate a workload and run the static braid-contract checker.
    Check {
        /// Workload name.
        workload: String,
        /// Synthetic-suite scale.
        scale: f64,
    },
    /// Run one sweep grid point (the full axis set) and return its stats.
    SweepPoint {
        /// The grid point to run (its `index` is ignored).
        point: braid_sweep::GridPoint,
    },
    /// Return server statistics: cache counters, queue depths, latency
    /// histogram, aggregated CPI stack.
    Stats,
    /// Drain queued work and stop the daemon.
    Shutdown,
}

/// A request the protocol layer rejected, with the response fields to
/// report it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The request id if one could be recovered, else `0`.
    pub id: u64,
    /// Stable machine-readable code (`bad-request`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ProtocolError {
    fn new(id: u64, message: impl Into<String>) -> ProtocolError {
        ProtocolError { id, code: "bad-request", message: message.into() }
    }
}

fn opt_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_u32(obj: &Json, key: &str, default: u32) -> Result<u32, String> {
    let v = opt_u64(obj, key, u64::from(default))?;
    u32::try_from(v).map_err(|_| format!("`{key}` is out of range"))
}

fn opt_f64(obj: &Json, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn opt_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn req_workload(obj: &Json) -> Result<String, String> {
    obj.get("workload")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "`workload` (string) is required".to_string())
}

fn req_core(obj: &Json) -> Result<CoreModel, String> {
    let name = obj
        .get("core")
        .and_then(Json::as_str)
        .ok_or_else(|| "`core` (string) is required".to_string())?;
    CoreModel::parse(name).ok_or_else(|| format!("unknown core model `{name}`"))
}

/// Parses one request line into `(id, request)`.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (always code `bad-request`) for anything
/// that is not a JSON object with a numeric `id` and a recognized `kind`
/// with well-typed fields. The error carries the request's `id` when one
/// was readable so the reply still correlates.
pub fn parse_request(line: &str) -> Result<(u64, Request), ProtocolError> {
    let doc = json::parse(line).map_err(|e| ProtocolError::new(0, format!("not JSON: {e}")))?;
    let id = match doc.get("id") {
        Some(v) => v.as_u64().ok_or_else(|| ProtocolError::new(0, "`id` must be a non-negative integer"))?,
        None => return Err(ProtocolError::new(0, "`id` is required")),
    };
    let fail = |msg: String| ProtocolError::new(id, msg);
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("`kind` (string) is required".into()))?;
    let req = match kind {
        "simulate" => Request::Simulate {
            workload: req_workload(&doc).map_err(fail)?,
            core: req_core(&doc).map_err(fail)?,
            width: opt_u32(&doc, "width", 0).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
            perfect: opt_bool(&doc, "perfect", false).map_err(fail)?,
            deadline: opt_u64(&doc, "deadline", 0).map_err(fail)?,
        },
        "translate" => Request::Translate {
            workload: req_workload(&doc).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
        },
        "check" => Request::Check {
            workload: req_workload(&doc).map_err(fail)?,
            scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
        },
        "sweep-point" => Request::SweepPoint {
            point: braid_sweep::GridPoint {
                index: 0,
                workload: req_workload(&doc).map_err(fail)?,
                core: req_core(&doc).map_err(fail)?,
                width: opt_u32(&doc, "width", 0).map_err(fail)?,
                beus: opt_u32(&doc, "beus", 0).map_err(fail)?,
                fifo: opt_u32(&doc, "fifo", 0).map_err(fail)?,
                window: opt_u32(&doc, "window", 0).map_err(fail)?,
                bypass: opt_u32(&doc, "bypass", 0).map_err(fail)?,
                scale: opt_f64(&doc, "scale", 0.05).map_err(fail)?,
                perfect: opt_bool(&doc, "perfect", false).map_err(fail)?,
            },
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(fail(format!("unknown kind `{other}`"))),
    };
    Ok((id, req))
}

impl Request {
    /// The request's wire kind, used for per-kind stats counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Simulate { .. } => "simulate",
            Request::Translate { .. } => "translate",
            Request::Check { .. } => "check",
            Request::SweepPoint { .. } => "sweep-point",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Builds an `ok` response line by splicing a compact-JSON `result`
/// payload into the frame. The payload is exactly what the result cache
/// stores, so hits and misses emit byte-identical lines.
pub fn ok_line(id: u64, payload: &str) -> String {
    format!("{{\"id\":{id},\"status\":\"ok\",\"result\":{payload}}}")
}

/// Builds an `error` response line.
pub fn error_line(id: u64, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Int(id)),
        ("status".into(), Json::Str("error".into())),
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
    ])
    .compact()
}

/// Builds a `retry` (backpressure) response line: the request was not
/// queued; resend it after roughly `retry_after_ms`.
pub fn retry_line(id: u64, retry_after_ms: u64) -> String {
    format!("{{\"id\":{id},\"status\":\"retry\",\"retry_after_ms\":{retry_after_ms}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_round_trips_with_defaults() {
        let (id, req) =
            parse_request(r#"{"id":7,"kind":"simulate","workload":"dot_product","core":"braid"}"#)
                .unwrap();
        assert_eq!(id, 7);
        assert_eq!(
            req,
            Request::Simulate {
                workload: "dot_product".into(),
                core: CoreModel::Braid,
                width: 0,
                scale: 0.05,
                perfect: false,
                deadline: 0,
            }
        );
    }

    #[test]
    fn sweep_point_carries_every_axis() {
        let line = r#"{"id":1,"kind":"sweep-point","workload":"x","core":"ooo","width":4,"fifo":16,"window":32,"bypass":2,"scale":0.02,"perfect":true}"#;
        let (_, req) = parse_request(line).unwrap();
        let Request::SweepPoint { point } = req else { panic!("wrong kind") };
        assert_eq!(point.key(), "x:ooo:w4:b0:f16:v32:y2");
        assert!(point.perfect);
    }

    #[test]
    fn bad_lines_keep_the_id_when_readable() {
        assert_eq!(parse_request("not json").unwrap_err().id, 0);
        assert_eq!(parse_request(r#"{"kind":"stats"}"#).unwrap_err().id, 0);
        let e = parse_request(r#"{"id":9,"kind":"warp"}"#).unwrap_err();
        assert_eq!((e.id, e.code), (9, "bad-request"));
        let e = parse_request(r#"{"id":3,"kind":"simulate","core":"braid"}"#).unwrap_err();
        assert!(e.message.contains("workload"));
        let e = parse_request(r#"{"id":4,"kind":"simulate","workload":"x","core":"vliw"}"#)
            .unwrap_err();
        assert!(e.message.contains("vliw"));
    }

    #[test]
    fn response_lines_are_stable() {
        assert_eq!(ok_line(5, r#"{"cycles":10}"#), r#"{"id":5,"status":"ok","result":{"cycles":10}}"#);
        assert_eq!(
            error_line(6, "deadline", "too slow"),
            r#"{"id":6,"status":"error","code":"deadline","message":"too slow"}"#
        );
        assert_eq!(retry_line(8, 25), r#"{"id":8,"status":"retry","retry_after_ms":25}"#);
    }
}
