//! A resilient braid-serve client: retry, backoff, reconnect, replay.
//!
//! The protocol makes resilience cheap: every compute request is
//! **idempotent**, because the server addresses results by the content
//! digest of the request itself — replaying a request whose response was
//! lost (torn frame, dropped connection, panicked worker) re-hits the
//! same cache key and yields a byte-identical payload. [`Client`]
//! therefore recovers from every transport-level fault the same way:
//! sever the connection, back off, reconnect, resend the same line.
//!
//! Three mechanisms, all deterministic given the seed and the fault
//! sequence:
//!
//! - **Bounded exponential backoff with seeded jitter**: attempt `k`
//!   sleeps `min(cap, base·2^k)` milliseconds, scaled by a jitter factor
//!   in `[0.5, 1.0]` drawn from a seeded [`braid_prng::Rng`] — bounded
//!   pressure, no synchronized thundering herd, reproducible schedules.
//! - **`retry_after_ms` honored**: a backpressure response sleeps the
//!   server's hint or the current backoff, whichever is longer, and does
//!   not consume an attempt — backpressure is the server working as
//!   designed, not a fault.
//! - **Per-request wall-clock budget**: each request gets
//!   `request_timeout_ms` of real time across all attempts; the socket
//!   read timeout is re-armed to the remaining budget so a stalled
//!   server cannot absorb more than the budget either.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use braid_prng::Rng;
use braid_sweep::json::{self, Json};

/// Client configuration; [`ClientConfig::new`] supplies the defaults the
/// load generator and tests use.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, e.g. `127.0.0.1:4848`.
    pub addr: String,
    /// Wall-clock budget per request across all attempts, in
    /// milliseconds.
    pub request_timeout_ms: u64,
    /// Read-timeout cap per attempt, in milliseconds. A response that is
    /// simply *never coming* — a worker panicked, a stream wedged — must
    /// not absorb the whole request budget; capping the per-attempt wait
    /// leaves room to reconnect and replay within the budget.
    pub attempt_timeout_ms: u64,
    /// Maximum transport-fault attempts per request (backpressure
    /// retries are not counted).
    pub max_attempts: u32,
    /// First backoff step in milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl ClientConfig {
    /// Defaults: 10 s budget, 2 s per attempt, 16 attempts, 5 ms–250 ms
    /// backoff.
    pub fn new(addr: impl Into<String>, seed: u64) -> ClientConfig {
        ClientConfig {
            addr: addr.into(),
            request_timeout_ms: 10_000,
            attempt_timeout_ms: 2_000,
            max_attempts: 16,
            backoff_base_ms: 5,
            backoff_cap_ms: 250,
            seed,
        }
    }
}

/// Why a [`Client::request`] gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The request's wall-clock budget ran out before a terminal
    /// response arrived.
    TimedOut {
        /// Transport attempts made within the budget.
        attempts: u32,
    },
    /// Every allowed attempt failed; `last` describes the final failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last transport failure observed.
        last: String,
    },
    /// The request line itself was rejected locally (e.g. no id field) —
    /// replaying it could never succeed.
    BadRequest(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut { attempts } => {
                write!(f, "request timed out ({attempts} attempts)")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::BadRequest(m) => write!(f, "bad request line: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A synchronous client with automatic reconnect-and-replay. One request
/// is in flight at a time; the connection is established lazily and
/// replaced whenever the transport misbehaves.
pub struct Client {
    cfg: ClientConfig,
    conn: Option<Conn>,
    rng: Rng,
    /// Connections (re)established, including the first.
    pub connects: u64,
    /// Requests replayed after a transport fault.
    pub replays: u64,
    /// Backpressure (`retry`) responses absorbed.
    pub retries: u64,
}

impl Client {
    /// A client for `cfg.addr`; connects on first use.
    pub fn new(cfg: ClientConfig) -> Client {
        let rng = Rng::seed_from_u64(cfg.seed);
        Client { cfg, conn: None, rng, connects: 0, replays: 0, retries: 0 }
    }

    /// The backoff sleep for attempt `k` (0-based): `min(cap, base·2^k)`
    /// scaled by a seeded jitter factor in `[0.5, 1.0]`.
    fn backoff(&mut self, k: u32) -> Duration {
        let base = self.cfg.backoff_base_ms.max(1);
        let exp = base.saturating_mul(1u64 << k.min(20));
        let capped = exp.min(self.cfg.backoff_cap_ms.max(base));
        let jitter = 0.5 + self.rng.next_f64() / 2.0;
        Duration::from_millis(((capped as f64) * jitter).round() as u64)
    }

    /// The read timeout for one attempt: the remaining budget, capped by
    /// `attempt_timeout_ms`, floored at 10 ms.
    fn attempt_timeout(&self, remaining: Duration) -> Duration {
        remaining
            .min(Duration::from_millis(self.cfg.attempt_timeout_ms.max(1)))
            .max(Duration::from_millis(10))
    }

    fn connect(&mut self, remaining: Duration) -> io::Result<&mut Conn> {
        if self.conn.is_none() {
            let timeout = self.attempt_timeout(remaining);
            let stream = TcpStream::connect(&self.cfg.addr)?;
            stream.set_read_timeout(Some(timeout))?;
            self.connects += 1;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some(Conn { reader, writer: BufWriter::new(stream) });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One send/receive over the current connection. Any failure returns
    /// `Err` with a description; the caller severs and replays.
    fn attempt(&mut self, line: &str, remaining: Duration) -> Result<String, String> {
        let timeout = self.attempt_timeout(remaining);
        let conn = self.connect(remaining).map_err(|e| format!("connect: {e}"))?;
        conn.reader
            .get_ref()
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("arm timeout: {e}"))?;
        writeln!(conn.writer, "{line}")
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut resp = String::new();
        match conn.reader.read_line(&mut resp) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) if !resp.ends_with('\n') => {
                // A torn frame: bytes arrived but the line never
                // finished. The content cannot be trusted.
                Err("torn response frame".into())
            }
            Ok(_) => Ok(resp.trim_end().to_string()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Sends one request line and returns its terminal response line,
    /// absorbing backpressure and recovering from transport faults by
    /// reconnect-and-replay (safe: requests are idempotent under the
    /// server's content-addressed cache).
    ///
    /// # Errors
    ///
    /// [`ClientError::BadRequest`] for a line without a readable numeric
    /// `id` (the response could not be correlated);
    /// [`ClientError::TimedOut`] when the wall-clock budget lapses;
    /// [`ClientError::Exhausted`] when `max_attempts` transport attempts
    /// all failed.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let id = json::parse(line)
            .ok()
            .as_ref()
            .and_then(|d| d.get("id"))
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::BadRequest("no numeric `id` field".into()))?;
        let deadline = Instant::now() + Duration::from_millis(self.cfg.request_timeout_ms);
        let mut attempts = 0u32;
        let mut last = String::from("never attempted");
        while attempts < self.cfg.max_attempts {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return Err(ClientError::TimedOut { attempts });
            };
            if attempts > 0 {
                self.replays += 1;
            }
            attempts += 1;
            match self.attempt(line, remaining) {
                Ok(resp) => {
                    let doc = match json::parse(&resp) {
                        Ok(d) => d,
                        Err(e) => {
                            // Unparseable frame: framing is unreliable;
                            // sever and replay.
                            last = format!("bad response line: {e}");
                            self.conn = None;
                            let b = self.backoff(attempts - 1);
                            thread::sleep(b);
                            continue;
                        }
                    };
                    if doc.get("status").and_then(Json::as_str) == Some("retry") {
                        // Backpressure: not a fault, not an attempt. Honor
                        // the server's hint, floored by our own backoff.
                        self.retries += 1;
                        attempts -= 1;
                        let hint = doc
                            .get("retry_after_ms")
                            .and_then(Json::as_u64)
                            .unwrap_or(self.cfg.backoff_base_ms);
                        let b = self.backoff(attempts).max(Duration::from_millis(hint));
                        thread::sleep(b);
                        continue;
                    }
                    if doc.get("id").and_then(Json::as_u64) != Some(id) {
                        // A stale or misdelivered frame means the stream
                        // is desynchronized; the connection is unusable.
                        last = "response id mismatch".into();
                        self.conn = None;
                        let b = self.backoff(attempts - 1);
                        thread::sleep(b);
                        continue;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    last = e;
                    self.conn = None;
                    let b = self.backoff(attempts - 1);
                    thread::sleep(b);
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_with_seeded_jitter() {
        let mut a = Client::new(ClientConfig::new("unused", 7));
        let mut b = Client::new(ClientConfig::new("unused", 7));
        let seq_a: Vec<u64> = (0..12).map(|k| a.backoff(k).as_millis() as u64).collect();
        let seq_b: Vec<u64> = (0..12).map(|k| b.backoff(k).as_millis() as u64).collect();
        assert_eq!(seq_a, seq_b, "same seed, same jitter schedule");
        for (k, &ms) in seq_a.iter().enumerate() {
            let nominal = (5u64 << k).min(250);
            assert!(
                ms >= nominal / 2 && ms <= nominal,
                "attempt {k}: {ms}ms outside [{}..{}]",
                nominal / 2,
                nominal
            );
        }
        let mut c = Client::new(ClientConfig::new("unused", 8));
        let seq_c: Vec<u64> = (0..12).map(|k| c.backoff(k).as_millis() as u64).collect();
        assert_ne!(seq_a, seq_c, "different seed, different jitter");
    }

    #[test]
    fn unreachable_server_exhausts_cleanly() {
        // A port from the ephemeral range with nothing listening:
        // connecting fails fast, and the client reports exhaustion
        // rather than hanging or panicking.
        let mut c = Client::new(ClientConfig {
            request_timeout_ms: 2_000,
            max_attempts: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
            ..ClientConfig::new("127.0.0.1:1", 3)
        });
        match c.request(r#"{"id":1,"kind":"stats"}"#) {
            Err(ClientError::Exhausted { attempts: 2, .. }) | Err(ClientError::TimedOut { .. }) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn requests_without_an_id_are_rejected_locally() {
        let mut c = Client::new(ClientConfig::new("127.0.0.1:1", 0));
        assert!(matches!(c.request("not json"), Err(ClientError::BadRequest(_))));
        assert!(matches!(c.request(r#"{"kind":"stats"}"#), Err(ClientError::BadRequest(_))));
    }
}
