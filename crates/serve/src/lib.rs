//! # braid-serve: the deterministic simulation service
//!
//! A TCP daemon ([`Server`]) that runs braid simulations on behalf of
//! remote clients, and a deterministic load generator ([`loadgen`]) that
//! doubles as its correctness harness.
//!
//! The protocol is JSON lines ([`protocol`]): one request object per line
//! in, one response object per line out, matched by client-chosen `id`.
//! Requests dispatch onto the long-lived work-stealing pool
//! ([`braid_sweep::pool::JobPool`]), so a single daemon saturates every
//! core while each connection still receives its responses **in request
//! order** — a per-connection sequence number and a reorder buffer on the
//! writer side restore the order the pool destroys.
//!
//! Results are served from a content-addressed cache ([`cache`]): the key
//! digests the workload's container bytes, the core model, and every
//! config knob, so two requests for the same simulation — from any
//! connection, in any order — produce byte-identical response payloads
//! and the second one costs a hash lookup. Determinism is a *testable
//! property* here: `braid-loadgen --verify` replays the same request mix
//! on a single connection and asserts the responses are byte-identical to
//! the concurrent run's.
//!
//! Overload is explicit, never silent: a full job queue answers
//! `status:"retry"` with a `retry_after_ms` hint — shed **by request
//! class** so cheap introspection survives overload longer than heavy
//! simulation — a full connection table answers the same at accept time,
//! and `shutdown` drains queued work before the daemon exits ([`server`]
//! documents the exact semantics).
//!
//! The service is built to survive hostile reality, and to prove it:
//!
//! - the cache ([`cache`]) has an optional crash-safe disk tier — entries
//!   are framed with a length+digest footer, published by atomic rename,
//!   verified on every read, and quarantined when corrupt, so a `kill -9`
//!   mid-write can never serve bad bytes after restart;
//! - a deterministic chaos harness ([`chaos`]) injects torn writes,
//!   dropped connections, stalls, worker panics, disk corruption, and
//!   disk-full failures from a seeded schedule, so every recovery path is
//!   exercisable on demand;
//! - the bundled client ([`client`]) recovers from all of it with bounded
//!   seeded backoff and reconnect-and-replay, which is safe because
//!   content-addressed results make every compute request idempotent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::ResultCache;
pub use chaos::{Chaos, ChaosSpec};
pub use client::{Client, ClientConfig, ClientError};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenError, LoadgenReport};
pub use protocol::{parse_request, parse_request_traced, ParsedRequest, Request};
pub use server::{Server, ServerConfig};
pub use stats::ServeStats;
