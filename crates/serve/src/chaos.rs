//! Deterministic chaos: seeded fault injection at the service boundary.
//!
//! `braidd --chaos <spec>` arms this harness. Every fault decision is a
//! draw from one seeded [`braid_prng::Rng`] stream, so a fault campaign
//! is reproducible in the same sense as `braid_verify`'s core-layer
//! campaign: the *schedule* of draws is fixed by the seed, and which
//! request absorbs which fault depends only on arrival order. Faults
//! never touch computed payloads — they tear the delivery, kill the
//! worker, or rot the disk tier — so the service-level invariant under
//! test is exactly the paper's bargain restated for a daemon: in-order,
//! byte-identical per-connection semantics must survive out-of-order,
//! partially-failing execution. `braid-loadgen --verify` under a chaos
//! spec is the acceptance test.
//!
//! ## Fault classes
//!
//! | spec key  | injection point                | client-visible symptom        |
//! |-----------|--------------------------------|-------------------------------|
//! | `torn`    | writer, before a response line | partial frame, then EOF       |
//! | `drop`    | writer, before a response line | connection closed, no reply   |
//! | `stall`   | writer, before a response line | reply delayed by `stall_ms`   |
//! | `panic`   | worker, before execution       | reply never arrives           |
//! | `corrupt` | disk tier, at insert           | quarantine + recompute later  |
//! | `enospc`  | disk tier, at insert           | log-once demotion to RAM-only |
//!
//! Responses written inline by the reader (`stats`, `shutdown`, protocol
//! errors) are exempt: control traffic must stay reliable so a chaos
//! soak can still be driven and drained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use braid_prng::Rng;
use braid_sweep::json::Json;

use crate::cache::DiskFault;

/// Per-class injection probabilities and the schedule seed, parsed from
/// the `--chaos` spec string.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Probability of a torn (partial) response write, per response.
    pub torn: f64,
    /// Probability of dropping the connection before a response.
    pub drop: f64,
    /// Probability of stalling a response by `stall_ms`.
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a worker job panics before executing.
    pub panic: f64,
    /// Probability a disk-cache insert writes a corrupted entry.
    pub corrupt: f64,
    /// Probability a disk-cache insert fails with an ENOSPC-style error.
    pub enospc: f64,
}

impl Default for ChaosSpec {
    fn default() -> ChaosSpec {
        ChaosSpec {
            seed: 0,
            torn: 0.0,
            drop: 0.0,
            stall: 0.0,
            stall_ms: 10,
            panic: 0.0,
            corrupt: 0.0,
            enospc: 0.0,
        }
    }
}

impl ChaosSpec {
    /// Parses a spec string: comma-separated `key=value` pairs over the
    /// keys `seed`, `torn`, `drop`, `stall`, `stall_ms`, `panic`,
    /// `corrupt`, `enospc`. Probabilities must lie in `[0, 1]`; the
    /// write-fault probabilities (`torn + drop + stall`) must sum to at
    /// most 1 because they are drawn from one roll, as must the
    /// disk-fault pair (`corrupt + enospc`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, malformed
    /// values, or out-of-range probabilities.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = || -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("chaos `{key}` needs a number, got `{value}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos `{key}` must be in [0,1], got {p}"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("chaos `seed` needs an integer, got `{value}`"))?;
                }
                "stall_ms" => {
                    out.stall_ms = value
                        .parse()
                        .map_err(|_| format!("chaos `stall_ms` needs an integer, got `{value}`"))?;
                }
                "torn" => out.torn = prob()?,
                "drop" => out.drop = prob()?,
                "stall" => out.stall = prob()?,
                "panic" => out.panic = prob()?,
                "corrupt" => out.corrupt = prob()?,
                "enospc" => out.enospc = prob()?,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        if out.torn + out.drop + out.stall > 1.0 {
            return Err("chaos torn+drop+stall must sum to at most 1".into());
        }
        if out.corrupt + out.enospc > 1.0 {
            return Err("chaos corrupt+enospc must sum to at most 1".into());
        }
        Ok(out)
    }
}

/// A fault chosen for one response write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// Write only a prefix of the line (fraction `keep` of its bytes,
    /// exclusive of the full length), then sever the connection.
    Torn {
        /// Fraction of the line to emit before tearing, in `[0, 1)`.
        keep: f64,
    },
    /// Sever the connection without writing anything.
    Drop,
    /// Delay the write, then deliver normally.
    Stall(Duration),
}

/// Which counter an injected fault increments (order matches
/// [`Chaos::injected`]'s array and the `stats` rendering).
const CLASSES: [&str; 6] = ["torn", "drop", "stall", "panic", "corrupt", "enospc"];

/// The armed chaos harness: one seeded stream behind a mutex plus
/// per-class injection counters for the `stats` document.
pub struct Chaos {
    spec: ChaosSpec,
    rng: Mutex<Rng>,
    injected: [AtomicU64; 6],
}

impl Chaos {
    /// Arms a harness with `spec`'s probabilities and seed.
    pub fn new(spec: ChaosSpec) -> Chaos {
        Chaos {
            rng: Mutex::new(Rng::seed_from_u64(spec.seed)),
            spec,
            injected: Default::default(),
        }
    }

    /// The armed spec.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    fn count(&self, class: usize) {
        self.injected[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Decides the fate of one pooled response write: one roll across
    /// the mutually exclusive torn/drop/stall classes.
    pub fn write_fault(&self) -> Option<WriteFault> {
        let s = &self.spec;
        if s.torn + s.drop + s.stall == 0.0 {
            return None;
        }
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let r = rng.next_f64();
        if r < s.torn {
            let keep = rng.next_f64();
            drop(rng);
            self.count(0);
            Some(WriteFault::Torn { keep })
        } else if r < s.torn + s.drop {
            drop(rng);
            self.count(1);
            Some(WriteFault::Drop)
        } else if r < s.torn + s.drop + s.stall {
            drop(rng);
            self.count(2);
            Some(WriteFault::Stall(Duration::from_millis(s.stall_ms)))
        } else {
            None
        }
    }

    /// Whether this worker job should panic before executing.
    pub fn job_panic(&self) -> bool {
        if self.spec.panic == 0.0 {
            return false;
        }
        let hit = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gen_bool(self.spec.panic);
        if hit {
            self.count(3);
        }
        hit
    }

    /// Decides the fate of one disk-cache insert: one roll across the
    /// mutually exclusive corrupt/enospc classes.
    pub fn disk_fault(&self) -> Option<DiskFault> {
        let s = &self.spec;
        if s.corrupt + s.enospc == 0.0 {
            return None;
        }
        let r = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next_f64();
        if r < s.corrupt {
            self.count(4);
            Some(DiskFault::Corrupt)
        } else if r < s.corrupt + s.enospc {
            self.count(5);
            Some(DiskFault::WriteError)
        } else {
            None
        }
    }

    /// Renders the armed spec and per-class injection counts for the
    /// `stats` document.
    pub fn to_json(&self) -> Json {
        let injected = CLASSES
            .iter()
            .zip(&self.injected)
            .map(|(name, n)| ((*name).to_string(), Json::Int(n.load(Ordering::Relaxed))))
            .collect();
        Json::Obj(vec![
            ("seed".into(), Json::Int(self.spec.seed)),
            ("injected".into(), Json::Obj(injected)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_validates() {
        let s = ChaosSpec::parse("seed=9,torn=0.1,drop=0.2,stall=0.3,stall_ms=5,panic=0.4,corrupt=0.5,enospc=0.25")
            .expect("valid spec");
        assert_eq!(s.seed, 9);
        assert_eq!((s.torn, s.drop, s.stall, s.stall_ms), (0.1, 0.2, 0.3, 5));
        assert_eq!((s.panic, s.corrupt, s.enospc), (0.4, 0.5, 0.25));
        assert_eq!(ChaosSpec::parse(""), Ok(ChaosSpec::default()), "empty spec is all-off");
        assert!(ChaosSpec::parse("torn=1.5").is_err(), "probability out of range");
        assert!(ChaosSpec::parse("torn=0.6,drop=0.6").is_err(), "write classes oversubscribed");
        assert!(ChaosSpec::parse("corrupt=0.7,enospc=0.7").is_err(), "disk classes oversubscribed");
        assert!(ChaosSpec::parse("warp=0.1").is_err(), "unknown key");
        assert!(ChaosSpec::parse("torn").is_err(), "missing value");
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let draws = |seed| {
            let c = Chaos::new(ChaosSpec {
                torn: 0.2,
                drop: 0.2,
                stall: 0.2,
                seed,
                ..ChaosSpec::default()
            });
            (0..64).map(|_| c.write_fault()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same schedule");
        assert_ne!(draws(7), draws(8), "different seed, different schedule");
    }

    #[test]
    fn injection_counters_track_draws() {
        let c = Chaos::new(ChaosSpec { panic: 1.0, corrupt: 1.0, ..ChaosSpec::default() });
        assert!(c.job_panic());
        assert_eq!(c.disk_fault(), Some(DiskFault::Corrupt));
        assert_eq!(c.disk_fault(), Some(DiskFault::Corrupt));
        let doc = c.to_json();
        let injected = doc.get("injected").expect("injected");
        assert_eq!(injected.get("panic").and_then(Json::as_u64), Some(1));
        assert_eq!(injected.get("corrupt").and_then(Json::as_u64), Some(2));
        assert_eq!(injected.get("torn").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn all_off_spec_never_injects() {
        let c = Chaos::new(ChaosSpec::default());
        for _ in 0..256 {
            assert_eq!(c.write_fault(), None);
            assert!(!c.job_panic());
            assert_eq!(c.disk_fault(), None);
        }
    }
}
