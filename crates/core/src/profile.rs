//! Dynamic value characterization (paper §1).
//!
//! The paper motivates braids with two dynamic properties of register
//! values in SPEC CPU2000: **fanout** (over 70% of values are read exactly
//! once, ~90% at most twice, ~4% never) and **lifetime** (about 80% of
//! values are fully consumed within 32 dynamic instructions of their
//! producer). This module measures both over a committed trace.

use braid_isa::Program;
use braid_uarch::stats::Histogram;

use crate::trace::Trace;

/// Dynamic value fanout and lifetime distributions.
#[derive(Debug, Clone, Default)]
pub struct ValueProfile {
    /// Reads per produced value (dynamic).
    pub fanout: Histogram,
    /// Dynamic instructions from producer to *last* consumer.
    pub lifetime: Histogram,
}

impl ValueProfile {
    /// Profiles every register value produced in `trace`.
    pub fn measure(program: &Program, trace: &Trace) -> ValueProfile {
        // For each architectural register: (producer position, reads so
        // far, last read position).
        let mut live: [Option<(u64, u64, u64)>; 64] = [None; 64];
        let mut profile = ValueProfile::default();
        let close = |entry: Option<(u64, u64, u64)>, profile: &mut ValueProfile| {
            if let Some((born, reads, last_read)) = entry {
                profile.fanout.record(reads);
                if reads > 0 {
                    profile.lifetime.record(last_read - born);
                }
            }
        };
        for (pos, e) in trace.entries.iter().enumerate() {
            let pos = pos as u64;
            let inst = &program.insts[e.idx as usize];
            for r in inst.read_regs() {
                if r.is_zero() {
                    continue;
                }
                if let Some(v) = live[r.index() as usize].as_mut() {
                    v.1 += 1;
                    v.2 = pos;
                }
            }
            if let Some(d) = inst.written_reg() {
                if !d.is_zero() {
                    close(live[d.index() as usize].take(), &mut profile);
                    live[d.index() as usize] = Some((pos, 0, pos));
                }
            }
        }
        for v in live {
            close(v, &mut profile);
        }
        profile
    }

    /// Fraction of values read exactly once (the paper: >70%).
    pub fn read_once(&self) -> f64 {
        if self.fanout.total() == 0 {
            return 0.0;
        }
        self.fanout.count_of(1) as f64 / self.fanout.total() as f64
    }

    /// Fraction of values read at most twice (the paper: ~90%).
    pub fn read_at_most_twice(&self) -> f64 {
        self.fanout.cdf_at(2) - self.dead()
    }

    /// Fraction of values produced but never read (the paper: ~4%).
    pub fn dead(&self) -> f64 {
        if self.fanout.total() == 0 {
            return 0.0;
        }
        self.fanout.count_of(0) as f64 / self.fanout.total() as f64
    }

    /// Fraction of consumed values whose lifetime is at most `n` dynamic
    /// instructions (the paper: ~80% within 32).
    pub fn lifetime_within(&self, n: u64) -> f64 {
        self.lifetime.cdf_at(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;

    fn profile_of(src: &str) -> ValueProfile {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 100_000).unwrap();
        ValueProfile::measure(&p, &t)
    }

    #[test]
    fn single_use_chain() {
        let pr = profile_of(
            "addi r0, #1, r1\naddq r1, r1, r2\naddq r2, r2, r3\nhalt",
        );
        // r1 read twice (by one inst), r2 read twice, r3 dead.
        assert_eq!(pr.fanout.count_of(2), 2);
        assert_eq!(pr.fanout.count_of(0), 1);
        assert!(pr.dead() > 0.3);
    }

    #[test]
    fn short_lifetimes_in_tight_loop() {
        let pr = profile_of(
            r#"
                addi r0, #100, r1
            loop:
                addq r2, r1, r3
                addq r3, r1, r4
                stq  r4, 0(r9)
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        assert!(pr.lifetime_within(32) > 0.9, "tight loop values die fast");
        assert!(pr.read_once() > 0.3, "read-once fraction {}", pr.read_once());
    }

    #[test]
    fn redefinition_closes_values() {
        let pr = profile_of("addi r0, #1, r1\naddi r0, #2, r1\naddq r1, r1, r2\nhalt");
        // First r1 is dead (redefined unread), second read twice.
        assert_eq!(pr.fanout.count_of(0), 2, "first r1 and r2");
        assert_eq!(pr.fanout.count_of(2), 1);
    }
}
