//! The conventional out-of-order core (paper Table 4, middle block).
//!
//! 8-wide allocate/rename into 8 distributed 32-entry out-of-order
//! schedulers, each feeding one general-purpose functional unit; a 256-entry
//! in-flight register buffer (16R/8W) freed at retirement; a 3-level bypass
//! network moving 8 values per cycle; minimum 23-cycle misprediction
//! penalty.

use braid_isa::Program;
use braid_uarch::cache::MemoryHierarchy;

use crate::config::OooConfig;
use crate::cores::common::{Bandwidth, Engine, RegPool};
use crate::error::SimError;
use crate::obs::{NoopObserver, Observer};
use crate::report::SimReport;
use crate::trace::Trace;

/// The out-of-order timing model.
#[derive(Debug, Clone)]
pub struct OooCore {
    config: OooConfig,
}

impl OooCore {
    /// Creates the core with `config`.
    pub fn new(config: OooConfig) -> OooCore {
        OooCore { config }
    }

    /// Simulates `trace` of `program`, returning the run statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for an impossible machine description,
    /// [`SimError::Livelock`] (with a scheduler dump) if the pipeline
    /// stops retiring.
    pub fn run(&self, program: &Program, trace: &Trace) -> Result<SimReport, SimError> {
        self.run_observed(program, trace, &mut NoopObserver)
    }

    /// Like [`OooCore::run`], sending pipeline events to `obs`. The core
    /// monomorphizes over the observer, so the
    /// [`NoopObserver`]-instantiated path is identical to [`OooCore::run`].
    ///
    /// # Errors
    ///
    /// As for [`OooCore::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, obs, None)
    }

    /// Like [`OooCore::run`], but starting from a pre-warmed memory
    /// hierarchy instead of cold caches. Used by sampled simulation, where
    /// functional warming supplies the cache state a continuous run would
    /// have at the window start.
    ///
    /// # Errors
    ///
    /// As for [`OooCore::run`].
    pub fn run_warmed(
        &self,
        program: &Program,
        trace: &Trace,
        mem: MemoryHierarchy,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, &mut NoopObserver, Some(mem))
    }

    fn run_inner<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
        warm: Option<MemoryHierarchy>,
    ) -> Result<SimReport, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let mut eng = Engine::new(program, trace, &cfg.common, obs);
        if let Some(mem) = warm {
            eng.mem = mem;
        }
        let mut scheds: Vec<Vec<u64>> = vec![Vec::new(); cfg.schedulers as usize];
        let mut regs = RegPool::new(cfg.regs);
        let mut bypass = Bandwidth::new(cfg.bypass_per_cycle);
        let mut wr_ports = Bandwidth::new(cfg.rf_write_ports);
        // Per-cycle scratch, reused across iterations (no allocation on the
        // cycle loop).
        let mut ready: Vec<(u64, usize, usize)> = Vec::new();
        let mut issued: Vec<(usize, usize)> = Vec::new();

        while !eng.finished() {
            // Retire: free the in-flight register buffer entry.
            let cyc = eng.cycle;
            eng.retire_phase(|eng, seq| {
                let slot = eng.slots[seq as usize].tag2;
                if slot != u32::MAX {
                    regs.release(slot, cyc);
                }
            });

            // Select/issue: oldest-ready-first across the distributed
            // scheduler windows, bounded by the functional units and the
            // register-file read ports (an aggressive global select, as the
            // paper's "very aggressive conventional" machine warrants).
            ready.clear();
            for (s, q) in scheds.iter().enumerate() {
                for (i, &seq) in q.iter().enumerate() {
                    if eng.deps_ready(seq) {
                        ready.push((seq, s, i));
                    }
                }
            }
            ready.sort_unstable();
            let mut reads_left = cfg.rf_read_ports;
            let mut fus_left = cfg.fus;
            issued.clear();
            for &(seq, s, i) in &ready {
                if fus_left == 0 {
                    break;
                }
                let srcs = eng.op(seq).num_srcs as u32;
                if srcs > reads_left {
                    continue;
                }
                let ok = eng.issue(seq, |_, complete| {
                    if bypass.try_reserve(complete) {
                        complete
                    } else {
                        wr_ports.reserve_first_free(complete) + 2
                    }
                });
                if ok {
                    reads_left -= srcs;
                    fus_left -= 1;
                    issued.push((s, i));
                }
            }
            // Remove issued entries, highest position first per scheduler.
            issued.sort_unstable_by(|a, b| b.cmp(a));
            for &(s, i) in &issued {
                scheds[s].remove(i);
            }

            // Dispatch up to `width` instructions into the least-occupied
            // schedulers, allocating register-buffer entries.
            let mut dispatched = 0;
            while dispatched < cfg.common.width {
                let Some(f) = eng.queue.front().copied() else { break };
                if !eng.admit(&f) {
                    break;
                }
                let has_dest = eng.program.insts[f.idx as usize].written_reg().is_some();
                let reg_slot = if has_dest {
                    match regs.try_alloc(eng.cycle) {
                        Some(s) => s,
                        None => {
                            eng.report.stall_regs += 1;
                            break;
                        }
                    }
                } else {
                    u32::MAX
                };
                // Config validation guarantees at least one scheduler.
                let (sched, len) = scheds
                    .iter()
                    .enumerate()
                    .map(|(i, q)| (i, q.len()))
                    .min_by_key(|&(_, l)| l)
                    .unwrap_or((0, usize::MAX));
                if len >= cfg.sched_entries as usize {
                    if reg_slot != u32::MAX {
                        regs.release(reg_slot, eng.cycle);
                    }
                    eng.report.stall_window += 1;
                    break;
                }
                eng.queue.pop_front();
                let seq = eng.dispatch_slot(&f, sched as u32);
                eng.slots[seq as usize].tag2 = reg_slot;
                scheds[sched].push(seq);
                dispatched += 1;
            }

            eng.fetch_phase();
            bypass.gc(eng.cycle.saturating_sub(64));
            wr_ports.gc(eng.cycle.saturating_sub(64));
            if O::ENABLED {
                for (s, q) in scheds.iter().enumerate() {
                    eng.obs.unit_occupancy(s as u32, q.len() as u32);
                }
            }
            if !eng.advance() {
                let dump: Vec<String> = scheds
                    .iter()
                    .enumerate()
                    .map(|(s, q)| eng.describe_queue(&format!("sched{s}"), &mut q.iter().copied()))
                    .collect();
                return Err(eng.livelock("ooo", dump));
            }
        }
        // A conventional checkpoint saves the full architectural register
        // map (64 registers).
        Ok(eng.finish(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommonConfig;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;

    fn trace_of(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 1_000_000).unwrap();
        (p, t)
    }

    fn perfect_config() -> OooConfig {
        let mut c = OooConfig::paper_8wide();
        c.common = CommonConfig::paper_8wide().perfect();
        c
    }

    #[test]
    fn retires_every_instruction() {
        let (p, t) = trace_of(
            "addi r0, #20, r1\nloop: subi r1, #1, r1\naddq r2, r1, r2\nbne r1, loop\nhalt",
        );
        let r = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
        assert!(r.ipc() > 0.5, "ipc {}", r.ipc());
    }

    #[test]
    fn zero_read_ports_trip_the_watchdog() {
        let (p, t) = trace_of(
            "addi r0, #20, r1\nloop: subi r1, #1, r1\naddq r2, r1, r2\nbne r1, loop\nhalt",
        );
        let mut starved = perfect_config();
        starved.rf_read_ports = 0;
        starved.common.watchdog_cycles = 500;
        match OooCore::new(starved).run(&p, &t) {
            Err(SimError::Livelock(report)) => {
                assert_eq!(report.core, "ooo");
                assert!(report.cycle >= 500);
                assert!(!report.queues.is_empty(), "dump must list the schedulers");
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn impossible_config_is_rejected() {
        let (p, t) = trace_of("halt");
        let mut bad = perfect_config();
        bad.schedulers = 0;
        assert!(matches!(OooCore::new(bad).run(&p, &t), Err(SimError::Config(_))));
    }

    #[test]
    fn independent_work_reaches_high_ipc() {
        // 8 independent chains: should sustain several instructions per
        // cycle on the 8-wide machine.
        let mut src = String::new();
        src.push_str("addi r0, #200, r1\nloop:\n");
        for i in 2..10 {
            src.push_str(&format!("addi r{i}, #1, r{i}\n"));
        }
        src.push_str("subi r1, #1, r1\nbne r1, loop\nhalt");
        let (p, t) = trace_of(&src);
        let r = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r.ipc() > 3.0, "ipc {}", r.ipc());
    }

    #[test]
    fn dependent_chain_limits_ipc() {
        let (p, t) = trace_of(
            "addi r0, #500, r1\nloop: addq r2, r2, r2\nsubi r1, #1, r1\nbne r1, loop\nhalt",
        );
        let r = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        // The r2 chain serializes one addq per cycle; with the subi and bne
        // in parallel IPC can approach 3 but not exceed it by much.
        assert!(r.ipc() <= 3.2, "ipc {}", r.ipc());
    }

    #[test]
    fn fewer_registers_hurt() {
        let mut src = String::from("addi r0, #300, r1\nouter:\n");
        // A long-latency chain that keeps many values in flight.
        for i in 2..18 {
            src.push_str(&format!("mulq r{i}, r1, r{i}\n"));
        }
        src.push_str("subi r1, #1, r1\nbne r1, outer\nhalt");
        let (p, t) = trace_of(&src);
        let big = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        let mut small_cfg = perfect_config();
        small_cfg.regs = 8;
        let small = OooCore::new(small_cfg).run(&p, &t).expect("runs");
        assert!(
            small.ipc() < big.ipc() * 0.8,
            "8 regs {} vs 256 regs {}",
            small.ipc(),
            big.ipc()
        );
        assert!(small.stall_regs > 0);
    }

    #[test]
    fn store_load_forwarding_works() {
        let (p, t) = trace_of(
            r#"
                addi r0, #0x1000, r9
                addi r0, #100, r1
            loop:
                stq  r1, 0(r9)
                ldq  r2, 0(r9)
                addq r2, r2, r3
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let r = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        // Most iterations forward; a few loads issue after their store
        // retired and read the cache instead.
        assert!(r.forwarded_loads >= 50, "forwards: {}", r.forwarded_loads);
    }

    #[test]
    fn cache_misses_show_up_in_cycles() {
        // Walk 64KiB of data twice: cold misses dominate the first pass.
        let (p, t) = trace_of(
            r#"
                addi r0, #0, r1
                addi r0, #2048, r2
            loop:
                slli r2, #5, r3
                ldq  r4, 0(r3)
                addq r5, r4, r5
                subi r2, #1, r2
                bne  r2, loop
                halt
            "#,
        );
        let mut real = perfect_config();
        real.common.mem = braid_uarch::cache::MemoryHierarchyConfig::default();
        let with_misses = OooCore::new(real).run(&p, &t).expect("runs");
        let perfect = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(with_misses.cycles > perfect.cycles * 2);
        assert!(with_misses.l1d.misses() > 1000);
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // A data-dependent unpredictable-ish branch pattern via xorshift.
        let (p, t) = trace_of(
            r#"
                addi r0, #1, r7
                addi r0, #500, r1
            loop:
                slli r7, #13, r3
                xor  r7, r3, r7
                srli r7, #7, r3
                xor  r7, r3, r7
                andi r7, #1, r4
                beq  r4, skip
                addi r5, #1, r5
            skip:
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let mut real_bp = perfect_config();
        real_bp.common.perfect_branch_predictor = false;
        let r1 = OooCore::new(real_bp).run(&p, &t).expect("runs");
        let r2 = OooCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r1.branch_accuracy.misses() > 20, "{}", r1.branch_accuracy);
        assert!(r1.cycles > r2.cycles, "mispredicts must cost time");
        assert!(r1.mispredict_stall_cycles > 0);
    }
}
