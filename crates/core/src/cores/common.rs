//! Machinery shared by all execution-core models.

use std::collections::{HashMap, VecDeque};

use braid_isa::{Inst, Program};
use braid_uarch::cache::{Access, MemoryHierarchy};
use braid_uarch::lsq::{LoadStoreQueue, LsqOutcome};

use crate::config::CommonConfig;
use crate::error::{LivelockReport, SimError};
use crate::frontend::{FetchGap, Fetched, Frontend};
use crate::obs::{NoopObserver, Observer, StallCause};
use crate::predecode::{DecodedOp, PreDecoded, NO_REG};
use crate::report::SimReport;
use crate::trace::Trace;

/// Default for [`CommonConfig::watchdog_cycles`]: the longest legitimate
/// retirement gap is a few hundred cycles (a memory-latency chain plus a
/// misprediction repair), so twenty thousand quiet cycles mean livelock.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 20_000;

/// Sentinel for "no producer / not yet known".
pub const NONE: u64 = u64::MAX;

/// Per-dynamic-instruction timing state.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// Static instruction index.
    pub idx: u32,
    /// Effective address for memory operations.
    pub addr: u64,
    /// Whether fetch mispredicted this control transfer.
    pub mispredicted: bool,
    /// Producer sequence numbers (sources + implicit cmov read).
    pub deps: [u64; 3],
    /// Cycle the result becomes visible to consumers ([`NONE`] until known).
    pub avail_at: u64,
    /// Cycle the instruction may retire ([`NONE`] until known).
    pub done_at: u64,
    /// Pipeline state flags.
    pub dispatched: bool,
    /// The instruction has left its scheduler/FIFO.
    pub issued: bool,
    /// Core-specific tag (external register slot, BEU id, FIFO id, ...).
    pub tag: u32,
    /// Second core-specific tag (register-buffer slot, ...).
    pub tag2: u32,
}

impl Default for Slot {
    fn default() -> Slot {
        Slot {
            idx: 0,
            addr: 0,
            mispredicted: false,
            deps: [NONE; 3],
            avail_at: NONE,
            done_at: NONE,
            dispatched: false,
            issued: false,
            tag: u32::MAX,
            tag2: u32::MAX,
        }
    }
}

/// Per-cycle bandwidth with reservations into the future (bypass slots,
/// register-file ports).
#[derive(Debug, Clone)]
pub struct Bandwidth {
    per_cycle: u32,
    used: HashMap<u64, u32>,
}

impl Bandwidth {
    /// Creates a resource offering `per_cycle` grants each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(per_cycle: u32) -> Bandwidth {
        assert!(per_cycle > 0, "bandwidth must be positive");
        Bandwidth { per_cycle, used: HashMap::new() }
    }

    /// Reserves one grant in exactly `cycle`; `false` when saturated.
    pub fn try_reserve(&mut self, cycle: u64) -> bool {
        let u = self.used.entry(cycle).or_insert(0);
        if *u < self.per_cycle {
            *u += 1;
            true
        } else {
            false
        }
    }

    /// Reserves a grant in the first cycle `>= from` with capacity.
    pub fn reserve_first_free(&mut self, from: u64) -> u64 {
        let mut c = from;
        while !self.try_reserve(c) {
            c += 1;
        }
        c
    }

    /// Drops bookkeeping for cycles before `before`.
    pub fn gc(&mut self, before: u64) {
        if self.used.len() > 4096 {
            self.used.retain(|&c, _| c >= before);
        }
    }
}

/// A pool of value-buffer entries (the OOO in-flight registers, the braid
/// external register file) with per-entry release times.
#[derive(Debug, Clone)]
pub struct RegPool {
    /// Cycle at which each slot frees (`0` = free now).
    slots: Vec<u64>,
}

impl RegPool {
    /// Creates a pool of `n` entries, all free.
    pub fn new(n: u32) -> RegPool {
        RegPool { slots: vec![0; n as usize] }
    }

    /// Takes a free slot at `cycle`, holding it until released.
    pub fn try_alloc(&mut self, cycle: u64) -> Option<u32> {
        let i = self.slots.iter().position(|&t| t <= cycle)?;
        self.slots[i] = NONE;
        Some(i as u32)
    }

    /// Marks `slot` free from `cycle` on.
    pub fn release(&mut self, slot: u32, cycle: u64) {
        self.slots[slot as usize] = cycle;
    }

    /// Books the earliest available slot at or after `from`, holding it for
    /// `hold` cycles; returns the cycle at which the slot was granted.
    /// An empty pool (rejected by config validation) grants immediately.
    pub fn alloc_earliest(&mut self, from: u64, hold: u64) -> u64 {
        let Some((i, &free_at)) = self.slots.iter().enumerate().min_by_key(|&(_, &t)| t) else {
            return from;
        };
        let start = from.max(free_at);
        self.slots[i] = start + hold;
        start
    }
}

/// What the memory system says about a load that wants to issue.
pub enum LoadGate {
    /// May access the cache.
    Go,
    /// Value forwarded from a store; no cache access.
    Forward,
    /// Blocked behind an older store.
    Wait,
}

/// Snapshot of the stall-event counters at the last time step, so the CPI
/// attribution can tell which stalls happened *this* cycle.
#[derive(Debug, Clone, Copy, Default)]
struct StallMark {
    window: u64,
    regs: u64,
    lsq: u64,
    alloc_bw: u64,
    lsq_wait: u64,
}

/// The common simulation frame: front end, memory system, in-flight window
/// and retirement. Each core drives this with its own dispatch/issue logic.
///
/// Generic over an [`Observer`]: the default [`NoopObserver`] monomorphizes
/// every event hook away, so uninstrumented runs pay nothing.
pub struct Engine<'a, O: Observer = NoopObserver> {
    /// The simulated program.
    pub program: &'a Program,
    /// Predecoded static instructions (the hot-path instruction cache,
    /// keyed by static index — see [`crate::predecode`]).
    pub code: PreDecoded,
    /// The committed dynamic trace.
    pub trace: &'a Trace,
    /// Fetch engine.
    pub frontend: Frontend<'a>,
    /// Cache hierarchy.
    pub mem: MemoryHierarchy,
    /// Load-store queue.
    pub lsq: LoadStoreQueue,
    /// Per-sequence timing slots (indexed by sequence number).
    pub slots: Vec<Slot>,
    /// Oldest unretired sequence number.
    pub head: u64,
    /// Next sequence number to dispatch.
    pub next_dispatch: u64,
    /// Decoupling buffer between fetch and dispatch.
    pub queue: VecDeque<Fetched>,
    /// Current cycle.
    pub cycle: u64,
    /// Whether any pipeline event happened this cycle.
    pub progress: bool,
    /// Aggregated statistics.
    pub report: SimReport,
    /// Maximum in-flight instructions.
    pub window: usize,
    /// Machine width.
    pub width: u32,
    /// Register writer table for dependence construction.
    last_writer: [u64; 64],
    /// Values produced with an external destination (report statistic).
    pub external_values: u64,
    /// Stores that issued address generation but whose data producer had
    /// not yet computed its availability time.
    pending_stores: Vec<u64>,
    /// During checkpoint replay, sequence numbers below this were already
    /// dispatched once: their dependence links are reused and the writer
    /// table is not touched.
    replay_until: u64,
    /// Cycle of the most recent retirement, watched by [`Engine::advance`].
    last_retire_cycle: u64,
    /// No-retire-progress threshold before the run aborts as livelocked.
    watchdog_cycles: u64,
    /// Simulated-cycle budget before the run aborts with
    /// [`SimError::Deadline`] (`0` = unlimited).
    deadline_cycles: u64,
    /// Reusable fetch output buffer (no per-cycle allocation).
    fetch_scratch: Vec<Fetched>,
    /// Host wall-clock at construction, for throughput counters.
    started: std::time::Instant,
    /// Pipeline event sink (see [`crate::obs`]).
    pub obs: &'a mut O,
    /// Whether [`Engine::retire_phase`] retired anything this cycle (CPI
    /// attribution; cleared by [`Engine::advance`]).
    retired_this_cycle: bool,
    /// Stall counters as of the previous time step (CPI attribution).
    stall_mark: StallMark,
}

impl<'a, O: Observer> Engine<'a, O> {
    /// Builds the frame for `trace` of `program` under `config`, sending
    /// pipeline events to `obs`.
    pub fn new(
        program: &'a Program,
        trace: &'a Trace,
        config: &CommonConfig,
        obs: &'a mut O,
    ) -> Engine<'a, O> {
        Engine {
            program,
            code: PreDecoded::new(program),
            trace,
            frontend: Frontend::new(program, trace, config),
            mem: MemoryHierarchy::new(config.mem),
            lsq: {
                let mut lsq = LoadStoreQueue::new(config.lsq_entries);
                lsq.set_conservative(config.conservative_disambiguation);
                lsq
            },
            slots: vec![Slot::default(); trace.len()],
            head: 0,
            next_dispatch: 0,
            queue: VecDeque::new(),
            cycle: 0,
            progress: false,
            report: SimReport::default(),
            window: config.window,
            width: config.width,
            last_writer: [NONE; 64],
            external_values: 0,
            pending_stores: Vec::new(),
            replay_until: 0,
            last_retire_cycle: 0,
            watchdog_cycles: if config.watchdog_cycles == 0 {
                DEFAULT_WATCHDOG_CYCLES
            } else {
                config.watchdog_cycles
            },
            deadline_cycles: config.deadline_cycles,
            fetch_scratch: Vec::with_capacity(4 * config.width as usize),
            started: std::time::Instant::now(),
            obs,
            retired_this_cycle: false,
            stall_mark: StallMark::default(),
        }
    }

    /// The static instruction behind sequence number `seq`.
    pub fn inst(&self, seq: u64) -> &'a Inst {
        &self.program.insts[self.slots[seq as usize].idx as usize]
    }

    /// The predecoded form of the instruction behind sequence number `seq`
    /// (the hot-path alternative to [`Engine::inst`]).
    #[inline]
    pub fn op(&self, seq: u64) -> &DecodedOp {
        self.code.op(self.slots[seq as usize].idx)
    }

    /// Instructions currently in flight.
    pub fn in_flight(&self) -> usize {
        (self.next_dispatch - self.head) as usize
    }

    /// Whether the whole trace has retired.
    pub fn finished(&self) -> bool {
        self.head as usize >= self.trace.len()
    }

    /// Fills the decoupling buffer from the front end, reusing the
    /// engine-owned scratch buffer (no per-cycle allocation).
    pub fn fetch_phase(&mut self) {
        let room = (4 * self.width as usize).saturating_sub(self.queue.len());
        if room == 0 {
            return;
        }
        self.frontend.fetch_into(self.cycle, &mut self.mem, room, &mut self.fetch_scratch);
        if !self.fetch_scratch.is_empty() {
            self.progress = true;
            if O::ENABLED {
                for f in &self.fetch_scratch {
                    self.obs.fetch(f.seq, f.idx, self.cycle);
                }
            }
            self.queue.extend(self.fetch_scratch.drain(..));
        }
    }

    /// Common dispatch admission checks (window and LSQ capacity). Returns
    /// `false` (and counts the stall) when the instruction cannot enter.
    pub fn admit(&mut self, f: &Fetched) -> bool {
        if self.in_flight() >= self.window {
            self.report.stall_window += 1;
            return false;
        }
        if self.code.op(f.idx).is_mem() && !self.lsq.has_space() {
            self.report.stall_lsq += 1;
            return false;
        }
        true
    }

    /// The producer sequence numbers `f` would depend on if dispatched now
    /// (used by dependence-based steering before committing to a FIFO).
    pub fn peek_deps(&self, f: &Fetched) -> [u64; 3] {
        let d = self.code.op(f.idx);
        let mut deps = [NONE; 3];
        for (i, &r) in d.srcs.iter().enumerate() {
            if r != NO_REG {
                deps[i] = self.last_writer[r as usize];
            }
        }
        if d.reads_dest != NO_REG {
            deps[2] = self.last_writer[d.reads_dest as usize];
        }
        deps
    }

    /// Records the dispatch of `f`: builds its dependence links, inserts
    /// the LSQ entry, and advances the window tail. Returns the sequence
    /// number.
    ///
    /// During checkpoint replay the previously-computed dependence links
    /// are reused (program order fixes them) and the writer table is left
    /// alone, so post-replay dispatches see consistent producers.
    pub fn dispatch_slot(&mut self, f: &Fetched, tag: u32) -> u64 {
        let seq = f.seq;
        debug_assert_eq!(seq, self.next_dispatch, "in-order dispatch");
        let d = *self.code.op(f.idx);
        let replaying = seq < self.replay_until;
        let deps = if replaying {
            self.slots[seq as usize].deps
        } else {
            let mut deps = [NONE; 3];
            for (i, &r) in d.srcs.iter().enumerate() {
                if r != NO_REG {
                    deps[i] = self.last_writer[r as usize];
                }
            }
            if d.reads_dest != NO_REG {
                deps[2] = self.last_writer[d.reads_dest as usize];
            }
            if d.dest != NO_REG {
                self.last_writer[d.dest as usize] = seq;
            }
            deps
        };
        if d.is_mem() {
            self.lsq.insert(seq, d.is_store(), f.addr, d.mem_bytes as u64);
        }
        self.slots[seq as usize] = Slot {
            idx: f.idx,
            addr: f.addr,
            mispredicted: f.mispredicted,
            deps,
            tag,
            dispatched: true,
            ..Slot::default()
        };
        self.next_dispatch += 1;
        self.progress = true;
        if O::ENABLED {
            self.obs.dispatch(seq, f.idx, tag, self.cycle);
        }
        seq
    }

    /// Checkpoint rollback: squashes every unretired instruction, rewinds
    /// fetch to the oldest unretired sequence number, and marks the
    /// squashed range for dependence-link replay.
    pub fn squash_to_head(&mut self) {
        for seq in self.head..self.next_dispatch {
            let s = &mut self.slots[seq as usize];
            s.dispatched = false;
            s.issued = false;
            s.avail_at = NONE;
            s.done_at = NONE;
            s.tag = u32::MAX;
            s.tag2 = u32::MAX;
        }
        self.replay_until = self.replay_until.max(self.next_dispatch);
        self.next_dispatch = self.head;
        self.lsq.flush();
        self.pending_stores.clear();
        self.queue.clear();
        self.frontend.rewind(self.head, self.cycle + 1);
        self.progress = true;
        if O::ENABLED {
            self.obs.squash(self.cycle);
        }
    }

    /// Whether every register producer `seq` needs *to issue* has its value
    /// available. Stores issue at address generation: only the base (and
    /// the implicit cmov read) gate issue; the data may arrive later.
    pub fn deps_ready(&self, seq: u64) -> bool {
        let skip_value = self.op(seq).is_store();
        self.slots[seq as usize]
            .deps
            .iter()
            .enumerate()
            .all(|(i, &d)| {
                (skip_value && i == 0)
                    || d == NONE
                    || self.slots[d as usize].avail_at <= self.cycle
            })
    }

    /// Memory-ordering gate for a load about to issue.
    pub fn load_gate(&self, seq: u64) -> LoadGate {
        let s = &self.slots[seq as usize];
        let bytes = self.code.op(s.idx).mem_bytes as u64;
        match self.lsq.load_outcome(seq, s.addr, bytes, self.cycle) {
            LsqOutcome::Ready => LoadGate::Go,
            LsqOutcome::Forwarded { .. } => LoadGate::Forward,
            LsqOutcome::WaitOn { .. } => LoadGate::Wait,
        }
    }

    /// Issues `seq` at the current cycle and computes its completion.
    ///
    /// `ext_avail` maps the raw completion cycle to the cycle consumers see
    /// the value (bypass/port modelling, supplied by the core).
    ///
    /// Returns `false` if the instruction is a load that must wait on the
    /// LSQ (nothing is recorded in that case).
    pub fn issue(&mut self, seq: u64, ext_avail: impl FnOnce(&mut Self, u64) -> u64) -> bool {
        let op = *self.op(seq);
        let cycle = self.cycle;
        let (avail, done) = if op.is_load() {
            let lat = match self.load_gate(seq) {
                LoadGate::Wait => {
                    self.report.lsq_wait_events += 1;
                    return false;
                }
                LoadGate::Forward => {
                    self.report.forwarded_loads += 1;
                    2
                }
                LoadGate::Go => {
                    let addr = self.slots[seq as usize].addr;
                    1 + self.mem.access_at(Access::Load, addr, cycle)
                }
            };
            let complete = cycle + lat;
            let avail = ext_avail(self, complete);
            (avail, avail)
        } else if op.is_store() {
            // Address generation issues as soon as the base is ready; the
            // data arrives when the value producer completes.
            let addr = self.slots[seq as usize].addr;
            let bytes = op.mem_bytes as u64;
            self.lsq.set_address(seq, addr, bytes);
            let agen_done = cycle + 1;
            let value_dep = self.slots[seq as usize].deps[0];
            let data_at = if value_dep == NONE {
                agen_done
            } else {
                let avail = self.slots[value_dep as usize].avail_at;
                if avail == NONE {
                    // Producer not issued yet: finalize later.
                    self.pending_stores.push(seq);
                    NONE
                } else {
                    agen_done.max(avail)
                }
            };
            if data_at != NONE {
                self.lsq.set_data_at(seq, data_at);
            }
            (agen_done, data_at.max(agen_done))
        } else {
            let complete = cycle + op.latency as u64;
            let avail = if op.has_dest() {
                ext_avail(self, complete)
            } else {
                complete
            };
            (avail, avail.max(complete))
        };
        let s = &mut self.slots[seq as usize];
        s.issued = true;
        s.avail_at = avail;
        s.done_at = done;
        if O::ENABLED {
            self.obs.issue(seq, cycle, avail, done);
        }
        let s = &self.slots[seq as usize];
        if op.is_branch() {
            let resolve = cycle + 1;
            if s.mispredicted {
                self.frontend.resolve_branch(seq, resolve);
            }
        }
        if op.is_external() {
            self.external_values += 1;
        }
        self.progress = true;
        true
    }

    /// Finalizes stores whose data producers have computed availability.
    pub fn resolve_pending_stores(&mut self) {
        let mut resolved = false;
        let slots = &mut self.slots;
        let lsq = &mut self.lsq;
        let obs = &mut *self.obs;
        self.pending_stores.retain(|&seq| {
            let value_dep = slots[seq as usize].deps[0];
            debug_assert_ne!(value_dep, NONE);
            let avail = slots[value_dep as usize].avail_at;
            if avail == NONE {
                return true;
            }
            let data_at = slots[seq as usize].avail_at.max(avail);
            slots[seq as usize].done_at = data_at;
            lsq.set_data_at(seq, data_at);
            if O::ENABLED {
                obs.store_data(seq, data_at);
            }
            resolved = true;
            false
        });
        if resolved {
            self.progress = true;
        }
    }

    /// Retires completed instructions in order, up to the machine width.
    /// `on_retire` runs per retired sequence number (for core-specific
    /// resource frees).
    pub fn retire_phase(&mut self, mut on_retire: impl FnMut(&mut Engine<'a, O>, u64)) {
        self.resolve_pending_stores();
        let mut n = 0;
        while n < self.width && self.head < self.next_dispatch {
            let seq = self.head;
            let s = &self.slots[seq as usize];
            debug_assert!(s.dispatched, "retiring an undispatched slot");
            if !s.issued || s.done_at > self.cycle {
                break;
            }
            let op = self.code.op(s.idx);
            if op.is_mem() {
                let is_store = op.is_store();
                if is_store {
                    let addr = s.addr;
                    self.mem.access(Access::Store, addr);
                }
                self.lsq.retire(seq);
            }
            on_retire(self, seq);
            if O::ENABLED {
                self.obs.retire(seq, self.cycle);
            }
            self.head += 1;
            self.report.instructions += 1;
            self.last_retire_cycle = self.cycle;
            self.retired_this_cycle = true;
            n += 1;
            self.progress = true;
        }
    }

    /// Classifies the cycle that just ended (CPI attribution; see
    /// [`crate::obs`] for the priority rules). Returns the cause and the
    /// static index of the oldest in-flight instruction (`u32::MAX` for an
    /// empty window) for hotspot profiles.
    fn classify_cycle(&self) -> (StallCause, u32) {
        let in_flight = self.head < self.next_dispatch;
        let head_idx =
            if in_flight { self.slots[self.head as usize].idx } else { u32::MAX };
        if self.retired_this_cycle {
            return (StallCause::Base, head_idx);
        }
        // Oldest-first: a load miss holding retirement outranks the
        // secondary dispatch pressure it causes.
        if in_flight {
            let s = &self.slots[self.head as usize];
            if s.issued && s.done_at > self.cycle && self.code.op(s.idx).is_load() {
                return (StallCause::DCache, head_idx);
            }
        }
        let r = &self.report;
        let m = &self.stall_mark;
        let cause = if r.lsq_wait_events > m.lsq_wait || r.stall_lsq > m.lsq {
            StallCause::Lsq
        } else if r.stall_regs > m.regs {
            StallCause::Regs
        } else if r.stall_window > m.window {
            StallCause::WindowFull
        } else if r.stall_alloc_bw > m.alloc_bw {
            StallCause::AllocBw
        } else if in_flight {
            // Executing a non-load at the head, or serialized behind
            // scheduler order / dependence chains.
            StallCause::BeuSerial
        } else {
            match self.frontend.stall_kind(self.cycle) {
                FetchGap::Mispredict => StallCause::MispredictRefill,
                FetchGap::ICache => StallCause::ICache,
                // Dispatch gated without a counted stall (exception
                // handler episodes) while fetched work waits.
                FetchGap::None | FetchGap::Done if !self.queue.is_empty() => {
                    StallCause::BeuSerial
                }
                FetchGap::None | FetchGap::Done => StallCause::EmptyFrontend,
            }
        };
        (cause, head_idx)
    }

    /// Advances time: one cycle after progress, otherwise straight to the
    /// next known event. Every cycle stepped over is attributed to exactly
    /// one [`StallCause`] in the report's CPI stack (an event-free span
    /// inherits the classification of its opening cycle — nothing changes
    /// mid-span, or it would have been progress). Returns `false` when the
    /// no-retire-progress watchdog trips — the caller should abort with
    /// [`Engine::livelock`], attaching its scheduler-state dump.
    pub fn advance(&mut self) -> bool {
        // Classify before moving time: the span inherits the state of its
        // opening cycle (`done_at > cycle` comparisons must not see the
        // fast-forwarded clock).
        let (cause, head_idx) = self.classify_cycle();
        let from = self.cycle;
        if self.progress {
            self.cycle += 1;
        } else {
            let mut next = NONE;
            for seq in self.head..self.next_dispatch {
                let s = &self.slots[seq as usize];
                if s.issued {
                    if s.avail_at > self.cycle {
                        next = next.min(s.avail_at);
                    }
                    if s.done_at > self.cycle {
                        next = next.min(s.done_at);
                    }
                }
            }
            if let Some(t) = self.frontend.next_event() {
                if t > self.cycle {
                    next = next.min(t);
                }
            }
            self.cycle = if next == NONE { self.cycle + 1 } else { next };
        }
        self.report.cpi.add(cause, self.cycle - from);
        if O::ENABLED {
            self.obs.cycle_cause(from, self.cycle - from, cause, head_idx);
            self.obs.lsq_occupancy(self.lsq.len() as u32);
        }
        self.retired_this_cycle = false;
        self.stall_mark = StallMark {
            window: self.report.stall_window,
            regs: self.report.stall_regs,
            lsq: self.report.stall_lsq,
            alloc_bw: self.report.stall_alloc_bw,
            lsq_wait: self.report.lsq_wait_events,
        };
        self.progress = false;
        !self.deadline_elapsed() && self.cycle - self.last_retire_cycle <= self.watchdog_cycles
    }

    /// Whether the simulated-cycle deadline (if any) has elapsed.
    fn deadline_elapsed(&self) -> bool {
        self.deadline_cycles > 0 && self.cycle >= self.deadline_cycles
    }

    /// Builds the abort error after [`Engine::advance`] returned `false`:
    /// a [`SimError::Deadline`] when the cycle budget elapsed, otherwise a
    /// [`SimError::Livelock`]. `queues` is the core's own view of its stuck
    /// schedulers (BEU FIFO contents, busy bits, ...) — the engine cannot
    /// see it.
    pub fn livelock(&self, core: &'static str, queues: Vec<String>) -> SimError {
        if self.deadline_elapsed() {
            return SimError::Deadline {
                cycle: self.cycle,
                deadline_cycles: self.deadline_cycles,
                retired: self.report.instructions,
            };
        }
        SimError::Livelock(Box::new(LivelockReport {
            core,
            cycle: self.cycle,
            last_retire_cycle: self.last_retire_cycle,
            watchdog_cycles: self.watchdog_cycles,
            retired: self.report.instructions,
            head: self.head,
            in_flight: self.in_flight() as u64,
            fetch_queue: self.queue.len(),
            queues,
        }))
    }

    /// One dump line for a scheduler/FIFO: occupancy plus the head entry's
    /// identity and why it has not issued.
    pub fn describe_queue(&self, name: &str, entries: &mut dyn Iterator<Item = u64>) -> String {
        let seqs: Vec<u64> = entries.collect();
        match seqs.first() {
            None => format!("{name}: empty"),
            Some(&head) => {
                let s = &self.slots[head as usize];
                let waiting: Vec<u64> = s
                    .deps
                    .iter()
                    .copied()
                    .filter(|&d| d != NONE && self.slots[d as usize].avail_at > self.cycle)
                    .collect();
                format!(
                    "{name}: {} entries, head seq {head} (inst {} `{}`) issued={} deps-waiting={waiting:?}",
                    seqs.len(),
                    s.idx,
                    self.inst(head),
                    s.issued,
                )
            }
        }
    }

    /// Finalizes the report after the run loop ends.
    pub fn finish(mut self, checkpoint_words_per_branch: u64) -> SimReport {
        self.report.cycles = self.cycle.max(1);
        // The attribution loop charged exactly `cycle` cycles; an empty
        // trace (cycle 0 clamped to 1) leaves a residue, charged to the
        // empty front end so the stack still sums to `cycles`.
        let attributed = self.report.cpi.total();
        debug_assert!(attributed == self.cycle, "CPI stack {attributed} != cycle {}", self.cycle);
        if attributed < self.report.cycles {
            self.report.cpi.add(StallCause::EmptyFrontend, self.report.cycles - attributed);
        }
        self.report.host_nanos = self.started.elapsed().as_nanos() as u64;
        self.report.retire_slots = self.report.cycles * self.width as u64;
        self.report.branch_accuracy = self.frontend.branch_accuracy();
        self.report.ras_accuracy = self.frontend.ras_accuracy();
        let (l1i, l1d, l2) = self.mem.stats();
        self.report.l1i = l1i.hits;
        self.report.l1d = l1d.hits;
        self.report.l2 = l2.hits;
        self.report.mispredict_stall_cycles = self.frontend.mispredict_stall_cycles;
        self.report.external_values_per_cycle =
            self.external_values as f64 / self.report.cycles as f64;
        let branches = self
            .trace
            .entries
            .iter()
            .filter(|e| self.program.insts[e.idx as usize].opcode.is_branch())
            .count() as u64;
        self.report.checkpoint_words = branches * checkpoint_words_per_branch;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_defaults() {
        let s = Slot::default();
        assert!(!s.dispatched && !s.issued);
        assert_eq!(s.tag, u32::MAX);
        assert_eq!(s.tag2, u32::MAX);
        assert_eq!(s.avail_at, NONE);
    }

    #[test]
    fn bandwidth_reservations() {
        let mut b = Bandwidth::new(2);
        assert!(b.try_reserve(5));
        assert!(b.try_reserve(5));
        assert!(!b.try_reserve(5));
        assert!(b.try_reserve(6));
        assert_eq!(b.reserve_first_free(5), 6, "cycle 5 full, 6 has one left");
        assert_eq!(b.reserve_first_free(5), 7);
        b.gc(100);
    }

    #[test]
    fn regpool_alloc_release() {
        let mut p = RegPool::new(2);
        let a = p.try_alloc(10).unwrap();
        let b = p.try_alloc(10).unwrap();
        assert_ne!(a, b);
        assert!(p.try_alloc(10).is_none());
        p.release(a, 15);
        assert!(p.try_alloc(14).is_none(), "not free until cycle 15");
        assert_eq!(p.try_alloc(15), Some(a));
    }
}
