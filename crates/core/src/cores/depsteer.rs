//! FIFO dependence-based steering (Palacharla, Jouppi & Smith), the "dep"
//! baseline of the paper's Figure 13.
//!
//! At dispatch, an instruction is steered to the FIFO whose *tail* is one
//! of its producers (so dependence chains line up in a FIFO); otherwise to
//! an empty FIFO; otherwise dispatch stalls. Issue examines only FIFO
//! heads — out of order across FIFOs, in order within each. The paper cites
//! this as "a simple and implementable algorithm with a design complexity
//! comparable to braids", but the steering decisions happen at run time,
//! whereas braids are identified by the compiler.

use std::collections::VecDeque;

use braid_isa::Program;
use braid_uarch::cache::MemoryHierarchy;

use crate::config::DepConfig;
use crate::cores::common::{Bandwidth, Engine, RegPool, NONE};
use crate::error::SimError;
use crate::obs::{NoopObserver, Observer};
use crate::report::SimReport;
use crate::trace::Trace;

/// The dependence-steering timing model.
#[derive(Debug, Clone)]
pub struct DepSteerCore {
    config: DepConfig,
}

impl DepSteerCore {
    /// Creates the core with `config`.
    pub fn new(config: DepConfig) -> DepSteerCore {
        DepSteerCore { config }
    }

    /// Simulates `trace` of `program`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for an impossible machine description,
    /// [`SimError::Livelock`] (with a FIFO dump) if the pipeline stops
    /// retiring.
    pub fn run(&self, program: &Program, trace: &Trace) -> Result<SimReport, SimError> {
        self.run_observed(program, trace, &mut NoopObserver)
    }

    /// Like [`DepSteerCore::run`], sending pipeline events to `obs` (the
    /// no-op observer path is identical to [`DepSteerCore::run`]).
    ///
    /// # Errors
    ///
    /// As for [`DepSteerCore::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, obs, None)
    }

    /// Like [`DepSteerCore::run`], but starting from a pre-warmed memory
    /// hierarchy instead of cold caches. Used by sampled simulation, where
    /// functional warming supplies the cache state a continuous run would
    /// have at the window start.
    ///
    /// # Errors
    ///
    /// As for [`DepSteerCore::run`].
    pub fn run_warmed(
        &self,
        program: &Program,
        trace: &Trace,
        mem: MemoryHierarchy,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, &mut NoopObserver, Some(mem))
    }

    fn run_inner<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
        warm: Option<MemoryHierarchy>,
    ) -> Result<SimReport, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let mut eng = Engine::new(program, trace, &cfg.common, obs);
        if let Some(mem) = warm {
            eng.mem = mem;
        }
        let mut fifos: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.fifos as usize];
        let mut regs = RegPool::new(cfg.regs);
        let mut bypass = Bandwidth::new(cfg.bypass_per_cycle);
        let mut wr_ports = Bandwidth::new(cfg.common.width);

        while !eng.finished() {
            let cyc = eng.cycle;
            eng.retire_phase(|eng, seq| {
                let slot = eng.slots[seq as usize].tag2;
                if slot != u32::MAX {
                    regs.release(slot, cyc);
                }
            });

            // Issue from FIFO heads only.
            let mut fus_left = cfg.fus.min(cfg.common.width);
            #[allow(clippy::needless_range_loop)] // fifos[f] is mutated inside
            for f in 0..fifos.len() {
                if fus_left == 0 {
                    break;
                }
                let Some(&seq) = fifos[f].front() else { continue };
                if !eng.deps_ready(seq) {
                    continue;
                }
                let ok = eng.issue(seq, |_, complete| {
                    if bypass.try_reserve(complete) {
                        complete
                    } else {
                        wr_ports.reserve_first_free(complete) + 2
                    }
                });
                if ok {
                    fifos[f].pop_front();
                    fus_left -= 1;
                }
            }

            // Dispatch with dependence-based steering.
            let mut dispatched = 0;
            while dispatched < cfg.common.width {
                let Some(f) = eng.queue.front().copied() else { break };
                if !eng.admit(&f) {
                    break;
                }
                let deps = eng.peek_deps(&f);
                // Preferred FIFO: one whose tail produces an operand.
                let mut target: Option<usize> = None;
                for (i, q) in fifos.iter().enumerate() {
                    if let Some(&tail) = q.back() {
                        if deps.contains(&tail) && q.len() < cfg.fifo_entries as usize {
                            target = Some(i);
                            break;
                        }
                    }
                }
                if target.is_none() {
                    target = fifos.iter().position(|q| q.is_empty());
                }
                let Some(target) = target else {
                    // No producer tail and no empty FIFO: the steering
                    // heuristic stalls (its key weakness).
                    eng.report.stall_window += 1;
                    break;
                };
                let has_dest = eng.program.insts[f.idx as usize].written_reg().is_some();
                let reg_slot = if has_dest {
                    match regs.try_alloc(eng.cycle) {
                        Some(s) => s,
                        None => {
                            eng.report.stall_regs += 1;
                            break;
                        }
                    }
                } else {
                    u32::MAX
                };
                eng.queue.pop_front();
                let seq = eng.dispatch_slot(&f, target as u32);
                eng.slots[seq as usize].tag2 = reg_slot;
                fifos[target].push_back(seq);
                dispatched += 1;
            }

            eng.fetch_phase();
            bypass.gc(eng.cycle.saturating_sub(64));
            if O::ENABLED {
                for (i, q) in fifos.iter().enumerate() {
                    eng.obs.unit_occupancy(i as u32, q.len() as u32);
                }
            }
            if !eng.advance() {
                let dump: Vec<String> = fifos
                    .iter()
                    .enumerate()
                    .map(|(f, q)| eng.describe_queue(&format!("fifo{f}"), &mut q.iter().copied()))
                    .collect();
                return Err(eng.livelock("dep", dump));
            }
        }
        let _ = NONE;
        Ok(eng.finish(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommonConfig;
    use crate::cores::ooo::OooCore;
    use crate::config::OooConfig;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;

    fn trace_of(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 1_000_000).unwrap();
        (p, t)
    }

    fn perfect_config() -> DepConfig {
        let mut c = DepConfig::paper_8wide();
        c.common = CommonConfig::paper_8wide().perfect();
        c
    }

    #[test]
    fn retires_everything() {
        let (p, t) = trace_of(
            "addi r0, #50, r1\nloop: addq r2, r1, r2\nsubi r1, #1, r1\nbne r1, loop\nhalt",
        );
        let r = DepSteerCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
    }

    #[test]
    fn chains_line_up_in_fifos() {
        // Two independent chains: steering keeps each in its own FIFO, so
        // both heads issue every cycle.
        let (p, t) = trace_of(
            r#"
                addi r0, #300, r1
            loop:
                addq r2, r2, r2
                addq r3, r3, r3
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let r = DepSteerCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r.ipc() > 1.5, "ipc {}", r.ipc());
    }

    #[test]
    fn dep_is_at_most_ooo() {
        let (p, t) = trace_of(
            r#"
                addi r0, #300, r1
            loop:
                addq r2, r1, r3
                addq r3, r1, r4
                addq r2, r1, r5
                mulq r5, r4, r6
                stq  r6, 0(r9)
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let dep = DepSteerCore::new(perfect_config()).run(&p, &t).expect("runs");
        let mut ooo_cfg = OooConfig::paper_8wide();
        ooo_cfg.common = CommonConfig::paper_8wide().perfect();
        let ooo = OooCore::new(ooo_cfg).run(&p, &t).expect("runs");
        assert!(dep.ipc() <= ooo.ipc() * 1.05, "dep {} vs ooo {}", dep.ipc(), ooo.ipc());
    }
}
