//! The four execution-core timing models of the paper's Figure 13.
//!
//! Every core's `run` returns `Result<SimReport, SimError>`; the hot paths
//! must stay panic-free (the lint below enforces the `unwrap` half; config
//! validation and the livelock watchdog cover what `Result` cannot).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub(crate) mod common;

pub mod braid;
pub mod depsteer;
pub mod inorder;
pub mod ooo;

pub use braid::BraidCore;
pub use depsteer::DepSteerCore;
pub use inorder::InOrderCore;
pub use ooo::OooCore;
