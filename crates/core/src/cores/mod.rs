//! The four execution-core timing models of the paper's Figure 13.

pub(crate) mod common;

pub mod braid;
pub mod depsteer;
pub mod inorder;
pub mod ooo;

pub use braid::BraidCore;
pub use depsteer::DepSteerCore;
pub use inorder::InOrderCore;
pub use ooo::OooCore;
