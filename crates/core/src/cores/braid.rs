//! The braid microarchitecture (paper §3.3, Table 4 bottom block).
//!
//! Braids arrive from the front end in order (the `S` bit marks
//! boundaries); the distribute stage sends each braid, whole, to the braid
//! execution unit (BEU) with the most free FIFO space — no dependence-based
//! steering is needed because the compiler already grouped dependent
//! instructions. Each BEU is a 32-entry FIFO whose head `window_size`
//! entries form a strict in-order scheduler feeding 2 functional units, an
//! 8-entry internal register file (4R/2W), and a busy-bit view of the
//! 8-entry external register file (6R/3W). Only external values travel on
//! the 1-level, 2-value/cycle bypass network. Internal values live and die
//! inside the BEU.
//!
//! External register file entries are claimed when an `E`-destination
//! instruction issues and recycle once the value has drained to the
//! architectural backing file; recovery state lives in checkpoints, which
//! in this machine exclude internal values.

use std::collections::{BTreeSet, VecDeque};

use braid_isa::Program;
use braid_uarch::cache::MemoryHierarchy;

use crate::config::BraidConfig;
use crate::cores::common::{Bandwidth, Engine, RegPool};
use crate::error::SimError;
use crate::obs::{NoopObserver, Observer};
use crate::report::SimReport;
use crate::trace::Trace;

/// How many cycles after completion an external value occupies its external
/// register file entry while draining to the backing file. The backing-file
/// write rides the bypass broadcast, so the entry recycles at completion —
/// with ~2 external values produced per cycle, live for a couple of cycles,
/// the paper's 8 entries suffice (Figure 6).
const DRAIN_CYCLES: u64 = 0;

/// The braid-microarchitecture timing model.
#[derive(Debug, Clone)]
pub struct BraidCore {
    config: BraidConfig,
}

impl BraidCore {
    /// Creates the core with `config`.
    pub fn new(config: BraidConfig) -> BraidCore {
        BraidCore { config }
    }

    /// Simulates `trace` of a braid-annotated `program`.
    ///
    /// The program should come from the braid translator; an unannotated
    /// program still runs (every instruction is a single-instruction braid
    /// with external operands) but gains nothing.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for an impossible machine description,
    /// [`SimError::Livelock`] (with a BEU FIFO dump) if the pipeline stops
    /// retiring.
    pub fn run(&self, program: &Program, trace: &Trace) -> Result<SimReport, SimError> {
        self.run_with_exceptions(program, trace, &[], 0)
    }

    /// Like [`BraidCore::run`], sending pipeline events to `obs` (the
    /// no-op observer path is identical to [`BraidCore::run`]).
    ///
    /// # Errors
    ///
    /// As for [`BraidCore::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.run_with_exceptions_observed(program, trace, &[], 0, obs)
    }

    /// Simulates `trace`, raising an exception at each dynamic sequence
    /// number in `exceptions` (paper §3.4): the machine rolls back to the
    /// checkpoint, disables all but one BEU, re-executes strictly in order
    /// until the excepting instruction retires, charges `handler_latency`
    /// cycles for the handler, and resumes normal mode.
    ///
    /// # Errors
    ///
    /// As for [`BraidCore::run`].
    pub fn run_with_exceptions(
        &self,
        program: &Program,
        trace: &Trace,
        exceptions: &[u64],
        handler_latency: u64,
    ) -> Result<SimReport, SimError> {
        self.run_with_exceptions_observed(program, trace, exceptions, handler_latency, &mut NoopObserver)
    }

    /// Like [`BraidCore::run_with_exceptions`], sending pipeline events to
    /// `obs`.
    ///
    /// # Errors
    ///
    /// As for [`BraidCore::run`].
    pub fn run_with_exceptions_observed<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        exceptions: &[u64],
        handler_latency: u64,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, exceptions, handler_latency, obs, None)
    }

    /// Like [`BraidCore::run`], but starting from a pre-warmed memory
    /// hierarchy instead of cold caches. Used by sampled simulation, where
    /// functional warming supplies the cache state a continuous run would
    /// have at the window start.
    ///
    /// # Errors
    ///
    /// As for [`BraidCore::run`].
    pub fn run_warmed(
        &self,
        program: &Program,
        trace: &Trace,
        mem: MemoryHierarchy,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, &[], 0, &mut NoopObserver, Some(mem))
    }

    fn run_inner<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        exceptions: &[u64],
        handler_latency: u64,
        obs: &mut O,
        warm: Option<MemoryHierarchy>,
    ) -> Result<SimReport, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let mut eng = Engine::new(program, trace, &cfg.common, obs);
        if let Some(mem) = warm {
            eng.mem = mem;
        }
        let mut fifos: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.beus as usize];
        let mut ext_pool = RegPool::new(cfg.external_regs);
        let mut bypass = Bandwidth::new(cfg.bypass_per_cycle);
        let mut ext_wr = Bandwidth::new(cfg.ext_write_ports);
        let mut int_wr: Vec<Bandwidth> =
            (0..cfg.beus).map(|_| Bandwidth::new(cfg.internal_write_ports)).collect();
        // The BEU currently receiving the in-flight braid from distribute.
        let mut current_beu: usize = 0;
        // Cluster geometry (paper §5.2): BEU b belongs to cluster
        // b / beus_per_cluster; cross-cluster external values pay a delay.
        let clusters = cfg.clusters.max(1);
        let beus_per_cluster = cfg.beus.div_ceil(clusters).max(1);
        let cluster_of = |beu: u32| beu / beus_per_cluster;
        // Exception machinery (paper §3.4).
        let mut pending_exceptions: BTreeSet<u64> =
            exceptions.iter().copied().filter(|&e| (e as usize) < trace.len()).collect();
        let mut exception_mode: Option<u64> = None;
        let mut dispatch_stalled_until: u64 = 0;
        let mut exceptions_taken: u64 = 0;

        while !eng.finished() {
            eng.retire_phase(|_, _| {});

            // Leave exception mode once the excepting instruction retires;
            // the handler then runs for `handler_latency` cycles.
            if let Some(e) = exception_mode {
                if eng.head > e {
                    exception_mode = None;
                    dispatch_stalled_until = eng.cycle + handler_latency;
                }
            }

            // Raise any pending exception whose instruction reached an
            // issue window: roll back to the checkpoint and enter the
            // single-BEU in-order mode.
            let mut raise: Option<u64> = None;
            if exception_mode.is_none() && !pending_exceptions.is_empty() {
                'scan: for fifo in &fifos {
                    for &seq in fifo.iter().take(cfg.window_size as usize) {
                        if pending_exceptions.contains(&seq) {
                            raise = Some(seq);
                            break 'scan;
                        }
                    }
                }
            }
            if let Some(e) = raise {
                pending_exceptions.remove(&e);
                exceptions_taken += 1;
                exception_mode = Some(e);
                for fifo in &mut fifos {
                    fifo.clear();
                }
                eng.squash_to_head();
            }

            // Issue: each BEU examines the head `window_size` FIFO entries
            // for readiness (paper §3.3: "only the instructions in these
            // two entries are examined for readiness"); ready entries issue
            // oldest-first up to the BEU's functional units. Instructions
            // enter the window strictly in order.
            let mut ext_reads_left = cfg.ext_read_ports;
            #[allow(clippy::needless_range_loop)] // fifos[b] is mutated inside
            for b in 0..fifos.len() {
                let mut issued = 0u32;
                let mut int_reads_left = cfg.internal_read_ports;
                let mut widx = 0usize;
                while issued < cfg.fus_per_beu && widx < cfg.window_size as usize {
                    let Some(&seq) = fifos[b].get(widx).copied().as_ref() else { break };
                    debug_assert_eq!(eng.slots[seq as usize].tag, b as u32, "slot in its BEU");
                    let ready = if clusters <= 1 {
                        eng.deps_ready(seq)
                    } else {
                        // Cross-cluster operands arrive late (paper §5.2).
                        let skip_value = eng.op(seq).is_store();
                        eng.slots[seq as usize].deps.iter().enumerate().all(|(i, &d)| {
                            if (skip_value && i == 0) || d == crate::cores::common::NONE {
                                return true;
                            }
                            let p = &eng.slots[d as usize];
                            if p.avail_at == crate::cores::common::NONE {
                                return false;
                            }
                            let extra = if p.tag != u32::MAX
                                && cluster_of(p.tag) != cluster_of(b as u32)
                            {
                                cfg.inter_cluster_delay
                            } else {
                                0
                            };
                            p.avail_at + extra <= eng.cycle
                        })
                    };
                    if !ready {
                        widx += 1;
                        continue;
                    }
                    let d = *eng.op(seq);
                    // Register-file read ports: internal per BEU, external
                    // global (the busy-bit vector tracks availability; the
                    // ports bound bandwidth).
                    let mut int_reads = 0u32;
                    let mut ext_reads = 0u32;
                    for (slot, &r) in d.srcs.iter().enumerate() {
                        if r == crate::predecode::NO_REG {
                            continue;
                        }
                        if d.is_t(slot) {
                            int_reads += 1;
                        } else {
                            ext_reads += 1;
                        }
                    }
                    if int_reads > int_reads_left || ext_reads > ext_reads_left {
                        widx += 1;
                        continue;
                    }
                    let writes_external = d.is_external();
                    let writes_internal = d.is_internal();
                    let beu = b;
                    let mut ext_delay = false;
                    let ok = eng.issue(seq, |_, complete| {
                        if writes_external {
                            // External results drain over the bypass network
                            // or through the external register file ports...
                            let t = if bypass.try_reserve(complete) {
                                complete
                            } else {
                                ext_wr.reserve_first_free(complete) + 2
                            };
                            // ...and stage through an external register
                            // file entry at writeback until the backing
                            // file absorbs them; a full file delays the
                            // value (Figure 6's sweep).
                            let start = ext_pool.alloc_earliest(t, 1 + DRAIN_CYCLES);
                            ext_delay = start > t;
                            start
                        } else if writes_internal {
                            // Internal results go straight to the BEU's
                            // internal register file.
                            int_wr[beu].reserve_first_free(complete)
                        } else {
                            complete
                        }
                    });
                    if ext_delay {
                        eng.report.stall_regs += 1;
                    }
                    if !ok {
                        // A load blocked on an older store; other window
                        // entries may still issue (the LSQ enforces memory
                        // order).
                        widx += 1;
                        continue;
                    }
                    fifos[b].remove(widx);
                    int_reads_left -= int_reads;
                    ext_reads_left -= ext_reads;
                    issued += 1;
                }
            }

            // Distribute: braids flow whole to the chosen BEU; a braid too
            // long for the remaining FIFO space stalls distribution (the
            // paper's Figure 10 effect). In exception mode everything goes
            // to BEU 0, making the machine strictly in-order; after the
            // excepting instruction retires, dispatch waits out the
            // handler.
            let mut dispatched = if eng.cycle < dispatch_stalled_until { cfg.common.width } else { 0 };
            let mut ext_allocs_left = cfg.alloc_ext_per_cycle;
            let mut renames_left = cfg.rename_src_per_cycle;
            while dispatched < cfg.common.width {
                let Some(f) = eng.queue.front().copied() else { break };
                if !eng.admit(&f) {
                    break;
                }
                let d = *eng.code.op(f.idx);
                // Allocation/rename bandwidth is consumed only by external
                // operands (paper §5.1).
                let ext_dest = d.is_external() as u32;
                let ext_srcs = d
                    .srcs
                    .iter()
                    .enumerate()
                    .filter(|&(slot, &r)| r != crate::predecode::NO_REG && !d.is_t(slot))
                    .count() as u32;
                if ext_dest > ext_allocs_left || ext_srcs > renames_left {
                    eng.report.stall_alloc_bw += 1;
                    break;
                }
                if exception_mode.is_some() {
                    current_beu = 0;
                } else if eng.program.insts[f.idx as usize].braid.start {
                    // Choose the BEU with the most free space (config
                    // validation guarantees at least one exists).
                    current_beu =
                        (0..fifos.len()).min_by_key(|&b| fifos[b].len()).unwrap_or(0);
                }
                if fifos[current_beu].len() >= cfg.fifo_entries as usize {
                    eng.report.stall_window += 1;
                    break;
                }
                eng.queue.pop_front();
                let seq = eng.dispatch_slot(&f, current_beu as u32);
                fifos[current_beu].push_back(seq);
                ext_allocs_left -= ext_dest;
                renames_left -= ext_srcs;
                dispatched += 1;
            }

            eng.fetch_phase();
            bypass.gc(eng.cycle.saturating_sub(64));
            ext_wr.gc(eng.cycle.saturating_sub(64));
            if O::ENABLED {
                for (b, fifo) in fifos.iter().enumerate() {
                    eng.obs.unit_occupancy(b as u32, fifo.len() as u32);
                }
            }
            if !eng.advance() {
                let dump: Vec<String> = fifos
                    .iter()
                    .enumerate()
                    .map(|(b, fifo)| {
                        eng.describe_queue(&format!("beu{b}"), &mut fifo.iter().copied())
                    })
                    .chain(exception_mode.map(|e| format!("exception mode on seq {e}")))
                    .collect();
                return Err(eng.livelock("braid", dump));
            }
        }
        // Braid checkpoints save only external state (paper §3.4): the
        // external register file, not the internal files.
        let mut report = eng.finish(cfg.external_regs as u64);
        report.exceptions_taken = exceptions_taken;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommonConfig;
    use crate::functional::Machine;
    use braid_compiler::{translate, TranslatorConfig};
    use braid_isa::asm::assemble;

    fn braid_trace(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 1_000_000).unwrap();
        (t.program, trace)
    }

    fn perfect_config() -> BraidConfig {
        let mut c = BraidConfig::paper_default();
        c.common = CommonConfig::paper_8wide().perfect();
        c.common.mispredict_penalty = 19;
        c
    }

    const PARALLEL_LOOP: &str = r#"
        addi r0, #200, r1
    loop:
        addq r2, r1, r2
        addq r3, r1, r3
        addq r4, r1, r4
        addq r5, r1, r5
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn retires_everything() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let r = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
        assert!(r.ipc() > 1.0, "ipc {}", r.ipc());
    }

    #[test]
    fn zero_allocation_bandwidth_trips_the_watchdog() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let mut starved = perfect_config();
        starved.alloc_ext_per_cycle = 0;
        starved.common.watchdog_cycles = 500;
        match BraidCore::new(starved).run(&p, &t) {
            Err(SimError::Livelock(report)) => {
                assert_eq!(report.core, "braid");
                assert_eq!(report.watchdog_cycles, 500);
                let text = report.to_string();
                assert!(text.contains("livelock"), "{text}");
                assert!(!report.queues.is_empty(), "dump must list the BEU FIFOs");
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn impossible_config_is_rejected() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let mut bad = perfect_config();
        bad.beus = 0;
        assert!(matches!(BraidCore::new(bad).run(&p, &t), Err(SimError::Config(_))));
    }

    #[test]
    fn more_beus_help_parallel_braids() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let mut one = perfect_config();
        one.beus = 1;
        let r1 = BraidCore::new(one).run(&p, &t).expect("runs");
        let r8 = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(
            r8.ipc() > r1.ipc() * 1.3,
            "8 BEUs {} vs 1 BEU {}",
            r8.ipc(),
            r1.ipc()
        );
    }

    #[test]
    fn tiny_external_file_throttles() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let mut small = perfect_config();
        small.external_regs = 1;
        let r1 = BraidCore::new(small).run(&p, &t).expect("runs");
        let r8 = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r1.stall_regs > 0);
        assert!(r1.ipc() < r8.ipc(), "1 ext reg {} vs 8 {}", r1.ipc(), r8.ipc());
    }

    #[test]
    fn window_of_two_beats_window_of_one() {
        // Braids with two independent heads profit from a 2-entry window.
        let (p, t) = braid_trace(
            r#"
                addi r0, #300, r1
            loop:
                addq r2, r1, r3
                addq r2, r1, r4
                addq r3, r4, r2
                stq  r2, 0(r9)
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let mut w1 = perfect_config();
        w1.window_size = 1;
        let r1 = BraidCore::new(w1).run(&p, &t).expect("runs");
        let r2 = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        // Second-order issue-ordering effects can shave fractions of a
        // percent; the wider window must never *lose* materially.
        assert!(r2.ipc() >= r1.ipc() * 0.99, "w2 {} vs w1 {}", r2.ipc(), r1.ipc());
    }

    #[test]
    fn internal_values_skip_the_bypass_network() {
        // A long internal chain: external traffic stays low even with a
        // 1-value/cycle bypass.
        let (p, t) = braid_trace(
            r#"
                addi r0, #200, r1
            loop:
                addq r1, r1, r2
                addq r2, r1, r2
                addq r2, r1, r2
                addq r2, r1, r2
                stq  r2, 0(r9)
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let mut narrow = perfect_config();
        narrow.bypass_per_cycle = 1;
        let r_narrow = BraidCore::new(narrow).run(&p, &t).expect("runs");
        let r_full = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        let loss = 1.0 - r_narrow.ipc() / r_full.ipc();
        assert!(loss < 0.10, "narrow bypass costs {:.1}% with internal chains", loss * 100.0);
        assert!(r_full.external_values_per_cycle < 3.0);
    }

    #[test]
    fn long_braids_need_fifo_depth() {
        // One braid of ~24 dependent instructions: a 4-entry FIFO stalls
        // distribution (paper Figure 10).
        let mut body = String::from("addi r0, #100, r1\nloop:\n");
        body.push_str("addq r1, r1, r2\n");
        for _ in 0..22 {
            body.push_str("addq r2, r1, r2\n");
        }
        body.push_str("stq r2, 0(r9)\nsubi r1, #1, r1\nbne r1, loop\nhalt");
        let (p, t) = braid_trace(&body);
        let mut small = perfect_config();
        small.fifo_entries = 4;
        let r4 = BraidCore::new(small).run(&p, &t).expect("runs");
        let r32 = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r4.ipc() <= r32.ipc());
        assert!(r4.stall_window > 0, "distribution stalled on FIFO space");
    }

    #[test]
    fn checkpoints_are_smaller_than_conventional() {
        let (p, t) = braid_trace(PARALLEL_LOOP);
        let r = BraidCore::new(perfect_config()).run(&p, &t).expect("runs");
        let branches = 200;
        assert_eq!(r.checkpoint_words, branches * 8);
    }
}

#[cfg(test)]
mod exception_tests {
    use super::*;
    use crate::config::CommonConfig;
    use crate::functional::Machine;
    use braid_compiler::{translate, TranslatorConfig};
    use braid_isa::asm::assemble;

    fn braid_trace(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 1_000_000).unwrap();
        (t.program, trace)
    }

    fn perfect_config() -> BraidConfig {
        let mut c = BraidConfig::paper_default();
        c.common = CommonConfig::paper_8wide().perfect();
        c.common.mispredict_penalty = 19;
        c
    }

    const LOOP: &str = r#"
        addi r0, #300, r1
    loop:
        addq r2, r1, r2
        addq r3, r1, r3
        addq r4, r1, r4
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn exceptions_still_retire_everything() {
        let (p, t) = braid_trace(LOOP);
        let core = BraidCore::new(perfect_config());
        let r = core.run_with_exceptions(&p, &t, &[100, 500, 900], 200).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
        assert_eq!(r.exceptions_taken, 3);
    }

    #[test]
    fn exceptions_cost_cycles() {
        let (p, t) = braid_trace(LOOP);
        let core = BraidCore::new(perfect_config());
        let clean = core.run(&p, &t).expect("runs");
        let excepted = core.run_with_exceptions(&p, &t, &[300, 600], 500).expect("runs");
        assert!(
            excepted.cycles > clean.cycles + 800,
            "two 500-cycle handlers plus in-order episodes: {} vs {}",
            excepted.cycles,
            clean.cycles
        );
        assert_eq!(excepted.exceptions_taken, 2);
    }

    #[test]
    fn out_of_range_exceptions_are_ignored() {
        let (p, t) = braid_trace(LOOP);
        let core = BraidCore::new(perfect_config());
        let r = core.run_with_exceptions(&p, &t, &[u64::MAX - 1], 100).expect("runs");
        assert_eq!(r.exceptions_taken, 0);
        assert_eq!(r.instructions, t.len() as u64);
    }

    #[test]
    fn paper_simplicity_over_speed() {
        // §3.4: "simplicity was chosen over speed" — an exception-heavy run
        // on the braid machine costs real time even with a free handler.
        let (p, t) = braid_trace(LOOP);
        let core = BraidCore::new(perfect_config());
        let clean = core.run(&p, &t).expect("runs");
        let every: Vec<u64> = (0..t.len() as u64).step_by(200).collect();
        let r = core.run_with_exceptions(&p, &t, &every, 0).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
        assert!(r.cycles > clean.cycles, "{} vs {}", r.cycles, clean.cycles);
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use crate::config::CommonConfig;
    use crate::functional::Machine;
    use braid_compiler::{translate, TranslatorConfig};
    use braid_isa::asm::assemble;

    #[test]
    fn clustering_trades_latency_for_wiring() {
        // Chains that communicate across braids through external values:
        // cross-cluster synchronization costs cycles (paper §5.2).
        let src = r#"
            addi r0, #500, r1
        loop:
            addq r2, r1, r2
            addq r2, r3, r3
            addq r3, r4, r4
            addq r4, r5, r5
            subi r1, #1, r1
            bne  r1, loop
            halt
        "#;
        let p = assemble(src).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 1_000_000).unwrap();

        let mut flat = BraidConfig::paper_default();
        flat.common = CommonConfig::paper_8wide().perfect();
        flat.common.mispredict_penalty = 19;
        let mut clustered = flat.clone();
        clustered.clusters = 4;
        clustered.inter_cluster_delay = 4;

        let rf = BraidCore::new(flat).run(&t.program, &trace).expect("runs");
        let rc = BraidCore::new(clustered).run(&t.program, &trace).expect("runs");
        assert_eq!(rf.instructions, rc.instructions);
        assert!(
            rc.ipc() <= rf.ipc(),
            "cross-cluster delays cannot speed things up: {} vs {}",
            rc.ipc(),
            rf.ipc()
        );
    }

    #[test]
    fn single_cluster_is_identical_to_flat() {
        let p = assemble("addi r0, #50, r1\nloop: addq r2, r1, r2\nsubi r1, #1, r1\nbne r1, loop\nhalt").unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 100_000).unwrap();
        let mut a = BraidConfig::paper_default();
        a.common = CommonConfig::paper_8wide().perfect();
        let mut b = a.clone();
        b.clusters = 1;
        b.inter_cluster_delay = 99;
        let ra = BraidCore::new(a).run(&t.program, &trace).expect("runs");
        let rb = BraidCore::new(b).run(&t.program, &trace).expect("runs");
        assert_eq!(ra.cycles, rb.cycles);
    }
}
