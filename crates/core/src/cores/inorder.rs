//! The in-order baseline of the paper's Figure 13.
//!
//! A scoreboarded in-order machine: a single instruction queue whose head
//! `width` entries issue strictly in order (stop at the first not-ready
//! instruction), with full bypassing and no renaming.

use std::collections::VecDeque;

use braid_isa::Program;
use braid_uarch::cache::MemoryHierarchy;

use crate::config::InOrderConfig;
use crate::cores::common::Engine;
use crate::error::SimError;
use crate::obs::{NoopObserver, Observer};
use crate::report::SimReport;
use crate::trace::Trace;

/// The in-order timing model.
#[derive(Debug, Clone)]
pub struct InOrderCore {
    config: InOrderConfig,
}

impl InOrderCore {
    /// Creates the core with `config`.
    pub fn new(config: InOrderConfig) -> InOrderCore {
        InOrderCore { config }
    }

    /// Simulates `trace` of `program`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for an impossible machine description,
    /// [`SimError::Livelock`] if the pipeline stops retiring.
    pub fn run(&self, program: &Program, trace: &Trace) -> Result<SimReport, SimError> {
        self.run_observed(program, trace, &mut NoopObserver)
    }

    /// Like [`InOrderCore::run`], sending pipeline events to `obs` (the
    /// no-op observer path is identical to [`InOrderCore::run`]).
    ///
    /// # Errors
    ///
    /// As for [`InOrderCore::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, obs, None)
    }

    /// Like [`InOrderCore::run`], but starting from a pre-warmed memory
    /// hierarchy instead of cold caches. Used by sampled simulation, where
    /// functional warming supplies the cache state a continuous run would
    /// have at the window start.
    ///
    /// # Errors
    ///
    /// As for [`InOrderCore::run`].
    pub fn run_warmed(
        &self,
        program: &Program,
        trace: &Trace,
        mem: MemoryHierarchy,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, trace, &mut NoopObserver, Some(mem))
    }

    fn run_inner<O: Observer>(
        &self,
        program: &Program,
        trace: &Trace,
        obs: &mut O,
        warm: Option<MemoryHierarchy>,
    ) -> Result<SimReport, SimError> {
        let cfg = &self.config;
        cfg.validate()?;
        let mut eng = Engine::new(program, trace, &cfg.common, obs);
        if let Some(mem) = warm {
            eng.mem = mem;
        }
        let mut queue: VecDeque<u64> = VecDeque::new();

        while !eng.finished() {
            eng.retire_phase(|_, _| {});

            // Strict in-order issue of up to `width` instructions.
            let mut fus_left = cfg.fus.min(cfg.common.width);
            while fus_left > 0 {
                let Some(&seq) = queue.front() else { break };
                if !eng.deps_ready(seq) {
                    break;
                }
                // Full bypass: values are visible at completion.
                if !eng.issue(seq, |_, complete| complete) {
                    break;
                }
                queue.pop_front();
                fus_left -= 1;
            }

            // Dispatch (decode) into the issue queue.
            let mut dispatched = 0;
            while dispatched < cfg.common.width {
                let Some(f) = eng.queue.front().copied() else { break };
                if !eng.admit(&f) {
                    break;
                }
                eng.queue.pop_front();
                let seq = eng.dispatch_slot(&f, 0);
                queue.push_back(seq);
                dispatched += 1;
            }

            eng.fetch_phase();
            if O::ENABLED {
                eng.obs.unit_occupancy(0, queue.len() as u32);
            }
            if !eng.advance() {
                let dump = vec![eng.describe_queue("queue", &mut queue.iter().copied())];
                return Err(eng.livelock("inorder", dump));
            }
        }
        Ok(eng.finish(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CommonConfig, OooConfig};
    use crate::cores::ooo::OooCore;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;

    fn trace_of(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 1_000_000).unwrap();
        (p, t)
    }

    fn perfect_config() -> InOrderConfig {
        let mut c = InOrderConfig::paper_8wide();
        c.common = CommonConfig::paper_8wide().perfect();
        c.common.mispredict_penalty = 19;
        c.common.window = 64;
        c
    }

    #[test]
    fn retires_everything_in_order() {
        let (p, t) = trace_of(
            "addi r0, #50, r1\nloop: addq r2, r1, r2\nsubi r1, #1, r1\nbne r1, loop\nhalt",
        );
        let r = InOrderCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert_eq!(r.instructions, t.len() as u64);
    }

    #[test]
    fn long_latency_stalls_everything_behind() {
        // A multiply feeding nothing still blocks younger independent adds
        // only until it issues — but a *load miss* at the head blocks
        // issue of everything younger until it completes.
        let (p, t) = trace_of(
            r#"
                addi r0, #64, r1
            loop:
                slli r1, #8, r3
                ldq  r4, 0(r3)
                addi r5, #1, r5
                addi r6, #1, r6
                addi r7, #1, r7
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let mut real = perfect_config();
        real.common.mem = braid_uarch::cache::MemoryHierarchyConfig::default();
        let io = InOrderCore::new(real.clone()).run(&p, &t).expect("runs");
        let mut ooo_cfg = OooConfig::paper_8wide();
        ooo_cfg.common = real.common.clone();
        ooo_cfg.common.mispredict_penalty = 23;
        let ooo = OooCore::new(ooo_cfg).run(&p, &t).expect("runs");
        assert!(
            io.ipc() < ooo.ipc(),
            "in-order {} must trail out-of-order {}",
            io.ipc(),
            ooo.ipc()
        );
    }

    #[test]
    fn wide_inorder_issues_parallel_work() {
        let (p, t) = trace_of(
            r#"
                addi r0, #300, r1
            loop:
                addi r2, #1, r2
                addi r3, #1, r3
                addi r4, #1, r4
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        let r = InOrderCore::new(perfect_config()).run(&p, &t).expect("runs");
        assert!(r.ipc() > 2.0, "independent ops issue together: {}", r.ipc());
    }
}
