//! Per-run simulation statistics.

use std::fmt;

use braid_uarch::stats::Ratio;

use crate::obs::CpiStack;

/// Statistics produced by one timing-simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Conditional-branch prediction accuracy.
    pub branch_accuracy: Ratio,
    /// Return-target prediction accuracy.
    pub ras_accuracy: Ratio,
    /// L1 instruction cache hits.
    pub l1i: Ratio,
    /// L1 data cache hits.
    pub l1d: Ratio,
    /// Unified L2 hits.
    pub l2: Ratio,
    /// Loads forwarded from older stores.
    pub forwarded_loads: u64,
    /// Cycles the front end was stalled refilling after a misprediction.
    pub mispredict_stall_cycles: u64,
    /// Dispatch stalls: no free register-buffer / external-register entry.
    pub stall_regs: u64,
    /// Dispatch stalls: no scheduler / FIFO space.
    pub stall_window: u64,
    /// Dispatch stalls: load-store queue full.
    pub stall_lsq: u64,
    /// Load issue attempts rejected by memory-ordering (LSQ) waits.
    pub lsq_wait_events: u64,
    /// Dispatch stalls: allocation/rename bandwidth exhausted.
    pub stall_alloc_bw: u64,
    /// External (register) values produced per cycle — the braid paper's
    /// §5.1 observes ~2/cycle.
    pub external_values_per_cycle: f64,
    /// Checkpoint state words saved (smaller in the braid machine).
    pub checkpoint_words: u64,
    /// Exceptions taken (braid machine: single-BEU in-order episodes).
    pub exceptions_taken: u64,
    /// Host wall-clock nanoseconds the timing run took. **Not
    /// deterministic** — excluded from sweep aggregation and golden files.
    pub host_nanos: u64,
    /// Total retirement slots offered (`cycles × width`); with
    /// [`SimReport::instructions`] this gives retire-bandwidth utilization.
    pub retire_slots: u64,
    /// The CPI stack: every cycle attributed to exactly one cause
    /// ([`CpiStack::total`] always equals [`SimReport::cycles`]).
    pub cpi: CpiStack,
}

impl SimReport {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over `baseline` (ratio of IPCs).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }

    /// Host throughput: simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.host_nanos as f64
        }
    }

    /// Host throughput: retired instructions per wall-clock second.
    pub fn sim_insts_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e9 / self.host_nanos as f64
        }
    }

    /// Fraction of retirement slots actually used (`instructions /
    /// (cycles × width)`).
    pub fn retire_slot_utilization(&self) -> f64 {
        if self.retire_slots == 0 {
            0.0
        } else {
            self.instructions as f64 / self.retire_slots as f64
        }
    }

    /// Sum of every stall-event counter (dispatch stalls on registers,
    /// window, LSQ capacity and allocation bandwidth, plus load
    /// memory-ordering waits). These are *events*, not cycles — a single
    /// cycle can record several — so this complements, rather than
    /// duplicates, the per-cycle [`SimReport::cpi`] stack.
    pub fn stall_total(&self) -> u64 {
        self.stall_regs
            + self.stall_window
            + self.stall_lsq
            + self.stall_alloc_bw
            + self.lsq_wait_events
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} insts in {} cycles: IPC {:.3}",
            self.instructions,
            self.cycles,
            self.ipc(),
        )?;
        writeln!(
            f,
            "  branches {}, ras {}, L1I {}, L1D {}, L2 {}",
            self.branch_accuracy, self.ras_accuracy, self.l1i, self.l1d, self.l2
        )?;
        writeln!(
            f,
            "  stalls: regs {} window {} lsq {} alloc {} lsqwait {} (total {}); ext values/cycle {:.2}",
            self.stall_regs,
            self.stall_window,
            self.stall_lsq,
            self.stall_alloc_bw,
            self.lsq_wait_events,
            self.stall_total(),
            self.external_values_per_cycle
        )?;
        writeln!(
            f,
            "  mispredict-stall cycles {}, forwarded loads {}, checkpoint words {}, exceptions {}",
            self.mispredict_stall_cycles,
            self.forwarded_loads,
            self.checkpoint_words,
            self.exceptions_taken
        )?;
        write!(
            f,
            "  host: {:.2} Mcycles/s, {:.2} Minsts/s, retire-slot util {:.1}%",
            self.sim_cycles_per_sec() / 1e6,
            self.sim_insts_per_sec() / 1e6,
            self.retire_slot_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let a = SimReport { cycles: 100, instructions: 250, ..SimReport::default() };
        let b = SimReport { cycles: 100, instructions: 125, ..SimReport::default() };
        assert!((a.ipc() - 2.5).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        assert_eq!(SimReport::default().ipc(), 0.0);
        assert_eq!(a.speedup_over(&SimReport::default()), 0.0);
    }

    #[test]
    fn display_mentions_ipc() {
        let a = SimReport { cycles: 10, instructions: 20, ..SimReport::default() };
        assert!(a.to_string().contains("IPC 2.000"));
    }

    #[test]
    fn stall_total_sums_every_counter() {
        let r = SimReport {
            stall_regs: 1,
            stall_window: 2,
            stall_lsq: 4,
            lsq_wait_events: 8,
            stall_alloc_bw: 16,
            ..SimReport::default()
        };
        assert_eq!(r.stall_total(), 31);
        assert_eq!(SimReport::default().stall_total(), 0);
    }

    #[test]
    fn display_prints_every_stall_counter() {
        // Once-omitted fields (mispredict stall cycles, forwarded loads,
        // checkpoint words, exceptions) must all be visible.
        let r = SimReport {
            cycles: 10,
            instructions: 5,
            mispredict_stall_cycles: 111,
            forwarded_loads: 222,
            checkpoint_words: 333,
            exceptions_taken: 444,
            stall_regs: 555,
            stall_window: 666,
            stall_lsq: 777,
            lsq_wait_events: 888,
            stall_alloc_bw: 999,
            ..SimReport::default()
        };
        let text = r.to_string();
        for n in ["111", "222", "333", "444", "555", "666", "777", "888", "999"] {
            assert!(text.contains(n), "missing {n} in {text}");
        }
        assert!(text.contains(&format!("total {}", r.stall_total())), "{text}");
    }
}
