//! The architectural executor.
//!
//! [`Machine`] executes BRISC programs instruction-at-a-time. It is
//! *braid-aware*: when the translator has set the `S`/`T`/`I`/`E` bits, the
//! machine maintains the braid's internal register context alongside the
//! external (architectural) register file, exactly as a single braid
//! execution unit would. Unannotated programs (every instruction its own
//! braid, all values external) execute conventionally.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use braid_isa::{Opcode, Program, Reg};

use crate::trace::{Trace, TraceEntry};

/// Sparse byte-addressable memory backed by 4 KiB pages.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

/// Memory page granularity in bytes (also the [`crate::func::ArchSnapshot`]
/// delta granularity).
pub const PAGE_SIZE: usize = 4096;

const PAGE: usize = PAGE_SIZE;

impl Memory {
    /// Creates empty (zero-filled) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE as u64)) {
            Some(page) => page[(addr % PAGE as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE as u64)
            .or_insert_with(|| Box::new([0; PAGE]));
        page[(addr % PAGE as u64) as usize] = value;
    }

    /// Reads `N` little-endian bytes (the address space wraps).
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes (the address space wraps).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Every page holding at least one non-zero byte, as `(page index,
    /// contents)` sorted by page index. Untouched and all-zero pages are
    /// equivalent (both read zero), so this is the canonical memory delta
    /// for architectural state comparison (see [`crate::func::ArchSnapshot`]).
    pub fn nonzero_pages(&self) -> Vec<(u64, Box<[u8; PAGE_SIZE]>)> {
        let mut out: Vec<(u64, Box<[u8; PAGE_SIZE]>)> = self
            .pages
            .iter()
            .filter(|(_, p)| p.iter().any(|&b| b != 0))
            .map(|(&i, p)| (i, p.clone()))
            .collect();
        out.sort_by_key(|(i, _)| *i);
        out
    }
}

/// Errors during architectural execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// Control transferred outside the program.
    PcOutOfRange(u64),
    /// A `T`-annotated source found no value in the internal context —
    /// an annotation bug.
    MissingInternal {
        /// Instruction index.
        idx: u32,
        /// The register whose internal value was absent.
        reg: Reg,
    },
    /// The instruction budget was exhausted before `halt`.
    OutOfFuel,
    /// A control-flow instruction carries no encoded target — a malformed
    /// (hand-built or corrupted) program.
    MissingTarget {
        /// The program counter of the offending instruction.
        pc: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program"),
            ExecError::MissingInternal { idx, reg } => {
                write!(f, "instruction {idx}: internal value for {reg} missing")
            }
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted before halt"),
            ExecError::MissingTarget { pc } => {
                write!(f, "control-flow instruction at pc {pc} has no target")
            }
        }
    }
}

impl Error for ExecError {}

/// The architectural machine state.
#[derive(Debug, Clone)]
pub struct Machine {
    /// External (architectural) register file; `regs[0]` stays zero.
    regs: [u64; 64],
    /// The current braid's internal register context, keyed by the
    /// annotated register specifier. Cleared at every braid start.
    internal: HashMap<u8, u64>,
    /// Data memory.
    pub mem: Memory,
    pc: u64,
    halted: bool,
    executed: u64,
}

impl Machine {
    /// Creates a machine with `program`'s data segments loaded and the pc
    /// at its entry.
    pub fn new(program: &Program) -> Machine {
        let mut mem = Memory::new();
        for seg in &program.data {
            mem.write_bytes(seg.base, &seg.bytes);
        }
        Machine {
            regs: [0; 64],
            internal: HashMap::new(),
            mem,
            pc: program.entry as u64,
            halted: false,
            executed: 0,
        }
    }

    /// Reads an external (architectural) register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// The whole external register file, indexed by [`Reg::index`].
    pub fn regs(&self) -> &[u64; 64] {
        &self.regs
    }

    /// Sets an external register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Whether `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The current program counter (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    fn read_operand(
        &self,
        program: &Program,
        idx: u32,
        slot: usize,
        reg: Reg,
        internal: bool,
    ) -> Result<u64, ExecError> {
        let _ = (program, slot);
        if reg.is_zero() {
            return Ok(0);
        }
        if internal {
            self.internal
                .get(&reg.index())
                .copied()
                .ok_or(ExecError::MissingInternal { idx, reg })
        } else {
            Ok(self.regs[reg.index() as usize])
        }
    }

    fn target_of(&self, inst: &braid_isa::Inst) -> Result<u64, ExecError> {
        inst.target()
            .map(|t| t as u64)
            .ok_or(ExecError::MissingTarget { pc: self.pc })
    }

    /// Executes one instruction, returning its trace entry.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn step(&mut self, program: &Program) -> Result<TraceEntry, ExecError> {
        if self.pc as usize >= program.insts.len() {
            return Err(ExecError::PcOutOfRange(self.pc));
        }
        let idx = self.pc as u32;
        let inst = &program.insts[idx as usize];
        let op = inst.opcode;
        if inst.braid.start {
            self.internal.clear();
        }

        // Operand fetch.
        let mut src = [0u64; 2];
        for (slot, r) in inst.src_regs().enumerate() {
            src[slot] = self.read_operand(program, idx, slot, r, inst.braid.t[slot])?;
        }
        // Conditional moves read the old destination from whichever file
        // the current braid holds it in.
        let old_dest = match (op.reads_dest(), inst.dest) {
            (true, Some(d)) => match self.internal.get(&d.index()) {
                Some(&v) => v,
                None => self.regs[d.index() as usize],
            },
            _ => 0,
        };
        let imm = inst.imm as i64 as u64;
        let f = |bits: u64| f64::from_bits(bits);
        let b = |x: f64| x.to_bits();

        let mut next_pc = self.pc + 1;
        let mut mem_addr = 0u64;
        let mut taken = false;
        let mut result: Option<u64> = None;

        use Opcode::*;
        match op {
            Add => result = Some(src[0].wrapping_add(src[1])),
            Sub => result = Some(src[0].wrapping_sub(src[1])),
            Mul => result = Some(src[0].wrapping_mul(src[1])),
            Div => {
                result = Some(if src[1] == 0 {
                    0
                } else {
                    (src[0] as i64).wrapping_div(src[1] as i64) as u64
                })
            }
            And => result = Some(src[0] & src[1]),
            Or => result = Some(src[0] | src[1]),
            Xor => result = Some(src[0] ^ src[1]),
            Andnot => result = Some(src[0] & !src[1]),
            Sll => result = Some(src[0] << (src[1] & 63)),
            Srl => result = Some(src[0] >> (src[1] & 63)),
            Sra => result = Some(((src[0] as i64) >> (src[1] & 63)) as u64),
            Cmpeq => result = Some((src[0] == src[1]) as u64),
            Cmplt => result = Some(((src[0] as i64) < (src[1] as i64)) as u64),
            Cmple => result = Some(((src[0] as i64) <= (src[1] as i64)) as u64),
            Cmpult => result = Some((src[0] < src[1]) as u64),
            Addi | Lda => result = Some(src[0].wrapping_add(imm)),
            Subi => result = Some(src[0].wrapping_sub(imm)),
            Muli => result = Some(src[0].wrapping_mul(imm)),
            Andi => result = Some(src[0] & imm),
            Ori => result = Some(src[0] | imm),
            Xori => result = Some(src[0] ^ imm),
            Slli => result = Some(src[0] << (imm & 63)),
            Srli => result = Some(src[0] >> (imm & 63)),
            Srai => result = Some(((src[0] as i64) >> (imm & 63)) as u64),
            Cmpeqi => result = Some((src[0] == imm) as u64),
            Cmplti => result = Some(((src[0] as i64) < (imm as i64)) as u64),
            Zapnot => {
                let mut v = 0u64;
                for byte in 0..8 {
                    if imm >> byte & 1 == 1 {
                        v |= src[0] & (0xff << (byte * 8));
                    }
                }
                result = Some(v);
            }
            Cmovne => result = Some(if src[0] != 0 { src[1] } else { old_dest }),
            Cmoveq => result = Some(if src[0] == 0 { src[1] } else { old_dest }),
            Cmovnei => result = Some(if src[0] != 0 { imm } else { old_dest }),
            Fadd => result = Some(b(f(src[0]) + f(src[1]))),
            Fsub => result = Some(b(f(src[0]) - f(src[1]))),
            Fmul => result = Some(b(f(src[0]) * f(src[1]))),
            Fdiv => result = Some(b(f(src[0]) / f(src[1]))),
            Fsqrt => result = Some(b(f(src[0]).sqrt())),
            Fcmpeq => result = Some((f(src[0]) == f(src[1])) as u64),
            Fcmplt => result = Some((f(src[0]) < f(src[1])) as u64),
            Fcmple => result = Some((f(src[0]) <= f(src[1])) as u64),
            Fcmovne => result = Some(if src[0] != 0 { src[1] } else { old_dest }),
            Cvtif => result = Some(b(src[0] as i64 as f64)),
            Cvtfi => result = Some(f(src[0]) as i64 as u64),
            Ldl => {
                mem_addr = src[0].wrapping_add(imm);
                result = Some(self.mem.read_u32(mem_addr) as i32 as i64 as u64);
            }
            Ldq | Fldd => {
                mem_addr = src[0].wrapping_add(imm);
                result = Some(self.mem.read_u64(mem_addr));
            }
            Stl => {
                mem_addr = src[1].wrapping_add(imm);
                self.mem.write_bytes(mem_addr, &(src[0] as u32).to_le_bytes());
            }
            Stq | Fstd => {
                mem_addr = src[1].wrapping_add(imm);
                self.mem.write_u64(mem_addr, src[0]);
            }
            Br => {
                taken = true;
                next_pc = self.target_of(inst)?;
            }
            Beq | Bne | Blt | Bge | Ble | Bgt => {
                let v = src[0] as i64;
                taken = match op {
                    Beq => v == 0,
                    Bne => v != 0,
                    Blt => v < 0,
                    Bge => v >= 0,
                    Ble => v <= 0,
                    _ => v > 0,
                };
                if taken {
                    next_pc = self.target_of(inst)?;
                }
            }
            Call => {
                taken = true;
                result = Some(self.pc + 1);
                next_pc = self.target_of(inst)?;
            }
            Ret => {
                taken = true;
                next_pc = src[0];
            }
            Nop => {}
            Halt => {
                self.halted = true;
                next_pc = self.pc;
            }
        }

        if let (Some(v), Some(d)) = (result, inst.dest) {
            if inst.braid.internal {
                self.internal.insert(d.index(), v);
            }
            if inst.braid.external {
                self.set_reg(d, v);
            }
        }

        self.executed += 1;
        let entry = TraceEntry {
            idx,
            next_idx: next_pc as u32,
            addr: mem_addr,
            taken,
        };
        self.pc = next_pc;
        Ok(entry)
    }

    /// Runs until `halt` or `max_insts` instructions, recording the trace.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::OutOfFuel`] if the budget runs out, or any
    /// execution error.
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<Trace, ExecError> {
        let mut entries = Vec::new();
        while !self.halted {
            if self.executed >= max_insts {
                return Err(ExecError::OutOfFuel);
            }
            entries.push(self.step(program)?);
        }
        Ok(Trace { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_compiler::{translate, TranslatorConfig};
    use braid_isa::asm::assemble;

    fn run_program(src: &str) -> (Machine, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 100_000).unwrap();
        (m, t)
    }

    fn r(n: u8) -> Reg {
        Reg::int(n).unwrap()
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let (m, t) = run_program(
            r#"
                addi r0, #10, r1
            loop:
                addq r2, r1, r2
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        );
        assert_eq!(m.reg(r(2)), 55);
        assert_eq!(t.entries.len(), 1 + 10 * 3 + 1);
    }

    #[test]
    fn memory_round_trip() {
        let (m, _) = run_program(
            r#"
                addi r0, #0x1000, r1
                addi r0, #-7, r2
                stq  r2, 0(r1)
                ldq  r3, 0(r1)
                stl  r2, 8(r1)
                ldl  r4, 8(r1)
                halt
            "#,
        );
        assert_eq!(m.reg(r(3)) as i64, -7);
        assert_eq!(m.reg(r(4)) as i64, -7, "ldl sign-extends");
    }

    #[test]
    fn data_segments_preloaded() {
        let (m, _) = run_program(
            r#"
                addi r0, #0x2000, r1
                ldq  r2, 0(r1)
                ldq  r3, 8(r1)
                halt
                .data 0x2000 41 1
            "#,
        );
        assert_eq!(m.reg(r(2)), 41);
        assert_eq!(m.reg(r(3)), 1);
    }

    #[test]
    fn floating_point() {
        let (m, _) = run_program(
            r#"
                addi r0, #9, r1
                cvtqt r1, f1
                sqrtt f1, f2
                addt  f1, f2, f3
                cvttq f3, r2
                cmptlt f2, f1, r3
                halt
            "#,
        );
        assert_eq!(m.reg(r(2)), 12, "9.0 + 3.0");
        assert_eq!(m.reg(r(3)), 1, "3.0 < 9.0");
    }

    #[test]
    fn cmov_keeps_old_value() {
        let (m, _) = run_program(
            r#"
                addi r0, #5, r6
                addi r0, #0, r2
                cmovnei r2, #9, r6    ; condition false: r6 stays 5
                addi r0, #1, r3
                cmovnei r3, #9, r7    ; condition true: r7 = 9
                halt
            "#,
        );
        assert_eq!(m.reg(r(6)), 5);
        assert_eq!(m.reg(r(7)), 9);
    }

    #[test]
    fn call_and_ret_flow() {
        let (m, t) = run_program(
            r#"
                call f, r31
                addi r1, #100, r1
                halt
            f:
                addi r0, #1, r1
                ret r31
            "#,
        );
        assert_eq!(m.reg(r(1)), 101);
        // call, f body, ret, add, halt
        assert_eq!(t.entries.len(), 5);
        assert_eq!(t.entries[0].next_idx, 3);
        assert_eq!(t.entries[2].next_idx, 1);
    }

    #[test]
    fn zapnot_masks_bytes() {
        let (m, _) = run_program(
            r#"
                addi r0, #0x1234, r1
                slli r1, #16, r1
                ori  r1, #0x5678, r1
                zapnot r1, #3, r2    ; keep low two bytes
                halt
            "#,
        );
        assert_eq!(m.reg(r(2)), 0x5678);
    }

    #[test]
    fn writes_to_zero_register_discarded() {
        let (m, _) = run_program("addi r0, #7, r0\nhalt");
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let p = assemble("loop: br loop\nhalt").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p, 100).unwrap_err(), ExecError::OutOfFuel);
    }

    /// The key end-to-end property: a braid-translated program computes the
    /// same architectural state as the original.
    #[test]
    fn translation_preserves_semantics() {
        let src = r#"
            start:
                addi r0, #0x1000, r20
                addi r0, #16, r21
                addi r0, #0, r22
            loop:
                addq r17, r4, r10
                addq r16, r4, r11
                ldl  r3, 0(r10)
                addi r5, #1, r5
                ldl  r12, 0(r11)
                cmpeq r21, r5, r7
                andnot r3, r12, r9
                and  r9, r12, r9
                zapnot r9, #15, r9
                addq r22, r9, r22
                stq  r22, 0(r20)
                lda  r4, 4(r4)
                beq  r7, loop
                halt
                .data 0x0 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3
        "#;
        let p = assemble(src).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();

        let mut m1 = Machine::new(&p);
        m1.run(&p, 100_000).unwrap();
        let mut m2 = Machine::new(&t.program);
        m2.run(&t.program, 100_000).unwrap();

        // Dead values (like the loop-exit compare in r7) are legitimately
        // discarded by the braid machine — the paper's internal values never
        // reach the external file. Every *live* output must match.
        for reg in [r(4), r(5), r(20), r(21), r(22)] {
            assert_eq!(m1.reg(reg), m2.reg(reg), "register {reg} differs after translation");
        }
        assert_eq!(m1.mem.read_u64(0x1000), m2.mem.read_u64(0x1000));
        assert_eq!(m1.executed(), m2.executed());
    }
}
