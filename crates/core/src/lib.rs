//! # braid-core: the braid microarchitecture and its baselines
//!
//! Cycle-level execution-core models for *Achieving Out-of-Order
//! Performance with Almost In-Order Complexity* (Tseng & Patt, ISCA 2008):
//!
//! * [`functional`] — an architectural (braid-aware) executor for BRISC
//!   programs; it honours the `S`/`T`/`I`/`E` annotation bits, so it both
//!   produces dynamic traces and validates that translated programs compute
//!   the same results as their originals.
//! * [`trace`] — the dynamic instruction trace consumed by the timing
//!   models.
//! * [`frontend`] — the shared aggressive front end (8-wide fetch, up to 3
//!   branches per cycle, perceptron or perfect prediction, I-cache).
//! * [`cores`] — the four execution cores of the paper's Figure 13:
//!   conventional out-of-order, the **braid microarchitecture**, in-order,
//!   and FIFO dependence-based steering (Palacharla-style).
//! * [`config`] — Table 4 processor configurations with builders.
//! * [`report`] — per-run statistics ([`SimReport`]).
//! * [`obs`] — the cycle-accounting taxonomy (CPI stacks) and the
//!   zero-overhead-when-disabled pipeline [`obs::Observer`] trait.
//! * [`profile`] — dynamic value fanout/lifetime profiling (the paper's §1
//!   characterization).
//! * [`processor`] — one-call pipelines combining translation, functional
//!   execution and timing simulation.
//! * [`func`] — the fast functional tier (block-batched interpreter over
//!   the predecode tables) and the sampled-timing driver that extrapolates
//!   IPC/CPI stacks from timed intervals.
//!
//! ## Quick start
//!
//! ```
//! use braid_core::config::{BraidConfig, OooConfig};
//! use braid_core::processor::{run_braid, run_ooo};
//! use braid_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!         addi r0, #100, r1
//!     loop:
//!         subi r1, #1, r1
//!         addq r2, r1, r2
//!         bne  r1, loop
//!         halt
//!     "#,
//! )?;
//! let ooo = run_ooo(&program, &OooConfig::paper_8wide(), 10_000)?;
//! let braid = run_braid(&program, &BraidConfig::paper_default(), 10_000)?;
//! assert!(braid.ipc() > 0.0 && ooo.ipc() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cores;
pub mod error;
pub mod frontend;
pub mod func;
pub mod functional;
pub mod obs;
pub mod predecode;
pub mod processor;
pub mod profile;
pub mod report;
pub mod trace;

pub use config::{BraidConfig, CommonConfig, DepConfig, InOrderConfig, OooConfig};
pub use error::{LivelockReport, SimError};
pub use func::{
    ArchSnapshot, FastMachine, FuncReport, FuncTable, SampleError, SampledReport, SamplingConfig,
    Tier,
};
pub use functional::{ExecError, Machine};
pub use obs::{CpiStack, NoopObserver, Observer, StallCause};
pub use processor::{
    run_annotated, run_braid, run_dep, run_inorder, run_ooo, run_tier, trace_program, CoreConfig,
    RunError, TierReport,
};
pub use report::SimReport;
pub use trace::{Trace, TraceEntry};
