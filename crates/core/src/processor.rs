//! One-call pipelines: program → (translate) → functional trace → timing.

use std::error::Error;
use std::fmt;

use braid_compiler::{translate, TranslateError, Translation, TranslatorConfig};
use braid_isa::Program;

use crate::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use crate::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use crate::functional::{ExecError, Machine};
use crate::obs::Observer;
use crate::report::SimReport;
use crate::trace::Trace;

/// Errors from the one-call pipelines.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// Functional execution failed.
    Exec(ExecError),
    /// Braid translation failed.
    Translate(TranslateError),
    /// The translated program failed the static braid-contract check; the
    /// braid machine refuses to run it.
    Check(Box<braid_check::CheckReport>),
    /// Timing simulation failed (bad config or livelock).
    Sim(crate::error::SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "functional execution failed: {e}"),
            RunError::Translate(e) => write!(f, "braid translation failed: {e}"),
            RunError::Check(r) => write!(f, "braid contract violated: {r}"),
            RunError::Sim(e) => write!(f, "timing simulation failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Exec(e) => Some(e),
            RunError::Translate(e) => Some(e),
            RunError::Check(_) => None,
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> RunError {
        RunError::Exec(e)
    }
}

impl From<TranslateError> for RunError {
    fn from(e: TranslateError) -> RunError {
        RunError::Translate(e)
    }
}

impl From<crate::error::SimError> for RunError {
    fn from(e: crate::error::SimError) -> RunError {
        RunError::Sim(e)
    }
}

/// Functionally executes `program` for at most `max_insts` instructions and
/// returns the committed trace.
///
/// # Errors
///
/// Propagates functional-execution failures, including
/// [`ExecError::OutOfFuel`] when the budget is hit before `halt`.
pub fn trace_program(program: &Program, max_insts: u64) -> Result<Trace, RunError> {
    let mut m = Machine::new(program);
    Ok(m.run(program, max_insts)?)
}

/// Runs `program` on the conventional out-of-order machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_ooo(program: &Program, config: &OooConfig, max_insts: u64) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(OooCore::new(config.clone()).run(program, &trace)?)
}

/// Runs `program` on the in-order machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_inorder(
    program: &Program,
    config: &InOrderConfig,
    max_insts: u64,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(InOrderCore::new(config.clone()).run(program, &trace)?)
}

/// Runs `program` on the dependence-steering machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_dep(program: &Program, config: &DepConfig, max_insts: u64) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(DepSteerCore::new(config.clone()).run(program, &trace)?)
}

/// Translates `program` into braids and runs it on the braid machine.
///
/// # Errors
///
/// Propagates translation and functional-execution failures.
pub fn run_braid(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
) -> Result<SimReport, RunError> {
    let (report, _) = run_braid_with_translation(program, config, max_insts)?;
    Ok(report)
}

/// Runs `program` on the out-of-order machine with pipeline events sent to
/// `obs` (see [`crate::obs`]).
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_ooo_observed<O: Observer>(
    program: &Program,
    config: &OooConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(OooCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Runs `program` on the in-order machine with pipeline events sent to
/// `obs`.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_inorder_observed<O: Observer>(
    program: &Program,
    config: &InOrderConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(InOrderCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Runs `program` on the dependence-steering machine with pipeline events
/// sent to `obs`.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_dep_observed<O: Observer>(
    program: &Program,
    config: &DepConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(DepSteerCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Translates `program` into braids and runs it on the braid machine with
/// pipeline events sent to `obs`; also returns the translation so callers
/// can map events back to braid structure.
///
/// # Errors
///
/// As for [`run_braid_with_translation`].
pub fn run_braid_observed<O: Observer>(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<(SimReport, Translation), RunError> {
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let translation = translate(program, &tconfig)?;
    let report = translation.check(
        program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if report.has_errors() {
        return Err(RunError::Check(Box::new(report)));
    }
    let trace = trace_program(&translation.program, max_insts)?;
    let report = BraidCore::new(config.clone()).run_observed(&translation.program, &trace, obs)?;
    Ok((report, translation))
}

/// Like [`run_braid`] but also returns the translation (for braid
/// statistics).
///
/// The translation is vetted by the static braid-contract checker before
/// any simulation — in debug *and* release builds — so the braid machine
/// never executes an ill-formed program. The translator's own debug
/// self-check is turned off here to avoid checking twice.
///
/// # Errors
///
/// Propagates translation and functional-execution failures; returns
/// [`RunError::Check`] when the translation violates the braid contract.
pub fn run_braid_with_translation(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
) -> Result<(SimReport, Translation), RunError> {
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let translation = translate(program, &tconfig)?;
    let report = translation.check(
        program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if report.has_errors() {
        return Err(RunError::Check(Box::new(report)));
    }
    let trace = trace_program(&translation.program, max_insts)?;
    let report = BraidCore::new(config.clone()).run(&translation.program, &trace)?;
    Ok((report, translation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    const LOOP: &str = r#"
        addi r0, #2000, r1
    loop:
        addq r1, r1, r2
        addq r2, r1, r2
        addq r2, r1, r2
        stq  r2, 0(r9) @stack:1
        addq r1, r1, r3
        addq r3, r1, r3
        stq  r3, 8(r9) @stack:2
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn all_four_cores_run_the_same_workload() {
        let p = assemble(LOOP).unwrap();
        let fuel = 100_000;
        let ooo = run_ooo(&p, &OooConfig::paper_8wide(), fuel).unwrap();
        let io = run_inorder(&p, &InOrderConfig::paper_8wide(), fuel).unwrap();
        let dep = run_dep(&p, &DepConfig::paper_8wide(), fuel).unwrap();
        let braid = run_braid(&p, &BraidConfig::paper_default(), fuel).unwrap();
        for r in [&ooo, &io, &dep, &braid] {
            assert_eq!(r.instructions, ooo.instructions);
        }
        // The canonical ordering of the paper's Figure 13.
        assert!(ooo.ipc() >= braid.ipc() * 0.85, "ooo {} braid {}", ooo.ipc(), braid.ipc());
        assert!(braid.ipc() >= io.ipc() * 0.9, "braid {} io {}", braid.ipc(), io.ipc());
    }

    #[test]
    fn deadline_aborts_deterministically_on_every_core() {
        use crate::error::SimError;
        let p = assemble(LOOP).unwrap();
        let fuel = 100_000;
        let deadline = 50;
        let extract = |e: RunError| match e {
            RunError::Sim(SimError::Deadline { cycle, deadline_cycles, retired }) => {
                assert_eq!(deadline_cycles, deadline);
                assert!(cycle >= deadline);
                (cycle, retired)
            }
            other => panic!("expected a deadline error, got: {other}"),
        };
        let mut ooo = OooConfig::paper_8wide();
        ooo.common.deadline_cycles = deadline;
        let first = extract(run_ooo(&p, &ooo, fuel).unwrap_err());
        let again = extract(run_ooo(&p, &ooo, fuel).unwrap_err());
        assert_eq!(first, again, "deadline aborts must be reproducible");

        let mut io = InOrderConfig::paper_8wide();
        io.common.deadline_cycles = deadline;
        extract(run_inorder(&p, &io, fuel).unwrap_err());
        let mut dep = DepConfig::paper_8wide();
        dep.common.deadline_cycles = deadline;
        extract(run_dep(&p, &dep, fuel).unwrap_err());
        let mut braid = BraidConfig::paper_default();
        braid.common.deadline_cycles = deadline;
        extract(run_braid(&p, &braid, fuel).unwrap_err());

        // A deadline past the natural run length never fires.
        let mut roomy = OooConfig::paper_8wide();
        roomy.common.deadline_cycles = 10_000_000;
        assert!(run_ooo(&p, &roomy, fuel).is_ok());
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let p = assemble("loop: br loop\nhalt").unwrap();
        assert!(matches!(
            run_ooo(&p, &OooConfig::paper_8wide(), 100),
            Err(RunError::Exec(ExecError::OutOfFuel))
        ));
    }
}
