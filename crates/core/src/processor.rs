//! One-call pipelines: program → (translate) → functional trace → timing.

use std::error::Error;
use std::fmt;

use braid_compiler::{translate, TranslateError, Translation, TranslatorConfig};
use braid_isa::Program;
use braid_uarch::cache::{Access, MemoryHierarchy};

use crate::config::{BraidConfig, CommonConfig, DepConfig, InOrderConfig, OooConfig};
use crate::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use crate::frontend::{INST_BYTES, TEXT_BASE};
use crate::func::{
    run_func, run_sampled_with, FuncReport, SampleError, SampleTiming, SampledReport,
    SamplingConfig, Tier,
};
use crate::functional::{ExecError, Machine};
use crate::obs::Observer;
use crate::predecode::DecodedOp;
use crate::report::SimReport;
use crate::trace::Trace;

/// Errors from the one-call pipelines.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// Functional execution failed.
    Exec(ExecError),
    /// Braid translation failed.
    Translate(TranslateError),
    /// The translated program failed the static braid-contract check; the
    /// braid machine refuses to run it.
    Check(Box<braid_check::CheckReport>),
    /// Timing simulation failed (bad config or livelock).
    Sim(crate::error::SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "functional execution failed: {e}"),
            RunError::Translate(e) => write!(f, "braid translation failed: {e}"),
            RunError::Check(r) => write!(f, "braid contract violated: {r}"),
            RunError::Sim(e) => write!(f, "timing simulation failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Exec(e) => Some(e),
            RunError::Translate(e) => Some(e),
            RunError::Check(_) => None,
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> RunError {
        RunError::Exec(e)
    }
}

impl From<TranslateError> for RunError {
    fn from(e: TranslateError) -> RunError {
        RunError::Translate(e)
    }
}

impl From<crate::error::SimError> for RunError {
    fn from(e: crate::error::SimError) -> RunError {
        RunError::Sim(e)
    }
}

impl From<SampleError> for RunError {
    fn from(e: SampleError) -> RunError {
        match e {
            SampleError::Exec(e) => RunError::Exec(e),
            SampleError::Sim(e) => RunError::Sim(e),
        }
    }
}

/// One of the four timing cores with its configuration — the unit the
/// tier driver dispatches over.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreConfig {
    /// The in-order machine.
    InOrder(InOrderConfig),
    /// The FIFO dependence-steering machine.
    Dep(DepConfig),
    /// The conventional out-of-order machine.
    Ooo(OooConfig),
    /// The braid machine (implies translation).
    Braid(BraidConfig),
}

impl CoreConfig {
    /// Stable core name, matching the CLI / sweep / serve spelling.
    pub fn name(&self) -> &'static str {
        match self {
            CoreConfig::InOrder(_) => "inorder",
            CoreConfig::Dep(_) => "dep",
            CoreConfig::Ooo(_) => "ooo",
            CoreConfig::Braid(_) => "braid",
        }
    }

    /// Whether this core runs the braid-translated program.
    pub fn is_braid(&self) -> bool {
        matches!(self, CoreConfig::Braid(_))
    }

    /// The pipeline/memory configuration shared by every core kind.
    fn common(&self) -> &CommonConfig {
        match self {
            CoreConfig::InOrder(c) => &c.common,
            CoreConfig::Dep(c) => &c.common,
            CoreConfig::Ooo(c) => &c.common,
            CoreConfig::Braid(c) => &c.common,
        }
    }

    /// Fetch/dispatch/retire width in instructions per cycle. Retirement
    /// never exceeds this on any core, which makes `ceil(n / width)` a
    /// sound cycle lower bound for an `n`-instruction trace.
    pub fn width(&self) -> u32 {
        self.common().width
    }

    /// Load/store queue capacity. Every memory instruction occupies an
    /// entry from dispatch to retirement (at least one full cycle).
    pub fn lsq_entries(&self) -> usize {
        self.common().lsq_entries
    }

    /// Execution latency the timing engines charge for `op`, in cycles.
    /// This is the *minimum*: loads pay at least one additional cache
    /// cycle on top of address generation, and external-write-port or
    /// bypass contention can delay when consumers see the value.
    pub fn latency_of(&self, op: braid_isa::Opcode) -> u64 {
        op.latency()
    }

    /// Maximum instructions the core can begin executing per cycle:
    /// the FU count on the conventional cores, `beus * fus_per_beu`
    /// on the braid core.
    pub fn issue_slots(&self) -> u32 {
        match self {
            CoreConfig::InOrder(c) => c.fus,
            CoreConfig::Dep(c) => c.fus,
            CoreConfig::Ooo(c) => c.fus,
            CoreConfig::Braid(c) => c.beus * c.fus_per_beu,
        }
    }

    /// Braid execution unit count (braid core only).
    pub fn beus(&self) -> Option<u32> {
        match self {
            CoreConfig::Braid(c) => Some(c.beus),
            _ => None,
        }
    }

    /// Functional units per BEU (braid core only).
    pub fn fus_per_beu(&self) -> Option<u32> {
        match self {
            CoreConfig::Braid(c) => Some(c.fus_per_beu),
            _ => None,
        }
    }

    /// Internal register file size per BEU (braid core only); the
    /// translator's split threshold must not exceed this.
    pub fn internal_regs(&self) -> Option<u32> {
        match self {
            CoreConfig::Braid(c) => Some(c.internal_regs),
            _ => None,
        }
    }

    /// Times `trace` on a **fresh** core instance (the warm-up subtraction
    /// of sampling relies on every window starting from identical pipeline
    /// state).
    fn run_trace(&self, program: &Program, trace: &Trace) -> Result<SimReport, crate::error::SimError> {
        match self {
            CoreConfig::InOrder(c) => InOrderCore::new(c.clone()).run(program, trace),
            CoreConfig::Dep(c) => DepSteerCore::new(c.clone()).run(program, trace),
            CoreConfig::Ooo(c) => OooCore::new(c.clone()).run(program, trace),
            CoreConfig::Braid(c) => BraidCore::new(c.clone()).run(program, trace),
        }
    }

    /// Like [`CoreConfig::run_trace`], but seeding the fresh core with a
    /// pre-warmed memory hierarchy.
    fn run_trace_warmed(
        &self,
        program: &Program,
        trace: &Trace,
        mem: MemoryHierarchy,
    ) -> Result<SimReport, crate::error::SimError> {
        match self {
            CoreConfig::InOrder(c) => InOrderCore::new(c.clone()).run_warmed(program, trace, mem),
            CoreConfig::Dep(c) => DepSteerCore::new(c.clone()).run_warmed(program, trace, mem),
            CoreConfig::Ooo(c) => OooCore::new(c.clone()).run_warmed(program, trace, mem),
            CoreConfig::Braid(c) => BraidCore::new(c.clone()).run_warmed(program, trace, mem),
        }
    }
}

/// SMARTS-style functional warming for the sampled tier: every functionally
/// executed instruction (timed windows and fast-forwarded spans alike)
/// touches a persistent memory hierarchy — I-side at the instruction's
/// fetch address, D-side at the effective address — and each timed window
/// replays on a core seeded with the clone checkpointed at its interval
/// start. Without this, every window would replay on cold caches and
/// re-pay main-memory latency for lines a continuous run keeps resident,
/// inflating the estimate by tens of percent on cache-friendly kernels.
struct WarmedTiming<'a> {
    core: &'a CoreConfig,
    program: &'a Program,
    warm: MemoryHierarchy,
    checkpoint: MemoryHierarchy,
}

impl<'a> WarmedTiming<'a> {
    fn new(core: &'a CoreConfig, program: &'a Program) -> WarmedTiming<'a> {
        let mem = MemoryHierarchy::new(core.common().mem);
        WarmedTiming { core, program, checkpoint: mem.clone(), warm: mem }
    }
}

impl SampleTiming for WarmedTiming<'_> {
    fn observe(&mut self, idx: u32, op: &DecodedOp, addr: u64) {
        self.warm.warm(Access::Fetch, TEXT_BASE + idx as u64 * INST_BYTES);
        if op.is_load() {
            self.warm.warm(Access::Load, addr);
        } else if op.is_store() {
            self.warm.warm(Access::Store, addr);
        }
    }

    fn checkpoint(&mut self) {
        self.checkpoint = self.warm.clone();
    }

    fn time(&mut self, trace: &Trace) -> Result<SimReport, crate::error::SimError> {
        self.core.run_trace_warmed(self.program, trace, self.checkpoint.clone())
    }
}

/// What a tiered run produced — shaped by the [`Tier`] requested.
#[derive(Debug, Clone)]
pub enum TierReport {
    /// Full cycle-level simulation: exact cycles and CPI stack.
    Full(SimReport),
    /// Functional only: instruction count, throughput, state digest.
    Func(FuncReport),
    /// Sampled timing: extrapolated cycles and CPI stack.
    Sampled(SampledReport),
}

impl TierReport {
    /// Dynamic instructions executed (exact on every tier).
    pub fn instructions(&self) -> u64 {
        match self {
            TierReport::Full(r) => r.instructions,
            TierReport::Func(r) => r.instructions,
            TierReport::Sampled(r) => r.instructions,
        }
    }

    /// Retired instructions per cycle — exact for [`Tier::Full`], an
    /// estimate for [`Tier::Sampled`], `None` for [`Tier::Func`] (no
    /// timing at all).
    pub fn ipc(&self) -> Option<f64> {
        match self {
            TierReport::Full(r) => Some(r.ipc()),
            TierReport::Func(_) => None,
            TierReport::Sampled(r) => Some(r.est_ipc()),
        }
    }

    /// Host wall-clock nanoseconds of the run. **Not deterministic.**
    pub fn host_nanos(&self) -> u64 {
        match self {
            TierReport::Full(r) => r.host_nanos,
            TierReport::Func(r) => r.host_nanos,
            TierReport::Sampled(r) => r.host_nanos(),
        }
    }
}

/// For the braid core: translate and vet `program`, returning the program
/// the core actually executes. Every other core runs `program` as-is.
fn tier_program(program: &Program, core: &CoreConfig) -> Result<Option<Program>, RunError> {
    if !core.is_braid() {
        return Ok(None);
    }
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let translation = translate(program, &tconfig)?;
    let report = translation.check(
        program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if report.has_errors() {
        return Err(RunError::Check(Box::new(report)));
    }
    Ok(Some(translation.program))
}

/// Runs `program` on `core` at the requested execution [`Tier`] — the
/// single entry point behind `braidsim --tier`, the sweep engine and
/// braidd. The braid core translates (and statically vets) the program
/// first on every tier, so tiers always agree on the executed
/// instruction stream. `sampling` is only consulted for
/// [`Tier::Sampled`].
///
/// # Errors
///
/// Propagates translation, functional-execution and timing failures.
pub fn run_tier(
    program: &Program,
    core: &CoreConfig,
    tier: Tier,
    max_insts: u64,
    sampling: &SamplingConfig,
) -> Result<TierReport, RunError> {
    let translated = tier_program(program, core)?;
    let program = translated.as_ref().unwrap_or(program);
    match tier {
        Tier::Full => {
            let trace = trace_program(program, max_insts)?;
            Ok(TierReport::Full(core.run_trace(program, &trace)?))
        }
        Tier::Func => Ok(TierReport::Func(run_func(program, max_insts)?)),
        Tier::Sampled => {
            let timing = WarmedTiming::new(core, program);
            let rep = run_sampled_with(program, max_insts, sampling, timing)?;
            Ok(TierReport::Sampled(rep))
        }
    }
}

/// Functionally executes `program` for at most `max_insts` instructions and
/// returns the committed trace.
///
/// # Errors
///
/// Propagates functional-execution failures, including
/// [`ExecError::OutOfFuel`] when the budget is hit before `halt`.
pub fn trace_program(program: &Program, max_insts: u64) -> Result<Trace, RunError> {
    let mut m = Machine::new(program);
    Ok(m.run(program, max_insts)?)
}

/// Runs an already-prepared program on `core` **as-is** — no translation,
/// even for the braid core. This is the entry point for callers that
/// produce their own annotated programs (the `braidc -O` partition search
/// scores candidate translations through it). On the braid core the
/// program is still vetted by the static braid-contract checker first, so
/// the braid machine never executes an ill-formed program; the other
/// cores ignore annotations entirely.
///
/// # Errors
///
/// Propagates functional-execution and timing failures; returns
/// [`RunError::Check`] when a braid-core program violates the contract.
pub fn run_annotated(
    program: &Program,
    core: &CoreConfig,
    max_insts: u64,
) -> Result<SimReport, RunError> {
    if let CoreConfig::Braid(c) = core {
        let report = braid_check::check_program(
            program,
            &braid_check::CheckConfig { max_internal_regs: c.internal_regs },
        );
        if report.has_errors() {
            return Err(RunError::Check(Box::new(report)));
        }
    }
    let trace = trace_program(program, max_insts)?;
    Ok(core.run_trace(program, &trace)?)
}

/// Runs `program` on the conventional out-of-order machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_ooo(program: &Program, config: &OooConfig, max_insts: u64) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(OooCore::new(config.clone()).run(program, &trace)?)
}

/// Runs `program` on the in-order machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_inorder(
    program: &Program,
    config: &InOrderConfig,
    max_insts: u64,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(InOrderCore::new(config.clone()).run(program, &trace)?)
}

/// Runs `program` on the dependence-steering machine.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_dep(program: &Program, config: &DepConfig, max_insts: u64) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(DepSteerCore::new(config.clone()).run(program, &trace)?)
}

/// Translates `program` into braids and runs it on the braid machine.
///
/// # Errors
///
/// Propagates translation and functional-execution failures.
pub fn run_braid(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
) -> Result<SimReport, RunError> {
    let (report, _) = run_braid_with_translation(program, config, max_insts)?;
    Ok(report)
}

/// Runs `program` on the out-of-order machine with pipeline events sent to
/// `obs` (see [`crate::obs`]).
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_ooo_observed<O: Observer>(
    program: &Program,
    config: &OooConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(OooCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Runs `program` on the in-order machine with pipeline events sent to
/// `obs`.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_inorder_observed<O: Observer>(
    program: &Program,
    config: &InOrderConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(InOrderCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Runs `program` on the dependence-steering machine with pipeline events
/// sent to `obs`.
///
/// # Errors
///
/// Propagates functional-execution failures.
pub fn run_dep_observed<O: Observer>(
    program: &Program,
    config: &DepConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<SimReport, RunError> {
    let trace = trace_program(program, max_insts)?;
    Ok(DepSteerCore::new(config.clone()).run_observed(program, &trace, obs)?)
}

/// Translates `program` into braids and runs it on the braid machine with
/// pipeline events sent to `obs`; also returns the translation so callers
/// can map events back to braid structure.
///
/// # Errors
///
/// As for [`run_braid_with_translation`].
pub fn run_braid_observed<O: Observer>(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
    obs: &mut O,
) -> Result<(SimReport, Translation), RunError> {
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let translation = translate(program, &tconfig)?;
    let report = translation.check(
        program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if report.has_errors() {
        return Err(RunError::Check(Box::new(report)));
    }
    let trace = trace_program(&translation.program, max_insts)?;
    let report = BraidCore::new(config.clone()).run_observed(&translation.program, &trace, obs)?;
    Ok((report, translation))
}

/// Like [`run_braid`] but also returns the translation (for braid
/// statistics).
///
/// The translation is vetted by the static braid-contract checker before
/// any simulation — in debug *and* release builds — so the braid machine
/// never executes an ill-formed program. The translator's own debug
/// self-check is turned off here to avoid checking twice.
///
/// # Errors
///
/// Propagates translation and functional-execution failures; returns
/// [`RunError::Check`] when the translation violates the braid contract.
pub fn run_braid_with_translation(
    program: &Program,
    config: &BraidConfig,
    max_insts: u64,
) -> Result<(SimReport, Translation), RunError> {
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let translation = translate(program, &tconfig)?;
    let report = translation.check(
        program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if report.has_errors() {
        return Err(RunError::Check(Box::new(report)));
    }
    let trace = trace_program(&translation.program, max_insts)?;
    let report = BraidCore::new(config.clone()).run(&translation.program, &trace)?;
    Ok((report, translation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    const LOOP: &str = r#"
        addi r0, #2000, r1
    loop:
        addq r1, r1, r2
        addq r2, r1, r2
        addq r2, r1, r2
        stq  r2, 0(r9) @stack:1
        addq r1, r1, r3
        addq r3, r1, r3
        stq  r3, 8(r9) @stack:2
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn all_four_cores_run_the_same_workload() {
        let p = assemble(LOOP).unwrap();
        let fuel = 100_000;
        let ooo = run_ooo(&p, &OooConfig::paper_8wide(), fuel).unwrap();
        let io = run_inorder(&p, &InOrderConfig::paper_8wide(), fuel).unwrap();
        let dep = run_dep(&p, &DepConfig::paper_8wide(), fuel).unwrap();
        let braid = run_braid(&p, &BraidConfig::paper_default(), fuel).unwrap();
        for r in [&ooo, &io, &dep, &braid] {
            assert_eq!(r.instructions, ooo.instructions);
        }
        // The canonical ordering of the paper's Figure 13.
        assert!(ooo.ipc() >= braid.ipc() * 0.85, "ooo {} braid {}", ooo.ipc(), braid.ipc());
        assert!(braid.ipc() >= io.ipc() * 0.9, "braid {} io {}", braid.ipc(), io.ipc());
    }

    #[test]
    fn deadline_aborts_deterministically_on_every_core() {
        use crate::error::SimError;
        let p = assemble(LOOP).unwrap();
        let fuel = 100_000;
        let deadline = 50;
        let extract = |e: RunError| match e {
            RunError::Sim(SimError::Deadline { cycle, deadline_cycles, retired }) => {
                assert_eq!(deadline_cycles, deadline);
                assert!(cycle >= deadline);
                (cycle, retired)
            }
            other => panic!("expected a deadline error, got: {other}"),
        };
        let mut ooo = OooConfig::paper_8wide();
        ooo.common.deadline_cycles = deadline;
        let first = extract(run_ooo(&p, &ooo, fuel).unwrap_err());
        let again = extract(run_ooo(&p, &ooo, fuel).unwrap_err());
        assert_eq!(first, again, "deadline aborts must be reproducible");

        let mut io = InOrderConfig::paper_8wide();
        io.common.deadline_cycles = deadline;
        extract(run_inorder(&p, &io, fuel).unwrap_err());
        let mut dep = DepConfig::paper_8wide();
        dep.common.deadline_cycles = deadline;
        extract(run_dep(&p, &dep, fuel).unwrap_err());
        let mut braid = BraidConfig::paper_default();
        braid.common.deadline_cycles = deadline;
        extract(run_braid(&p, &braid, fuel).unwrap_err());

        // A deadline past the natural run length never fires.
        let mut roomy = OooConfig::paper_8wide();
        roomy.common.deadline_cycles = 10_000_000;
        assert!(run_ooo(&p, &roomy, fuel).is_ok());
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let p = assemble("loop: br loop\nhalt").unwrap();
        assert!(matches!(
            run_ooo(&p, &OooConfig::paper_8wide(), 100),
            Err(RunError::Exec(ExecError::OutOfFuel))
        ));
    }

    #[test]
    fn tiers_agree_on_instruction_counts() {
        let p = assemble(LOOP).unwrap();
        let fuel = 100_000;
        let sampling = SamplingConfig { period: 512, warmup: 32, sample: 128, lockstep: true };
        for core in [
            CoreConfig::InOrder(InOrderConfig::paper_8wide()),
            CoreConfig::Dep(DepConfig::paper_8wide()),
            CoreConfig::Ooo(OooConfig::paper_8wide()),
            CoreConfig::Braid(BraidConfig::paper_default()),
        ] {
            let full = run_tier(&p, &core, Tier::Full, fuel, &sampling).unwrap();
            let func = run_tier(&p, &core, Tier::Func, fuel, &sampling).unwrap();
            let sampled = run_tier(&p, &core, Tier::Sampled, fuel, &sampling).unwrap();
            assert_eq!(full.instructions(), func.instructions(), "{}", core.name());
            assert_eq!(full.instructions(), sampled.instructions(), "{}", core.name());
            // The sampled estimate must be in the ballpark of the exact
            // IPC on this steady loop (tight bounds live in the golden
            // fixtures; this is the smoke check).
            let exact = full.ipc().unwrap();
            let est = sampled.ipc().unwrap();
            assert!(
                (est - exact).abs() / exact < 0.25,
                "{}: exact {exact} vs est {est}",
                core.name()
            );
        }
    }

    #[test]
    fn sampled_cpi_stack_totals_estimated_cycles() {
        let p = assemble(LOOP).unwrap();
        let sampling = SamplingConfig::default();
        let core = CoreConfig::InOrder(InOrderConfig::paper_8wide());
        match run_tier(&p, &core, Tier::Sampled, 100_000, &sampling).unwrap() {
            TierReport::Sampled(r) => assert_eq!(r.cpi.total(), r.est_cycles),
            other => panic!("expected a sampled report, got {other:?}"),
        }
    }
}
