//! Core-side observability: the cycle-accounting taxonomy ([`StallCause`],
//! [`CpiStack`]) and the pipeline [`Observer`] trait.
//!
//! The engine attributes **every simulated cycle to exactly one cause** —
//! the CPI stack — unconditionally, because the accounting is one
//! classification per time step and is itself part of the deterministic
//! [`crate::report::SimReport`]. Event-level instrumentation (per-dynamic-
//! instruction timestamps, per-unit occupancy) is behind the generic
//! [`Observer`] trait: cores monomorphize over it, and the default
//! [`NoopObserver`] (with [`Observer::ENABLED`]` = false`) compiles to
//! nothing, so the hot path is identical to an uninstrumented build. Heavy
//! collectors live in the `braid-obs` crate.
//!
//! ## Accounting rules (one cause per cycle, fixed priority)
//!
//! A cycle span is classified from the machine state at the end of the
//! cycle that opened it, with this priority order:
//!
//! 1. [`StallCause::Base`] — at least one instruction retired.
//! 2. [`StallCause::DCache`] — the oldest in-flight instruction is an
//!    issued load still waiting on the data memory hierarchy.
//! 3. [`StallCause::Lsq`] — a load was rejected by memory ordering, or
//!    dispatch stalled on a full load-store queue, this cycle.
//! 4. [`StallCause::Regs`] — a register-buffer / external-register-file
//!    allocation stalled this cycle.
//! 5. [`StallCause::WindowFull`] — dispatch stalled on window, scheduler
//!    or BEU-FIFO space this cycle.
//! 6. [`StallCause::AllocBw`] — dispatch stalled on allocation/rename
//!    bandwidth this cycle.
//! 7. [`StallCause::BeuSerial`] — something is in flight but none of the
//!    above applies: the oldest instruction is executing a non-load, or is
//!    serialized behind scheduler order (the braid machine's in-order BEU
//!    windows), or dispatch is gated without a counted stall (exception
//!    episodes).
//! 8. [`StallCause::MispredictRefill`] — the window is empty and the front
//!    end is blocked on an unresolved misprediction, refilling after one,
//!    or recovering from a checkpoint rewind / BTB bubble.
//! 9. [`StallCause::ICache`] — the window is empty and fetch waits on an
//!    instruction-cache miss.
//! 10. [`StallCause::EmptyFrontend`] — nothing anywhere: the trace is
//!     exhausted (drain) or fetch delivered nothing this cycle.
//!
//! When the engine fast-forwards over event-free cycles the whole span
//! inherits the classification of its opening cycle: nothing changes in
//! between (retirement would be progress), so the cause persists.

use std::fmt;

/// Why a cycle did not retire anything (or [`StallCause::Base`] when it
/// did). One of these is charged for every simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum StallCause {
    /// At least one instruction retired this cycle.
    Base,
    /// Dispatch stalled: window / scheduler / BEU-FIFO space exhausted.
    WindowFull,
    /// Dispatch or writeback stalled: no register-buffer or
    /// external-register-file entry.
    Regs,
    /// Memory ordering: a load waited on an older store, or dispatch
    /// stalled on a full load-store queue.
    Lsq,
    /// Dispatch stalled: allocation / rename bandwidth exhausted.
    AllocBw,
    /// Empty window while the front end refills after a misprediction,
    /// checkpoint rewind, or BTB bubble.
    MispredictRefill,
    /// Empty window while fetch waits on an instruction-cache miss.
    ICache,
    /// The oldest in-flight instruction is an issued load waiting on the
    /// data memory hierarchy.
    DCache,
    /// Nothing in flight and the front end has nothing to deliver.
    EmptyFrontend,
    /// In-flight work executing or serialized (in-order BEU windows,
    /// dependence chains, exception episodes) with no resource stall.
    BeuSerial,
}

/// Number of [`StallCause`] variants (the CPI-stack arity).
pub const NUM_CAUSES: usize = 10;

impl StallCause {
    /// Every cause, in canonical (rendering and serialization) order.
    pub const ALL: [StallCause; NUM_CAUSES] = [
        StallCause::Base,
        StallCause::WindowFull,
        StallCause::Regs,
        StallCause::Lsq,
        StallCause::AllocBw,
        StallCause::MispredictRefill,
        StallCause::ICache,
        StallCause::DCache,
        StallCause::EmptyFrontend,
        StallCause::BeuSerial,
    ];

    /// Stable machine-readable key (JSON field names, golden files).
    pub fn key(self) -> &'static str {
        match self {
            StallCause::Base => "base",
            StallCause::WindowFull => "window_full",
            StallCause::Regs => "regs",
            StallCause::Lsq => "lsq",
            StallCause::AllocBw => "alloc_bw",
            StallCause::MispredictRefill => "mispredict_refill",
            StallCause::ICache => "icache",
            StallCause::DCache => "dcache",
            StallCause::EmptyFrontend => "empty_frontend",
            StallCause::BeuSerial => "beu_serial",
        }
    }

    /// Position in [`StallCause::ALL`] (the [`CpiStack`] index).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The cause with key `key`, if any (golden/JSON parsing).
    pub fn from_key(key: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.key() == key)
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Cycles charged per [`StallCause`]: the CPI stack of one run. The
/// engine guarantees [`CpiStack::total`] equals `SimReport::cycles`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    counts: [u64; NUM_CAUSES],
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Charges `n` cycles to `cause`.
    pub fn add(&mut self, cause: StallCause, n: u64) {
        self.counts[cause.index()] += n;
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total cycles accounted (equals `SimReport::cycles` after a run).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(cause, cycles)` in canonical order, zero entries included.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Adds every count of `other` into `self` (sweep aggregation).
    pub fn merge(&mut self, other: &CpiStack) {
        for (i, n) in other.counts.iter().enumerate() {
            self.counts[i] += n;
        }
    }

    /// Fraction of the accounted cycles charged to `cause` (`0.0` when
    /// nothing is accounted).
    pub fn fraction(&self, cause: StallCause) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cause) as f64 / total as f64
        }
    }
}

impl fmt::Display for CpiStack {
    /// Multi-line breakdown with per-cause percentages and a bar chart,
    /// zero causes omitted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "cycles by cause ({total} total):")?;
        for (cause, n) in self.iter() {
            if n == 0 {
                continue;
            }
            let pct = 100.0 * n as f64 / total as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            writeln!(f, "  {:<18} {n:>12} {pct:>5.1}% {bar}", cause.key())?;
        }
        Ok(())
    }
}

/// Pipeline event sink. Cores are generic over an `Observer`, so the
/// default [`NoopObserver`] monomorphizes every hook away; collectors
/// (the `braid-obs` crate) override the hooks they need.
///
/// Events carry dynamic sequence numbers (`seq`, trace position), static
/// instruction indices (`idx`) and the core-specific execution unit the
/// instruction was steered to (`unit`: scheduler, FIFO or BEU id).
///
/// Per-cycle sampling hooks ([`Observer::unit_occupancy`],
/// [`Observer::lsq_occupancy`]) are invoked once per simulated *event
/// step*: when the engine fast-forwards over quiet cycles the sample
/// represents the whole (unchanging) span. Guard any per-cycle work the
/// core itself must do with [`Observer::ENABLED`].
pub trait Observer {
    /// Whether this observer wants events at all; `false` lets cores skip
    /// event-assembly work entirely (the hooks still compile to no-ops).
    const ENABLED: bool = true;

    /// `seq` (static `idx`) entered the fetch queue in `cycle`.
    fn fetch(&mut self, seq: u64, idx: u32, cycle: u64) {
        let _ = (seq, idx, cycle);
    }

    /// `seq` dispatched into execution unit `unit` in `cycle`.
    fn dispatch(&mut self, seq: u64, idx: u32, unit: u32, cycle: u64) {
        let _ = (seq, idx, unit, cycle);
    }

    /// `seq` issued in `cycle`; its value is visible at `avail_at` and it
    /// may retire at `done_at` (a pending store's `done_at` may still be
    /// unknown — see [`Observer::store_data`]).
    fn issue(&mut self, seq: u64, cycle: u64, avail_at: u64, done_at: u64) {
        let _ = (seq, cycle, avail_at, done_at);
    }

    /// A store's previously-unknown data-arrival time resolved to
    /// `done_at`.
    fn store_data(&mut self, seq: u64, done_at: u64) {
        let _ = (seq, done_at);
    }

    /// `seq` retired in `cycle`.
    fn retire(&mut self, seq: u64, cycle: u64) {
        let _ = (seq, cycle);
    }

    /// Checkpoint rollback in `cycle`: everything not yet retired
    /// (dispatched *or* merely fetched) is squashed and will re-fetch.
    fn squash(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The span `[cycle, cycle + n)` was charged to `cause`. `head_idx`
    /// is the static index of the oldest in-flight instruction, or
    /// `u32::MAX` when the window was empty (hotspot attribution).
    fn cycle_cause(&mut self, cycle: u64, n: u64, cause: StallCause, head_idx: u32) {
        let _ = (cycle, n, cause, head_idx);
    }

    /// Occupancy sample for execution unit `unit` (scheduler / FIFO /
    /// BEU): `occ` entries at this event step.
    fn unit_occupancy(&mut self, unit: u32, occ: u32) {
        let _ = (unit, occ);
    }

    /// Load-store-queue occupancy sample at this event step.
    fn lsq_occupancy(&mut self, occ: u32) {
        let _ = occ;
    }
}

/// The do-nothing observer: every hook is a no-op and
/// [`Observer::ENABLED`] is `false`, so instrumented cores compile to the
/// same code as uninstrumented ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causes_have_unique_keys_and_stable_indices() {
        for (i, c) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(StallCause::from_key(c.key()), Some(c));
        }
        let mut keys: Vec<&str> = StallCause::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), NUM_CAUSES);
        assert_eq!(StallCause::from_key("nonsense"), None);
    }

    #[test]
    fn stack_accounting() {
        let mut s = CpiStack::new();
        s.add(StallCause::Base, 10);
        s.add(StallCause::DCache, 5);
        s.add(StallCause::Base, 2);
        assert_eq!(s.get(StallCause::Base), 12);
        assert_eq!(s.total(), 17);
        let mut t = CpiStack::new();
        t.add(StallCause::DCache, 3);
        s.merge(&t);
        assert_eq!(s.get(StallCause::DCache), 8);
        assert_eq!(s.total(), 20);
        assert!((s.fraction(StallCause::Base) - 0.6).abs() < 1e-12);
        assert_eq!(CpiStack::new().fraction(StallCause::Base), 0.0);
    }

    #[test]
    fn display_omits_zero_causes() {
        let mut s = CpiStack::new();
        s.add(StallCause::Base, 3);
        s.add(StallCause::ICache, 1);
        let text = s.to_string();
        assert!(text.contains("base"), "{text}");
        assert!(text.contains("icache"), "{text}");
        assert!(!text.contains("dcache"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
    }

    #[test]
    fn noop_observer_is_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        // The default hooks are callable no-ops.
        let mut o = NoopObserver;
        o.fetch(0, 0, 0);
        o.cycle_cause(0, 1, StallCause::Base, u32::MAX);
    }
}
