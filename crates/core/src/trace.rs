//! Dynamic instruction traces.
//!
//! The timing cores are trace-driven: the functional executor records the
//! committed (correct-path) instruction stream, and the timing models replay
//! it while modelling speculation — a mispredicted branch stalls fetch until
//! the branch resolves in the core, then charges the configured front-end
//! refill penalty. Wrong-path instructions are not executed (see DESIGN.md).

use braid_isa::Program;

/// One committed dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Static instruction index.
    pub idx: u32,
    /// Index of the next dynamic instruction.
    pub next_idx: u32,
    /// Effective address for memory operations, `0` otherwise.
    pub addr: u64,
    /// Whether a control transfer was taken.
    pub taken: bool,
}

/// A committed dynamic instruction stream.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Entries in execution order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counts dynamic instructions per opcode mnemonic.
    pub fn opcode_mix(&self, program: &Program) -> std::collections::BTreeMap<&'static str, u64> {
        let mut mix = std::collections::BTreeMap::new();
        for e in &self.entries {
            let m = program.insts[e.idx as usize].opcode.mnemonic();
            *mix.entry(m).or_insert(0) += 1;
        }
        mix
    }

    /// Fraction of dynamic instructions that are conditional branches.
    pub fn branch_fraction(&self, program: &Program) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let n = self
            .entries
            .iter()
            .filter(|e| program.insts[e.idx as usize].opcode.is_cond_branch())
            .count();
        n as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::functional::Machine;
    use braid_isa::asm::assemble;

    #[test]
    fn trace_mirrors_execution() {
        let p = assemble(
            r#"
                addi r0, #3, r1
            loop:
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 1000).unwrap();
        assert_eq!(t.len(), 1 + 3 * 2 + 1);
        // The bne is taken twice, not taken once.
        let takens: Vec<bool> =
            t.entries.iter().filter(|e| e.idx == 2).map(|e| e.taken).collect();
        assert_eq!(takens, vec![true, true, false]);
        assert!(t.branch_fraction(&p) > 0.3);
        assert_eq!(t.opcode_mix(&p)["subi"], 3);
    }
}
