//! Two-tier execution: a fast functional interpreter and sampled timing.
//!
//! Full cycle-level simulation interrogates every dynamic instruction many
//! times per cycle; the functional tier here retires the same instruction
//! stream with **no pipeline structures at all**, dispatching straight over
//! the per-program [`PreDecoded`] table plus a small side table of
//! immediates and branch targets ([`FuncTable`]). Execution is basic-block
//! batched: control flow is only examined at block terminators, so the
//! straight-line interior of a block runs in a tight loop with no pc or
//! halt checks. The target (asserted in `tests/functional_tier.rs`) is
//! ≥10× the instruction throughput of the in-order timing core.
//!
//! On top of the fast interpreter sits the **sampled-timing driver**
//! ([`run_sampled_with`]): fast-forward functionally — warming the timing
//! backend's caches architecturally as every instruction retires — and for
//! every sampling period record a trace window (warm-up + sample), replay
//! it on the real timing core from the warmed checkpoint, and count its
//! measured cycles directly. Only the *untimed* remainder of a period is
//! extrapolated, and there warm-up exclusion is exact under deterministic
//! simulation: the window is timed twice — warm-up prefix alone, then
//! warm-up + sample — and the extrapolation rate is the marginal
//! `(full − prefix) / sample`, free of cold-pipeline bias. The default
//! configuration makes the window span the whole period, so small kernels
//! are measured wall to wall and only window-boundary effects (pipeline
//! fill/drain, replay-order cache divergence) remain, bounded well under
//! the 5% error budget asserted in `tests/functional_tier.rs`.
//!
//! Correctness is locked down in layers:
//!
//! * [`ArchSnapshot`] captures the architectural state (registers, memory
//!   deltas as non-zero pages, pc, retired count) of either executor, so
//!   differential tests compare the two byte for byte.
//! * In debug builds (or with [`SamplingConfig::lockstep`] set) the
//!   sampled driver steps the reference interpreter — the same golden
//!   model `braid-verify`'s oracle wraps — alongside the fast one and
//!   compares snapshots at every interval boundary, panicking with a
//!   field-level diff on the first divergence.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::error::Error;
use std::fmt;
use std::time::Instant;

use braid_isa::{Opcode, Program, Reg};

use crate::error::SimError;
use crate::functional::{ExecError, Machine, Memory, PAGE_SIZE};
use crate::obs::{CpiStack, StallCause};
use crate::predecode::{DecodedOp, PreDecoded, NO_REG};
use crate::report::SimReport;
use crate::trace::{Trace, TraceEntry};

// ---------------------------------------------------------------- tiers --

/// Execution tier: how much timing fidelity a run pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// Full cycle-level timing simulation over the whole trace.
    #[default]
    Full,
    /// Functional execution only — no timing, maximum host throughput.
    Func,
    /// Functional fast-forward with timing over sampled intervals;
    /// IPC and the CPI stack are extrapolated estimates.
    Sampled,
}

impl Tier {
    /// Every tier, in canonical order.
    pub const ALL: [Tier; 3] = [Tier::Full, Tier::Func, Tier::Sampled];

    /// Stable machine-readable name (CLI flags, protocol fields, digests).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Func => "func",
            Tier::Sampled => "sampled",
        }
    }

    /// Parses a tier name as accepted by `--tier` and the braidd protocol.
    pub fn parse(s: &str) -> Option<Tier> {
        Tier::ALL.into_iter().find(|t| t.name() == s)
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ------------------------------------------------------------- sampling --

/// Knobs of the sampled-timing tier.
///
/// Execution is divided into periods of [`SamplingConfig::period`]
/// instructions. At the start of each period the driver records
/// [`SamplingConfig::warmup`] + [`SamplingConfig::sample`] instructions of
/// trace (each window extended to the next braid boundary so the braid
/// core never sees a trace that starts or stops mid-braid), times them on
/// the real core, and fast-forwards the remainder of the period
/// functionally. The default window covers the whole period (warm-up +
/// sample = period), trading speed for accuracy; raise `period` above the
/// window length to sample sparsely on long-running workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Instructions per sampling period (functional + timed).
    pub period: u64,
    /// Timed warm-up instructions at the window start. Their cycles are
    /// excluded from the extrapolation rate used for the untimed rest of
    /// the period (they carry the window's pipeline-fill cost), but they
    /// do count toward the measured window itself.
    pub warmup: u64,
    /// Timed instructions whose cycles set the extrapolation rate.
    pub sample: u64,
    /// Step the reference interpreter in lockstep and compare
    /// [`ArchSnapshot`]s at every interval boundary (defaults to on in
    /// debug builds). Purely a validation aid — never changes results.
    pub lockstep: bool,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            period: 4096,
            warmup: 512,
            sample: 3584,
            lockstep: cfg!(debug_assertions),
        }
    }
}

impl SamplingConfig {
    /// Rejects degenerate configurations (zero period or sample).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] with the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.period == 0 {
            return Err(SimError::Config("sampling period must be at least 1".into()));
        }
        if self.sample == 0 {
            return Err(SimError::Config("sample length must be at least 1".into()));
        }
        Ok(())
    }

    /// Stable key fragment for cache digests: every knob that changes
    /// sampled results (lockstep never does, so it is excluded).
    pub fn digest_key(&self) -> String {
        format!("sp{}:sw{}:sl{}", self.period, self.warmup, self.sample)
    }
}

// ------------------------------------------------------------ snapshots --

/// Architectural state at an instruction boundary: the external register
/// file, memory deltas (every non-zero 4 KiB page), pc and retired count.
///
/// Snapshots are the currency of the differential test layer: the fast
/// interpreter, the reference interpreter and (transitively, through the
/// trace) the timing cores must all agree on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Program counter (static instruction index).
    pub pc: u64,
    /// Dynamic instructions retired.
    pub retired: u64,
    /// External register file, indexed by [`Reg::index`].
    pub regs: [u64; 64],
    /// Non-zero memory pages as `(page index, contents)`, sorted.
    pub pages: Vec<(u64, Box<[u8; PAGE_SIZE]>)>,
}

impl ArchSnapshot {
    /// Snapshots the reference interpreter.
    pub fn of_machine(m: &Machine) -> ArchSnapshot {
        ArchSnapshot {
            pc: m.pc(),
            retired: m.executed(),
            regs: *m.regs(),
            pages: m.mem.nonzero_pages(),
        }
    }

    /// FNV-1a digest over the whole snapshot (order-stable, so equal
    /// snapshots always digest equally across hosts).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.pc.to_le_bytes());
        eat(&self.retired.to_le_bytes());
        for r in self.regs {
            eat(&r.to_le_bytes());
        }
        for (idx, page) in &self.pages {
            eat(&idx.to_le_bytes());
            eat(page.as_slice());
        }
        h
    }

    /// Human-readable first divergence against `other`, or `None` when the
    /// snapshots are byte-identical.
    pub fn divergence(&self, other: &ArchSnapshot) -> Option<String> {
        if self.retired != other.retired {
            return Some(format!("retired {} vs {}", self.retired, other.retired));
        }
        if self.pc != other.pc {
            return Some(format!("pc {} vs {}", self.pc, other.pc));
        }
        for i in 0..64 {
            if self.regs[i] != other.regs[i] {
                return Some(format!(
                    "register index {i}: {:#x} vs {:#x}",
                    self.regs[i], other.regs[i]
                ));
            }
        }
        if self.pages.len() != other.pages.len() {
            return Some(format!(
                "{} non-zero pages vs {}",
                self.pages.len(),
                other.pages.len()
            ));
        }
        for ((ia, pa), (ib, pb)) in self.pages.iter().zip(&other.pages) {
            if ia != ib {
                return Some(format!("page index {ia} vs {ib}"));
            }
            if let Some(off) = (0..PAGE_SIZE).find(|&k| pa[k] != pb[k]) {
                return Some(format!(
                    "memory byte {:#x}: {:#x} vs {:#x}",
                    ia * PAGE_SIZE as u64 + off as u64,
                    pa[off],
                    pb[off]
                ));
            }
        }
        None
    }
}

// ------------------------------------------------------------ fast memory --

/// Flat boundary: addresses below this live in one contiguous vector (one
/// bounds check per access); higher and wrapping addresses fall back to the
/// sparse paged [`Memory`]. Page-aligned so a page never straddles the
/// boundary.
const LOW_CAP: u64 = 1 << 26; // 64 MiB

/// Hybrid memory for the fast tier: dense low range, sparse high range.
/// Semantics are byte-identical to [`Memory`] (zero-filled, wrapping).
#[derive(Debug, Clone, Default)]
struct FlatMem {
    low: Vec<u8>,
    high: Memory,
}

impl FlatMem {
    #[inline]
    fn read_u8(&self, addr: u64) -> u8 {
        if addr < LOW_CAP {
            self.low.get(addr as usize).copied().unwrap_or(0)
        } else {
            self.high.read_u8(addr)
        }
    }

    #[cold]
    fn grow_low(&mut self, end: usize) {
        let want = end.max(self.low.len().saturating_mul(2)).min(LOW_CAP as usize);
        let want = want.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.low.resize(want.max(end), 0);
    }

    #[inline]
    fn write_u8(&mut self, addr: u64, b: u8) {
        if addr < LOW_CAP {
            let a = addr as usize;
            if a >= self.low.len() {
                self.grow_low(a + 1);
            }
            self.low[a] = b;
        } else {
            self.high.write_u8(addr, b);
        }
    }

    /// Reads `N` little-endian bytes (wrapping address space).
    #[inline]
    fn read<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        if addr <= LOW_CAP - N as u64 {
            let a = addr as usize;
            if a < self.low.len() {
                let take = N.min(self.low.len() - a);
                out[..take].copy_from_slice(&self.low[a..a + take]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u64));
            }
        }
        out
    }

    /// Writes `N` little-endian bytes (wrapping address space).
    #[inline]
    fn write<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        if addr <= LOW_CAP - N as u64 {
            let a = addr as usize;
            if a + N > self.low.len() {
                self.grow_low(a + N);
            }
            self.low[a..a + N].copy_from_slice(&bytes);
        } else {
            for (i, &b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u64), b);
            }
        }
    }

    fn write_slice(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    fn nonzero_pages(&self) -> Vec<(u64, Box<[u8; PAGE_SIZE]>)> {
        let mut out: Vec<(u64, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        for (i, chunk) in self.low.chunks(PAGE_SIZE).enumerate() {
            if chunk.iter().any(|&b| b != 0) {
                let mut page = Box::new([0u8; PAGE_SIZE]);
                page[..chunk.len()].copy_from_slice(chunk);
                out.push((i as u64, page));
            }
        }
        out.extend(self.high.nonzero_pages());
        out.sort_by_key(|(i, _)| *i);
        out
    }
}

// ------------------------------------------------------------ func table --

/// What [`PreDecoded`] deliberately leaves out (the timing cores never
/// need values): opcode, sign-extended immediate, encoded branch target
/// and the braid `S` bit.
#[derive(Debug, Clone, Copy)]
struct FuncOp {
    opcode: Opcode,
    imm: u64,
    target: u32,
    start: bool,
}

/// Sentinel for "no encoded target" (mirrors [`ExecError::MissingTarget`]).
const NO_TARGET: u32 = u32::MAX;

/// The fast tier's dispatch table: the shared [`PreDecoded`] table plus
/// execution-only facts per static instruction and precomputed basic-block
/// run lengths. Built once per program, immutable afterwards.
#[derive(Debug, Clone)]
pub struct FuncTable {
    pre: PreDecoded,
    ops: Vec<FuncOp>,
    /// Straight-line instructions from index `i` up to (not including) the
    /// next control transfer or halt — the block-batched inner loop runs
    /// exactly this far with no pc, halt or taken checks.
    run_len: Vec<u32>,
}

impl FuncTable {
    /// Builds the table for `program` (one pass).
    pub fn new(program: &Program) -> FuncTable {
        let pre = PreDecoded::new(program);
        let ops: Vec<FuncOp> = program
            .insts
            .iter()
            .map(|inst| FuncOp {
                opcode: inst.opcode,
                imm: inst.imm as i64 as u64,
                target: inst.target().unwrap_or(NO_TARGET),
                start: inst.braid.start,
            })
            .collect();
        let n = ops.len();
        let mut run_len = vec![0u32; n];
        for i in (0..n).rev() {
            let op = ops[i].opcode;
            if op.is_branch() || op == Opcode::Halt {
                run_len[i] = 0;
            } else if i + 1 < n {
                run_len[i] = run_len[i + 1] + 1;
            } else {
                run_len[i] = 1;
            }
        }
        FuncTable { pre, ops, run_len }
    }

    /// The shared predecode table the interpreter dispatches over.
    pub fn predecoded(&self) -> &PreDecoded {
        &self.pre
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

// ---------------------------------------------------------- fast machine --

/// The fast functional interpreter.
///
/// Architecturally equivalent to [`Machine`] — byte-identical final
/// registers, memory and retired counts, the property the differential
/// suite in `tests/functional_tier.rs` pins — but with flat state and
/// block-batched dispatch: generation-stamped arrays instead of a hash map
/// for the braid-internal context, hybrid dense/sparse memory, and no
/// per-instruction control-flow checks inside basic blocks.
#[derive(Debug, Clone)]
pub struct FastMachine<'a> {
    table: &'a FuncTable,
    regs: [u64; 64],
    internal: [u64; 64],
    internal_gen: [u64; 64],
    gen: u64,
    mem: FlatMem,
    pc: u64,
    halted: bool,
    executed: u64,
}

fn reg_of_index(r: u8) -> Reg {
    Reg::all().find(|x| x.index() == r).unwrap_or(Reg::ZERO)
}

impl<'a> FastMachine<'a> {
    /// Creates a machine with `program`'s data segments loaded and the pc
    /// at its entry. `table` must be built from the same program.
    pub fn new(program: &Program, table: &'a FuncTable) -> FastMachine<'a> {
        let mut mem = FlatMem::default();
        for seg in &program.data {
            mem.write_slice(seg.base, &seg.bytes);
        }
        FastMachine {
            table,
            regs: [0; 64],
            internal: [0; 64],
            internal_gen: [0; 64],
            gen: 1,
            mem,
            pc: program.entry as u64,
            halted: false,
            executed: 0,
        }
    }

    /// Whether `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The current program counter (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads an external (architectural) register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Snapshots the current architectural state.
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            pc: self.pc,
            retired: self.executed,
            regs: self.regs,
            pages: self.mem.nonzero_pages(),
        }
    }

    #[inline]
    fn read_src(&self, idx: u32, r: u8, is_t: bool) -> Result<u64, ExecError> {
        if r == NO_REG {
            return Ok(0);
        }
        let ri = r as usize;
        if is_t {
            if self.internal_gen[ri] == self.gen {
                Ok(self.internal[ri])
            } else {
                Err(ExecError::MissingInternal { idx, reg: reg_of_index(r) })
            }
        } else {
            Ok(self.regs[ri])
        }
    }

    #[inline]
    fn old_dest(&self, r: u8) -> u64 {
        let ri = r as usize;
        if self.internal_gen[ri] == self.gen {
            self.internal[ri]
        } else {
            self.regs[ri]
        }
    }

    /// Executes the instruction at static index `i`, returning
    /// `(next pc, memory address, taken)` exactly as [`Machine::step`]
    /// would record them. Does **not** advance `pc` or `executed`.
    #[inline]
    fn exec_inst(&mut self, i: usize) -> Result<(u64, u64, bool), ExecError> {
        let fo = self.table.ops[i];
        let d = self.table.pre.op(i as u32);
        if fo.start {
            self.gen += 1;
        }
        let idx = i as u32;
        let s0 = self.read_src(idx, d.srcs[0], d.t_bits & 1 != 0)?;
        let s1 = self.read_src(idx, d.srcs[1], d.t_bits & 2 != 0)?;
        let old = if d.reads_dest != NO_REG { self.old_dest(d.reads_dest) } else { 0 };
        let imm = fo.imm;
        let f = |bits: u64| f64::from_bits(bits);
        let b = |x: f64| x.to_bits();

        let pc = i as u64;
        let mut next = pc + 1;
        let mut addr = 0u64;
        let mut taken = false;
        let mut result: Option<u64> = None;
        let target = |pc: u64| -> Result<u64, ExecError> {
            if fo.target == NO_TARGET {
                Err(ExecError::MissingTarget { pc })
            } else {
                Ok(fo.target as u64)
            }
        };

        use Opcode::*;
        match fo.opcode {
            Add => result = Some(s0.wrapping_add(s1)),
            Sub => result = Some(s0.wrapping_sub(s1)),
            Mul => result = Some(s0.wrapping_mul(s1)),
            Div => {
                result = Some(if s1 == 0 {
                    0
                } else {
                    (s0 as i64).wrapping_div(s1 as i64) as u64
                })
            }
            And => result = Some(s0 & s1),
            Or => result = Some(s0 | s1),
            Xor => result = Some(s0 ^ s1),
            Andnot => result = Some(s0 & !s1),
            Sll => result = Some(s0 << (s1 & 63)),
            Srl => result = Some(s0 >> (s1 & 63)),
            Sra => result = Some(((s0 as i64) >> (s1 & 63)) as u64),
            Cmpeq => result = Some((s0 == s1) as u64),
            Cmplt => result = Some(((s0 as i64) < (s1 as i64)) as u64),
            Cmple => result = Some(((s0 as i64) <= (s1 as i64)) as u64),
            Cmpult => result = Some((s0 < s1) as u64),
            Addi | Lda => result = Some(s0.wrapping_add(imm)),
            Subi => result = Some(s0.wrapping_sub(imm)),
            Muli => result = Some(s0.wrapping_mul(imm)),
            Andi => result = Some(s0 & imm),
            Ori => result = Some(s0 | imm),
            Xori => result = Some(s0 ^ imm),
            Slli => result = Some(s0 << (imm & 63)),
            Srli => result = Some(s0 >> (imm & 63)),
            Srai => result = Some(((s0 as i64) >> (imm & 63)) as u64),
            Cmpeqi => result = Some((s0 == imm) as u64),
            Cmplti => result = Some(((s0 as i64) < (imm as i64)) as u64),
            Zapnot => {
                let mut v = 0u64;
                for byte in 0..8 {
                    if imm >> byte & 1 == 1 {
                        v |= s0 & (0xff << (byte * 8));
                    }
                }
                result = Some(v);
            }
            Cmovne => result = Some(if s0 != 0 { s1 } else { old }),
            Cmoveq => result = Some(if s0 == 0 { s1 } else { old }),
            Cmovnei => result = Some(if s0 != 0 { imm } else { old }),
            Fadd => result = Some(b(f(s0) + f(s1))),
            Fsub => result = Some(b(f(s0) - f(s1))),
            Fmul => result = Some(b(f(s0) * f(s1))),
            Fdiv => result = Some(b(f(s0) / f(s1))),
            Fsqrt => result = Some(b(f(s0).sqrt())),
            Fcmpeq => result = Some((f(s0) == f(s1)) as u64),
            Fcmplt => result = Some((f(s0) < f(s1)) as u64),
            Fcmple => result = Some((f(s0) <= f(s1)) as u64),
            Fcmovne => result = Some(if s0 != 0 { s1 } else { old }),
            Cvtif => result = Some(b(s0 as i64 as f64)),
            Cvtfi => result = Some(f(s0) as i64 as u64),
            Ldl => {
                addr = s0.wrapping_add(imm);
                let v = u32::from_le_bytes(self.mem.read::<4>(addr));
                result = Some(v as i32 as i64 as u64);
            }
            Ldq | Fldd => {
                addr = s0.wrapping_add(imm);
                result = Some(u64::from_le_bytes(self.mem.read::<8>(addr)));
            }
            Stl => {
                addr = s1.wrapping_add(imm);
                self.mem.write::<4>(addr, (s0 as u32).to_le_bytes());
            }
            Stq | Fstd => {
                addr = s1.wrapping_add(imm);
                self.mem.write::<8>(addr, s0.to_le_bytes());
            }
            Br => {
                taken = true;
                next = target(pc)?;
            }
            Beq | Bne | Blt | Bge | Ble | Bgt => {
                let v = s0 as i64;
                taken = match fo.opcode {
                    Beq => v == 0,
                    Bne => v != 0,
                    Blt => v < 0,
                    Bge => v >= 0,
                    Ble => v <= 0,
                    _ => v > 0,
                };
                if taken {
                    next = target(pc)?;
                }
            }
            Call => {
                taken = true;
                result = Some(pc + 1);
                next = target(pc)?;
            }
            Ret => {
                taken = true;
                next = s0;
            }
            Nop => {}
            Halt => {
                self.halted = true;
                next = pc;
            }
        }

        if let Some(v) = result {
            let dd = d.dest;
            if dd != NO_REG {
                if d.is_internal() {
                    self.internal[dd as usize] = v;
                    self.internal_gen[dd as usize] = self.gen;
                }
                if d.is_external() {
                    self.regs[dd as usize] = v;
                }
            }
        }
        Ok((next, addr, taken))
    }

    /// Runs until `halt`, `executed == stop`, or an error; trace entries
    /// are recorded only when `RECORD` is set. `fuel` carries the same
    /// semantics as [`Machine::run`]: attempting to execute with the
    /// budget exhausted returns [`ExecError::OutOfFuel`].
    fn run_span<const RECORD: bool, const SINK: bool, S: FnMut(u32, &DecodedOp, u64)>(
        &mut self,
        stop: u64,
        fuel: u64,
        out: &mut Vec<TraceEntry>,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        let len = self.table.ops.len() as u64;
        while !self.halted && self.executed < stop {
            if self.executed >= fuel {
                return Err(ExecError::OutOfFuel);
            }
            if self.pc >= len {
                return Err(ExecError::PcOutOfRange(self.pc));
            }
            let i = self.pc as usize;
            let straight = self.table.run_len[i] as u64;
            if straight > 0 {
                // Basic-block interior: no control flow until the
                // terminator, so no pc/halt checks per instruction.
                let budget = stop.min(fuel) - self.executed;
                let run = straight.min(budget);
                for k in 0..run {
                    let at = i + k as usize;
                    let (_, addr, _) = self.exec_inst(at)?;
                    if SINK {
                        sink(at as u32, self.table.pre.op(at as u32), addr);
                    }
                    if RECORD {
                        out.push(TraceEntry {
                            idx: at as u32,
                            next_idx: at as u32 + 1,
                            addr,
                            taken: false,
                        });
                    }
                }
                self.executed += run;
                self.pc += run;
                continue;
            }
            // Block terminator (branch or halt): full single-step.
            let (next, addr, taken) = self.exec_inst(i)?;
            if SINK {
                sink(i as u32, self.table.pre.op(i as u32), addr);
            }
            if RECORD {
                out.push(TraceEntry { idx: i as u32, next_idx: next as u32, addr, taken });
            }
            self.executed += 1;
            self.pc = next;
        }
        Ok(())
    }

    /// Runs until `halt` or the budget is exhausted.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]; semantics match [`Machine::run`].
    pub fn run(&mut self, max_insts: u64) -> Result<(), ExecError> {
        let mut sink = Vec::new();
        self.run_span::<false, false, _>(u64::MAX, max_insts, &mut sink, &mut no_sink)
    }

    /// Runs until `halt` or `executed == stop` (a pause, not an error).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_until(&mut self, stop: u64, fuel: u64) -> Result<(), ExecError> {
        let mut sink = Vec::new();
        self.run_span::<false, false, _>(stop, fuel, &mut sink, &mut no_sink)
    }

    /// Like [`FastMachine::run_until`], reporting every executed
    /// instruction to `observe` as `(index, decoded op, effective
    /// address)` — the address is 0 for non-memory instructions. The
    /// sampled driver uses this for functional warming of
    /// microarchitectural state.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_until_observed<S: FnMut(u32, &DecodedOp, u64)>(
        &mut self,
        stop: u64,
        fuel: u64,
        observe: &mut S,
    ) -> Result<(), ExecError> {
        let mut sink = Vec::new();
        self.run_span::<false, true, _>(stop, fuel, &mut sink, observe)
    }

    /// Like [`FastMachine::run`], appending every trace entry to `out`.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_recording(
        &mut self,
        max_insts: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), ExecError> {
        self.run_span::<true, false, _>(u64::MAX, max_insts, out, &mut no_sink)
    }

    /// Records execution up to `stop`, then keeps recording until the next
    /// braid boundary: the span ends only when the *next* instruction to
    /// execute carries the braid `S` bit (or the machine halts). This keeps
    /// sampled trace windows well-formed for the braid timing core, which
    /// must never replay a window that starts or stops mid-braid.
    /// Unannotated programs have `S` on every instruction, so the
    /// extension is a no-op for them.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_recording_to_boundary(
        &mut self,
        stop: u64,
        fuel: u64,
        out: &mut Vec<TraceEntry>,
    ) -> Result<(), ExecError> {
        self.record_to_boundary::<false, _>(stop, fuel, out, &mut no_sink)
    }

    /// [`FastMachine::run_recording_to_boundary`] with the per-instruction
    /// `observe` hook of [`FastMachine::run_until_observed`].
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_recording_to_boundary_observed<S: FnMut(u32, &DecodedOp, u64)>(
        &mut self,
        stop: u64,
        fuel: u64,
        out: &mut Vec<TraceEntry>,
        observe: &mut S,
    ) -> Result<(), ExecError> {
        self.record_to_boundary::<true, _>(stop, fuel, out, observe)
    }

    fn record_to_boundary<const SINK: bool, S: FnMut(u32, &DecodedOp, u64)>(
        &mut self,
        stop: u64,
        fuel: u64,
        out: &mut Vec<TraceEntry>,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        self.run_span::<true, SINK, _>(stop, fuel, out, sink)?;
        let len = self.table.ops.len() as u64;
        while !self.halted && self.pc < len && !self.table.ops[self.pc as usize].start {
            if self.executed >= fuel {
                return Err(ExecError::OutOfFuel);
            }
            let i = self.pc as usize;
            let (next, addr, taken) = self.exec_inst(i)?;
            if SINK {
                sink(i as u32, self.table.pre.op(i as u32), addr);
            }
            out.push(TraceEntry { idx: i as u32, next_idx: next as u32, addr, taken });
            self.executed += 1;
            self.pc = next;
        }
        Ok(())
    }
}

/// The no-op instruction sink (compiled out entirely by the `SINK = false`
/// instantiations of the runners).
fn no_sink(_idx: u32, _op: &DecodedOp, _addr: u64) {}

// ------------------------------------------------------------- reports --

/// Result of a functional-tier run: instruction count, host time and the
/// final-state digest (deterministic, so cached responses can carry it).
#[derive(Debug, Clone, Default)]
pub struct FuncReport {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Host wall-clock nanoseconds of the run. **Not deterministic.**
    pub host_nanos: u64,
    /// [`ArchSnapshot::digest`] of the final architectural state.
    pub digest: u64,
}

impl FuncReport {
    /// Host throughput: executed instructions per wall-clock second.
    pub fn insts_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e9 / self.host_nanos as f64
        }
    }
}

impl fmt::Display for FuncReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts functional-only: host {:.2} Minsts/s, state digest {:016x}",
            self.instructions,
            self.insts_per_sec() / 1e6,
            self.digest
        )
    }
}

/// Result of a sampled-timing run: extrapolated cycles and CPI stack plus
/// the measurement bookkeeping needed to reason about the estimate.
#[derive(Debug, Clone, Default)]
pub struct SampledReport {
    /// Total dynamic instructions (functionally executed — exact).
    pub instructions: u64,
    /// Extrapolated cycles ([`SampledReport::cpi`] totals to exactly this).
    pub est_cycles: u64,
    /// Extrapolated CPI stack (per-interval measured stacks scaled to the
    /// period; `total()` always equals [`SampledReport::est_cycles`]).
    pub cpi: CpiStack,
    /// Sampling intervals taken.
    pub intervals: u64,
    /// Instructions replayed on the timing core (warm-up + sample).
    pub timed_insts: u64,
    /// Timed instructions whose cycles entered the estimate as direct
    /// measurement rather than extrapolation.
    pub measured_insts: u64,
    /// Cycles that entered the estimate as direct measurement; the rest of
    /// [`SampledReport::est_cycles`] is extrapolated.
    pub measured_cycles: u64,
    /// Warm-up prefix cycles timed separately so they could be excluded
    /// from the extrapolation rate (zero when every period was fully
    /// covered by its window and no extrapolation happened).
    pub overhead_cycles: u64,
    /// Host nanoseconds in the functional tier. **Not deterministic.**
    pub func_host_nanos: u64,
    /// Host nanoseconds in the timing core. **Not deterministic.**
    pub timing_host_nanos: u64,
}

impl SampledReport {
    /// Estimated retired instructions per cycle.
    pub fn est_ipc(&self) -> f64 {
        if self.est_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.est_cycles as f64
        }
    }

    /// Fraction of dynamic instructions replayed on the timing core.
    pub fn coverage(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.timed_insts as f64 / self.instructions as f64
        }
    }

    /// Total host nanoseconds (functional + timing).
    pub fn host_nanos(&self) -> u64 {
        self.func_host_nanos + self.timing_host_nanos
    }

    /// Host throughput over the whole run: instructions per second.
    pub fn insts_per_sec(&self) -> f64 {
        let ns = self.host_nanos();
        if ns == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e9 / ns as f64
        }
    }
}

impl fmt::Display for SampledReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} insts, est {} cycles: est IPC {:.3} ({} intervals, {:.1}% timed)",
            self.instructions,
            self.est_cycles,
            self.est_ipc(),
            self.intervals,
            self.coverage() * 100.0
        )?;
        write!(
            f,
            "  measured {} cycles over {} insts; host {:.2} Minsts/s overall",
            self.measured_cycles,
            self.measured_insts,
            self.insts_per_sec() / 1e6
        )
    }
}

// ------------------------------------------------------------- driver --

/// Errors from the two-tier drivers: either tier can fail.
#[derive(Debug)]
#[non_exhaustive]
pub enum SampleError {
    /// The functional tier failed.
    Exec(ExecError),
    /// The timing core failed on a sampled window.
    Sim(SimError),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Exec(e) => write!(f, "functional tier failed: {e}"),
            SampleError::Sim(e) => write!(f, "timing tier failed: {e}"),
        }
    }
}

impl Error for SampleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SampleError::Exec(e) => Some(e),
            SampleError::Sim(e) => Some(e),
        }
    }
}

impl From<ExecError> for SampleError {
    fn from(e: ExecError) -> SampleError {
        SampleError::Exec(e)
    }
}

impl From<SimError> for SampleError {
    fn from(e: SimError) -> SampleError {
        SampleError::Sim(e)
    }
}

/// Runs the functional tier on `program` and reports host throughput and
/// the final-state digest.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_func(program: &Program, fuel: u64) -> Result<FuncReport, ExecError> {
    let table = FuncTable::new(program);
    let mut m = FastMachine::new(program, &table);
    let t0 = Instant::now();
    m.run(fuel)?;
    let host_nanos = t0.elapsed().as_nanos() as u64;
    Ok(FuncReport { instructions: m.executed(), host_nanos, digest: m.snapshot().digest() })
}

/// Forces `stack` to total exactly `cycles` (deterministically): a deficit
/// is charged to [`StallCause::BeuSerial`] ("in flight, unattributed"), an
/// excess is shaved off the largest buckets first.
fn fit_stack(mut stack: CpiStack, cycles: u64) -> CpiStack {
    let total = stack.total();
    if total < cycles {
        stack.add(StallCause::BeuSerial, cycles - total);
        return stack;
    }
    let mut excess = total - cycles;
    while excess > 0 {
        // Deterministic: largest bucket, ties broken by canonical order.
        let mut best = StallCause::Base;
        let mut best_n = 0u64;
        for (cause, n) in stack.iter() {
            if n > best_n {
                best = cause;
                best_n = n;
            }
        }
        if best_n == 0 {
            break;
        }
        let take = excess.min(best_n);
        let mut rebuilt = CpiStack::new();
        for (cause, n) in stack.iter() {
            rebuilt.add(cause, if cause == best { n - take } else { n });
        }
        stack = rebuilt;
        excess -= take;
    }
    stack
}

/// Distributes `target` cycles across causes proportional to `stack`
/// (whose total must be non-zero) by largest-remainder apportionment,
/// deterministic tie-break by canonical cause order. The result totals
/// exactly `target`.
fn apportion(stack: &CpiStack, target: u64) -> CpiStack {
    let denom = stack.total();
    if denom == 0 {
        let mut out = CpiStack::new();
        out.add(StallCause::Base, target);
        return out;
    }
    let mut quotas = [0u64; crate::obs::NUM_CAUSES];
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(crate::obs::NUM_CAUSES);
    let mut assigned = 0u64;
    for (slot, cause) in StallCause::ALL.into_iter().enumerate() {
        let num = stack.get(cause) as u128 * target as u128;
        let q = (num / denom as u128) as u64;
        quotas[slot] = q;
        assigned += q;
        rems.push((num % denom as u128, slot));
    }
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = target.saturating_sub(assigned);
    for &(_, slot) in rems.iter().cycle().take(rems.len() * 2) {
        if left == 0 {
            break;
        }
        quotas[slot] += 1;
        left -= 1;
    }
    // Any still-unassigned remainder (degenerate stacks) goes to the first
    // cause so the invariant holds unconditionally.
    quotas[0] += left;
    let mut out = CpiStack::new();
    for (slot, cause) in StallCause::ALL.into_iter().enumerate() {
        out.add(cause, quotas[slot]);
    }
    out
}

/// Scales a measured interval (cycles + stack over `m_insts` instructions)
/// up to the full period of `period_insts` instructions. The returned
/// stack totals exactly the returned cycle count.
fn extrapolate(
    m_cycles: u64,
    m_insts: u64,
    stack: &CpiStack,
    period_insts: u64,
) -> (u64, CpiStack) {
    if m_insts == 0 || m_cycles == 0 || period_insts == 0 {
        return (0, CpiStack::new());
    }
    let est = ((m_cycles as u128 * period_insts as u128 + m_insts as u128 / 2)
        / m_insts as u128) as u64;
    let est = est.max(1);
    (est, apportion(stack, est))
}

/// The timing backend of [`run_sampled_with`].
///
/// A plain closure `FnMut(&Trace) -> Result<SimReport, SimError>`
/// implements this trait with the default no-op hooks: every window is
/// then timed on a completely cold core. The processor layer implements
/// it with SMARTS-style *functional warming*: [`SampleTiming::observe`]
/// feeds every functionally executed instruction into a persistent memory
/// hierarchy, and each timed window replays on a core seeded from the
/// [`SampleTiming::checkpoint`] taken at its interval start — the cache
/// state a continuous run would have there.
pub trait SampleTiming {
    /// Called once per functionally executed instruction, in program
    /// order, across recorded windows and fast-forwarded spans alike.
    /// `idx` is the static instruction index, `op` its decoded form and
    /// `addr` the effective address of memory operations (0 otherwise).
    fn observe(&mut self, idx: u32, op: &DecodedOp, addr: u64) {
        let _ = (idx, op, addr);
    }

    /// Called at the start of each sampling interval, before any of its
    /// instructions execute: capture the warmed state the interval's timed
    /// windows will start from.
    fn checkpoint(&mut self) {}

    /// Times `trace` on a fresh core instance (seeded from the last
    /// checkpoint when the backend maintains warmed state); the warm-up
    /// subtraction relies on deterministic replay of the shared prefix, so
    /// two calls between the same pair of checkpoints must start from
    /// identical state.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the timing core.
    fn time(&mut self, trace: &Trace) -> Result<SimReport, SimError>;
}

impl<F> SampleTiming for F
where
    F: FnMut(&Trace) -> Result<SimReport, SimError>,
{
    fn time(&mut self, trace: &Trace) -> Result<SimReport, SimError> {
        self(trace)
    }
}

/// The sampled-timing driver: functionally fast-forwards `program`,
/// replaying one warm-up + sample window per [`SamplingConfig::period`]
/// instructions on the timing core supplied by `timing`. Windows
/// contribute their measured cycles directly; any untimed remainder of a
/// period is extrapolated at the measured post-warm-up marginal rate.
///
/// `timing` receives each recorded sub-trace (the braid-boundary-aligned
/// windows) through [`SampleTiming::time`], plus the warming hooks
/// described on [`SampleTiming`].
///
/// With [`SamplingConfig::lockstep`] set (the debug default) the reference
/// interpreter runs alongside and [`ArchSnapshot`]s are compared at every
/// interval boundary; a divergence panics with a field-level diff, because
/// it means the fast tier mis-executed an instruction.
///
/// # Errors
///
/// [`SampleError::Exec`] from the functional tier (including
/// [`ExecError::OutOfFuel`], exactly as a full-tier run would report it),
/// [`SampleError::Sim`] from the timing core.
///
/// # Panics
///
/// On lockstep divergence — an implementation bug, never a workload
/// property.
pub fn run_sampled_with<T: SampleTiming>(
    program: &Program,
    fuel: u64,
    cfg: &SamplingConfig,
    mut timing: T,
) -> Result<SampledReport, SampleError> {
    cfg.validate()?;
    let table = FuncTable::new(program);
    let mut fast = FastMachine::new(program, &table);
    let mut golden = if cfg.lockstep { Some(Machine::new(program)) } else { None };
    let mut rep = SampledReport::default();
    let mut warm: Vec<TraceEntry> = Vec::new();
    let mut samp: Vec<TraceEntry> = Vec::new();
    // One measurement per interval; assembled into the estimate after the
    // loop, once the per-window fixed overhead can be fitted robustly.
    let mut intervals: Vec<Interval> = Vec::new();

    while !fast.halted() {
        let interval_start = fast.executed();
        warm.clear();
        samp.clear();
        timing.checkpoint();
        let t0 = Instant::now();
        let mut observe = |i: u32, op: &DecodedOp, a: u64| timing.observe(i, op, a);
        fast.run_recording_to_boundary_observed(
            interval_start + cfg.warmup,
            fuel,
            &mut warm,
            &mut observe,
        )?;
        fast.run_recording_to_boundary_observed(
            interval_start + cfg.warmup + cfg.sample,
            fuel,
            &mut samp,
            &mut observe,
        )?;
        rep.func_host_nanos += t0.elapsed().as_nanos() as u64;
        if warm.is_empty() && samp.is_empty() {
            break;
        }

        // Time the whole window. The warm-up prefix alone is only needed
        // when part of the period goes untimed — its subtraction yields
        // the marginal extrapolation rate, and deterministic replay makes
        // that subtraction exact. With the default full-coverage window
        // the second timing run is skipped entirely.
        let mut full = warm.clone();
        full.extend_from_slice(&samp);
        let rf = timing.time(&Trace { entries: full })?;
        rep.timing_host_nanos += rf.host_nanos;
        let has_tail =
            !fast.halted() && fast.executed() < interval_start + cfg.period;
        let rw = if has_tail && !warm.is_empty() && !samp.is_empty() {
            let r = timing.time(&Trace { entries: warm.clone() })?;
            rep.timing_host_nanos += r.host_nanos;
            Some(r)
        } else {
            None
        };

        // Fast-forward the remainder of the period functionally (still
        // warming: these instructions are part of the program's history).
        let t1 = Instant::now();
        let mut observe = |i: u32, op: &DecodedOp, a: u64| timing.observe(i, op, a);
        fast.run_until_observed(interval_start + cfg.period, fuel, &mut observe)?;
        rep.func_host_nanos += t1.elapsed().as_nanos() as u64;

        intervals.push(Interval {
            rf,
            rw,
            warm_insts: warm.len() as u64,
            samp_insts: samp.len() as u64,
            period_insts: fast.executed() - interval_start,
        });

        // Lockstep validation against the reference interpreter (the same
        // golden model braid-verify's oracle is built on).
        if let Some(m) = golden.as_mut() {
            while m.executed() < fast.executed() && !m.halted() {
                m.step(program)?;
            }
            let a = fast.snapshot();
            let b = ArchSnapshot::of_machine(m);
            if let Some(diff) = a.divergence(&b) {
                panic!(
                    "sampled lockstep divergence at instruction {} (fast vs reference): {diff}",
                    fast.executed()
                );
            }
        }
    }
    rep.instructions = fast.executed();
    assemble_estimate(&mut rep, &intervals);
    Ok(rep)
}

/// One sampling interval's timings: the full warm-up+sample window
/// (`rf`), the warm-up prefix alone (`rw`, when both parts were
/// non-empty), and the instruction counts involved.
struct Interval {
    rf: SimReport,
    rw: Option<SimReport>,
    warm_insts: u64,
    samp_insts: u64,
    period_insts: u64,
}

impl Interval {
    /// Instructions the window replayed on the timing core.
    fn timed_insts(&self) -> u64 {
        self.warm_insts + self.samp_insts
    }
}

/// Assembles the final estimate from per-interval measurements.
///
/// Every timed window contributes its measured cycles **directly** —
/// functional cache warming means a window replay is already close to the
/// continuous run's cost for those instructions, and any correction model
/// (fixed per-window overhead, rate fitting) was measured to inject more
/// error than the residual boundary effects it removes. Only the untimed
/// remainder of each period is extrapolated, at the post-warm-up marginal
/// rate `(full − warm-up) / sample` when a warm-up split was timed, else
/// at the window's overall rate. Warm-up cycles are thereby excluded from
/// every extrapolated cycle while still being counted once where they were
/// actually measured.
fn assemble_estimate(rep: &mut SampledReport, intervals: &[Interval]) {
    for iv in intervals {
        let timed = iv.timed_insts();
        // Measured part: counted as-is.
        rep.est_cycles += iv.rf.cycles;
        rep.cpi.merge(&iv.rf.cpi);
        rep.measured_cycles += iv.rf.cycles;
        rep.measured_insts += timed;

        // Untimed remainder: extrapolate, excluding warm-up cycles from
        // the rate when the warm-up prefix was timed separately.
        let tail = iv.period_insts.saturating_sub(timed);
        if tail > 0 {
            let (m_cycles, m_insts, m_stack) = match &iv.rw {
                Some(rw) => {
                    let cycles = iv.rf.cycles.saturating_sub(rw.cycles);
                    let mut stack = CpiStack::new();
                    for (cause, n) in iv.rf.cpi.iter() {
                        stack.add(cause, n.saturating_sub(rw.cpi.get(cause)));
                    }
                    (cycles, iv.samp_insts, fit_stack(stack, cycles))
                }
                None => (iv.rf.cycles, timed, iv.rf.cpi),
            };
            let (est, est_stack) = extrapolate(m_cycles, m_insts, &m_stack, tail);
            rep.est_cycles += est;
            rep.cpi.merge(&est_stack);
        }
        if let Some(rw) = &iv.rw {
            rep.overhead_cycles += rw.cycles;
        }
        rep.intervals += 1;
        rep.timed_insts += timed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    fn both(src: &str) -> (Machine, ArchSnapshot) {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(&p);
        m.run(&p, 1_000_000).expect("reference runs");
        let table = FuncTable::new(&p);
        let mut fm = FastMachine::new(&p, &table);
        fm.run(1_000_000).expect("fast runs");
        (m, fm.snapshot())
    }

    #[test]
    fn fast_matches_reference_on_a_loop() {
        let (m, snap) = both(
            r#"
                addi r0, #10, r1
            loop:
                addq r2, r1, r2
                subi r1, #1, r1
                bne  r1, loop
                stq  r2, 0x40(r0)
                halt
            "#,
        );
        assert_eq!(ArchSnapshot::of_machine(&m), snap);
        assert_eq!(snap.regs[2], 55);
    }

    #[test]
    fn fast_matches_reference_on_memory_and_fp() {
        let (m, snap) = both(
            r#"
                addi r0, #0x1000, r1
                addi r0, #-7, r2
                stq  r2, 0(r1)
                ldq  r3, 0(r1)
                stl  r2, 8(r1)
                ldl  r4, 8(r1)
                addi r0, #9, r5
                cvtqt r5, f1
                sqrtt f1, f2
                addt  f1, f2, f3
                cvttq f3, r6
                halt
            "#,
        );
        assert_eq!(ArchSnapshot::of_machine(&m), snap);
        assert_eq!(snap.regs[6], 12);
    }

    #[test]
    fn fuel_and_pc_errors_match_reference() {
        let p = assemble("loop: br loop\nhalt").expect("assembles");
        let table = FuncTable::new(&p);
        let mut fm = FastMachine::new(&p, &table);
        assert_eq!(fm.run(100).expect_err("must run out"), ExecError::OutOfFuel);
    }

    #[test]
    fn snapshot_digest_is_order_stable() {
        let (_, a) = both("addi r0, #1, r1\nstq r1, 0x2000(r0)\nhalt");
        let (_, b) = both("addi r0, #1, r1\nstq r1, 0x2000(r0)\nhalt");
        assert_eq!(a.digest(), b.digest());
        let (_, c) = both("addi r0, #2, r1\nstq r1, 0x2000(r0)\nhalt");
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn extrapolate_keeps_stack_total_equal_to_cycles() {
        let mut stack = CpiStack::new();
        stack.add(StallCause::Base, 7);
        stack.add(StallCause::DCache, 3);
        let (est, out) = extrapolate(10, 5, &stack, 17);
        assert_eq!(est, 34);
        assert_eq!(out.total(), est);
        let (est0, out0) = extrapolate(0, 0, &stack, 17);
        assert_eq!((est0, out0.total()), (0, 0));
    }

    #[test]
    fn fit_stack_reconciles_both_directions() {
        let mut s = CpiStack::new();
        s.add(StallCause::Base, 5);
        assert_eq!(fit_stack(s, 9).total(), 9);
        let mut s = CpiStack::new();
        s.add(StallCause::Base, 5);
        s.add(StallCause::DCache, 6);
        assert_eq!(fit_stack(s, 4).total(), 4);
    }

    #[test]
    fn tier_names_round_trip() {
        for t in Tier::ALL {
            assert_eq!(Tier::parse(t.name()), Some(t));
        }
        assert_eq!(Tier::parse("nope"), None);
    }
}
