//! Typed timing-simulation failures.
//!
//! Every execution core returns `Result<SimReport, SimError>`: a machine
//! that cannot make progress reports *why* — an impossible configuration or
//! a livelocked pipeline with a state dump — instead of panicking or
//! spinning forever. The fault-injection harness (`braid-verify`) leans on
//! this contract: corrupted programs and annotations must surface here, as
//! values, never as panics or hangs.

use std::error::Error;
use std::fmt;

/// Why a timing core could not produce a report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration describes an impossible machine (zero width, no
    /// execution units, an empty register pool, ...).
    Config(String),
    /// The no-retire-progress watchdog fired: the pipeline ran
    /// [`LivelockReport::watchdog_cycles`] cycles without retiring a single
    /// instruction.
    Livelock(Box<LivelockReport>),
    /// The simulated-cycle deadline
    /// ([`crate::config::CommonConfig::deadline_cycles`]) elapsed before the
    /// trace retired. Unlike a livelock the machine was still making
    /// progress — the run was simply too long for its budget. The abort
    /// cycle is deterministic, so deadline failures are reproducible and
    /// cacheable results like any other.
    Deadline {
        /// Cycle at which the run was cut off.
        cycle: u64,
        /// The configured deadline that was exceeded.
        deadline_cycles: u64,
        /// Instructions retired before the cutoff.
        retired: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Livelock(r) => write!(f, "{r}"),
            SimError::Deadline { cycle, deadline_cycles, retired } => write!(
                f,
                "deadline exceeded: {retired} instructions retired in {cycle} cycles \
                 (budget {deadline_cycles})"
            ),
        }
    }
}

impl Error for SimError {}

/// Pipeline state captured when the watchdog detects a livelock, precise
/// enough to see *what* is stuck: the retirement head, the in-flight
/// window, and each scheduler/FIFO's occupancy and head readiness.
#[derive(Debug, Clone, PartialEq)]
pub struct LivelockReport {
    /// Which core model livelocked (`"braid"`, `"ooo"`, ...).
    pub core: &'static str,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Cycle of the last retirement (0 if nothing ever retired).
    pub last_retire_cycle: u64,
    /// The watchdog threshold that was exceeded.
    pub watchdog_cycles: u64,
    /// Instructions retired before the machine stuck.
    pub retired: u64,
    /// Oldest unretired sequence number.
    pub head: u64,
    /// Dispatched but unretired instructions.
    pub in_flight: u64,
    /// Occupancy of the fetch-to-dispatch decoupling queue.
    pub fetch_queue: usize,
    /// Core-specific occupancy dump: one line per scheduler / BEU FIFO
    /// ("beu3: 5 entries, head seq 42 idx 17 deps-ready=false busy=[...]").
    pub queues: Vec<String>,
}

impl fmt::Display for LivelockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} core livelocked: no retirement for {} cycles (cycle {}, last retire at {})",
            self.core,
            self.cycle - self.last_retire_cycle,
            self.cycle,
            self.last_retire_cycle
        )?;
        writeln!(
            f,
            "  retired {} instructions; head seq {}; {} in flight; {} queued at dispatch",
            self.retired, self.head, self.in_flight, self.fetch_queue
        )?;
        for line in &self.queues {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_dump() {
        let e = SimError::Livelock(Box::new(LivelockReport {
            core: "braid",
            cycle: 20_100,
            last_retire_cycle: 100,
            watchdog_cycles: 20_000,
            retired: 17,
            head: 17,
            in_flight: 3,
            fetch_queue: 4,
            queues: vec!["beu0: empty".into(), "beu1: seq 18 waiting on seq 12".into()],
        }));
        let text = e.to_string();
        assert!(text.contains("no retirement for 20000 cycles"));
        assert!(text.contains("retired 17 instructions"));
        assert!(text.contains("beu1: seq 18 waiting on seq 12"));
        let c = SimError::Config("width must be positive".into());
        assert!(c.to_string().contains("width must be positive"));
    }
}
