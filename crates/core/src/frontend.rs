//! The shared aggressive front end (paper Table 4, common parameters).
//!
//! Fetches up to `width` instructions per cycle, crossing up to 3 branches,
//! through the L1 instruction cache, with perceptron (or perfect) branch
//! prediction and a return-address stack. A mispredicted control transfer
//! stops fetch; the owning core calls [`Frontend::resolve_branch`] when the
//! branch executes, and fetch resumes after the configured misprediction
//! penalty (23 cycles conventional, 19 in the braid machine).

use braid_isa::{Opcode, Program};
use braid_uarch::branch::{
    BranchPredictor, BranchTargetBuffer, GsharePredictor, PerceptronPredictor, PerfectPredictor,
    ReturnAddressStack,
};

use crate::config::PredictorKind;
use braid_uarch::cache::{Access, MemoryHierarchy};
use braid_uarch::stats::Ratio;

use crate::config::CommonConfig;
use crate::trace::Trace;

/// Base address of the simulated text segment (instruction fetch
/// addresses), chosen away from workload data.
pub const TEXT_BASE: u64 = 0x4000_0000;

/// Bytes per instruction in the simulated text segment.
pub const INST_BYTES: u64 = 8;

/// Why fetch is currently not delivering instructions (CPI attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchGap {
    /// Fetch can deliver (or the stall reason has expired).
    None,
    /// Blocked on an unresolved misprediction, refilling after one, or
    /// recovering from a rewind / BTB bubble.
    Mispredict,
    /// Waiting for an instruction-cache miss to return.
    ICache,
    /// The trace is exhausted; nothing left to fetch.
    Done,
}

/// One fetched dynamic instruction handed to the core.
#[derive(Debug, Clone, Copy)]
pub struct Fetched {
    /// Dynamic sequence number (position in the trace).
    pub seq: u64,
    /// Static instruction index.
    pub idx: u32,
    /// Memory effective address (from the trace), `0` for non-memory.
    pub addr: u64,
    /// Whether this control transfer was mispredicted at fetch.
    pub mispredicted: bool,
}

/// The fetch engine.
pub struct Frontend<'a> {
    program: &'a Program,
    trace: &'a Trace,
    pos: usize,
    /// Fetch may not proceed before this cycle (misprediction refill or
    /// I-cache miss).
    resume_at: u64,
    /// Sequence number of the unresolved mispredicted branch gating fetch.
    blocked_on: Option<u64>,
    penalty: u64,
    width: u32,
    max_branches: u32,
    perfect: bool,
    predictor: Box<dyn BranchPredictor>,
    oracle: PerfectPredictor,
    ras: ReturnAddressStack,
    btb: Option<BranchTargetBuffer>,
    mispredict_stall_from: u64,
    /// Cycles spent stalled on misprediction refills.
    pub mispredict_stall_cycles: u64,
    /// Why `resume_at` is in the future (CPI attribution).
    resume_reason: FetchGap,
}

impl<'a> Frontend<'a> {
    /// Creates a front end over `trace` of `program`.
    pub fn new(program: &'a Program, trace: &'a Trace, config: &CommonConfig) -> Frontend<'a> {
        Frontend {
            program,
            trace,
            pos: 0,
            resume_at: 0,
            blocked_on: None,
            penalty: config.mispredict_penalty,
            width: config.width,
            max_branches: config.max_branches_per_cycle,
            perfect: config.perfect_branch_predictor,
            predictor: match config.predictor {
                PredictorKind::Perceptron => {
                    Box::new(PerceptronPredictor::paper_default()) as Box<dyn BranchPredictor>
                }
                PredictorKind::Gshare => Box::new(GsharePredictor::classic_4k()),
            },
            oracle: PerfectPredictor::new(),
            ras: ReturnAddressStack::new(32),
            btb: if config.btb_entries > 0 && !config.perfect_branch_predictor {
                Some(BranchTargetBuffer::new(config.btb_entries))
            } else {
                None
            },
            mispredict_stall_from: 0,
            mispredict_stall_cycles: 0,
            resume_reason: FetchGap::None,
        }
    }

    /// Whether every trace entry has been fetched.
    pub fn done(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// The earliest cycle at which fetch could make progress again.
    pub fn next_event(&self) -> Option<u64> {
        if self.done() || self.blocked_on.is_some() {
            None
        } else {
            Some(self.resume_at)
        }
    }

    /// Rewinds fetch to trace position `pos` (checkpoint recovery). The
    /// predictor state is kept — replayed branches train twice, a minor
    /// artifact of trace-driven replay.
    pub fn rewind(&mut self, pos: u64, cycle: u64) {
        self.pos = pos as usize;
        self.blocked_on = None;
        self.resume_at = self.resume_at.max(cycle);
        self.resume_reason = FetchGap::Mispredict;
    }

    /// Why fetch is not delivering at `cycle` ([`FetchGap::None`] when it
    /// can, or when the last recorded reason has expired).
    pub fn stall_kind(&self, cycle: u64) -> FetchGap {
        if self.blocked_on.is_some() {
            FetchGap::Mispredict
        } else if self.done() {
            FetchGap::Done
        } else if cycle < self.resume_at {
            self.resume_reason
        } else {
            FetchGap::None
        }
    }

    /// Notifies the front end that the mispredicted branch `seq` resolved
    /// at `cycle`; fetch resumes after the misprediction penalty.
    pub fn resolve_branch(&mut self, seq: u64, cycle: u64) {
        if self.blocked_on == Some(seq) {
            self.blocked_on = None;
            self.resume_at = self.resume_at.max(cycle + self.penalty);
            self.resume_reason = FetchGap::Mispredict;
            self.mispredict_stall_cycles +=
                self.resume_at.saturating_sub(self.mispredict_stall_from);
        }
    }

    /// Conditional-branch prediction accuracy so far.
    pub fn branch_accuracy(&self) -> Ratio {
        if self.perfect {
            self.oracle.accuracy()
        } else {
            self.predictor.accuracy()
        }
    }

    /// Return-target prediction accuracy so far.
    pub fn ras_accuracy(&self) -> Ratio {
        self.ras.accuracy()
    }

    /// Fetches up to `room` instructions in `cycle` (bounded by the fetch
    /// width, the 3-branch limit, I-cache misses, and mispredictions),
    /// allocating a fresh buffer. Prefer [`Frontend::fetch_into`] on hot
    /// paths.
    pub fn fetch(&mut self, cycle: u64, mem: &mut MemoryHierarchy, room: usize) -> Vec<Fetched> {
        let mut out = Vec::new();
        self.fetch_into(cycle, mem, room, &mut out);
        out
    }

    /// Like [`Frontend::fetch`], but appends into the caller-owned `out`
    /// buffer (cleared first) so the per-cycle loop allocates nothing.
    pub fn fetch_into(
        &mut self,
        cycle: u64,
        mem: &mut MemoryHierarchy,
        room: usize,
        out: &mut Vec<Fetched>,
    ) {
        out.clear();
        if cycle < self.resume_at || self.blocked_on.is_some() {
            return;
        }
        let l1i_latency = mem.config().l1i.latency;
        let mut branches = 0;
        while out.len() < room.min(self.width as usize) && self.pos < self.trace.len() {
            let entry = self.trace.entries[self.pos];
            let inst = &self.program.insts[entry.idx as usize];
            // Instruction cache: a miss delays the rest of fetch.
            let lat = mem.access(Access::Fetch, TEXT_BASE + entry.idx as u64 * INST_BYTES);
            if lat > l1i_latency {
                self.resume_at = cycle + (lat - l1i_latency);
                self.resume_reason = FetchGap::ICache;
                // The missing instruction itself is fetched when the line
                // arrives.
                break;
            }
            let mut mispredicted = false;
            let op = inst.opcode;
            if op.is_branch() {
                if branches >= self.max_branches {
                    break;
                }
                branches += 1;
                if op.is_cond_branch() {
                    let pc = entry.idx as u64;
                    let (pred, actual) = if self.perfect {
                        self.oracle.set_oracle(entry.taken);
                        (self.oracle.predict(pc), entry.taken)
                    } else {
                        (self.predictor.predict(pc), entry.taken)
                    };
                    if self.perfect {
                        self.oracle.update(pc, actual, pred);
                    } else {
                        self.predictor.update(pc, actual, pred);
                    }
                    mispredicted = pred != actual;
                } else if op == Opcode::Call {
                    self.ras.push(entry.idx as u64 + 1);
                } else if op == Opcode::Ret {
                    let predicted = self.ras.pop_predict();
                    let correct = predicted == Some(entry.next_idx as u64);
                    self.ras.record(correct);
                    mispredicted = !correct;
                }
            }
            // A taken direct transfer needs its target from the BTB on the
            // same cycle; a BTB miss ends the group with a refetch bubble.
            let mut btb_bubble = false;
            if let Some(btb) = self.btb.as_mut() {
                if entry.taken && !op.is_indirect() && op.is_branch() {
                    let hit = btb.predict(entry.idx as u64) == Some(entry.next_idx as u64);
                    btb.update(entry.idx as u64, entry.next_idx as u64);
                    if !hit && !mispredicted {
                        btb_bubble = true;
                    }
                }
            }
            out.push(Fetched {
                seq: self.pos as u64,
                idx: entry.idx,
                addr: entry.addr,
                mispredicted,
            });
            self.pos += 1;
            if btb_bubble {
                self.resume_at = self.resume_at.max(cycle + 2);
                self.resume_reason = FetchGap::Mispredict;
                break;
            }
            if mispredicted {
                // Fetch is down the wrong path from here; stall until the
                // core resolves this branch.
                self.blocked_on = Some(self.pos as u64 - 1);
                self.mispredict_stall_from = cycle + 1;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;
    use braid_uarch::cache::MemoryHierarchyConfig;

    fn setup(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 100_000).unwrap();
        (p, t)
    }

    #[test]
    fn straight_line_fetches_width_per_cycle() {
        let (p, t) = setup("nop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nhalt");
        let cfg = CommonConfig::paper_8wide().perfect();
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        let mut fe = Frontend::new(&p, &t, &cfg);
        let g1 = fe.fetch(0, &mut mem, 64);
        assert_eq!(g1.len(), 8);
        let g2 = fe.fetch(1, &mut mem, 64);
        assert_eq!(g2.len(), 2);
        assert!(fe.done());
    }

    #[test]
    fn perfect_mode_never_mispredicts() {
        let (p, t) = setup(
            "addi r0, #50, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt",
        );
        let cfg = CommonConfig::paper_8wide().perfect();
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        let mut fe = Frontend::new(&p, &t, &cfg);
        let mut cycle = 0;
        let mut fetched = 0;
        while !fe.done() {
            let g = fe.fetch(cycle, &mut mem, 64);
            for f in &g {
                assert!(!f.mispredicted);
            }
            fetched += g.len();
            cycle += 1;
        }
        assert_eq!(fetched, t.len());
        assert_eq!(fe.branch_accuracy().rate(), 1.0);
    }

    #[test]
    fn branch_limit_caps_group() {
        // 5 taken branches in a row: at most 3 per fetch group.
        let (p, t) = setup(
            "br a\na: br b\nb: br c\nc: br d\nd: br e\ne: halt",
        );
        let cfg = CommonConfig::paper_8wide().perfect();
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        let mut fe = Frontend::new(&p, &t, &cfg);
        let g = fe.fetch(0, &mut mem, 64);
        assert_eq!(g.len(), 3, "three branches max per cycle");
    }

    #[test]
    fn misprediction_blocks_until_resolution() {
        // One loop iteration: the perceptron predictor starts cold and the
        // final not-taken bne is mispredicted after warmup on taken.
        let (p, t) = setup(
            "addi r0, #64, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt",
        );
        let mut cfg = CommonConfig::paper_8wide();
        cfg.perfect_branch_predictor = false;
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        let mut fe = Frontend::new(&p, &t, &cfg);
        let mut cycle = 0;
        let mut got = Vec::new();
        let mut resolved_pending: Option<(u64, u64)> = None;
        while !fe.done() && cycle < 10_000 {
            if let Some((seq, at)) = resolved_pending {
                if cycle >= at {
                    fe.resolve_branch(seq, cycle);
                    resolved_pending = None;
                }
            }
            let g = fe.fetch(cycle, &mut mem, 64);
            for f in &g {
                if f.mispredicted {
                    resolved_pending = Some((f.seq, cycle + 3));
                }
            }
            got.extend(g);
            cycle += 1;
        }
        assert_eq!(got.len(), t.len(), "everything fetched eventually");
        assert!(fe.branch_accuracy().misses() >= 1);
        assert!(fe.mispredict_stall_cycles >= 19);
    }

    #[test]
    fn ras_predicts_returns() {
        let (p, t) = setup(
            r#"
                call f, r31
                call f, r31
                halt
            f:  ret r31
            "#,
        );
        let cfg = CommonConfig::paper_8wide().perfect();
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        let mut fe = Frontend::new(&p, &t, &cfg);
        let mut cycle = 0;
        while !fe.done() && cycle < 100 {
            for f in fe.fetch(cycle, &mut mem, 64) {
                assert!(!f.mispredicted, "RAS covers matched call/ret");
            }
            cycle += 1;
        }
        assert_eq!(fe.ras_accuracy().rate(), 1.0);
    }

    #[test]
    fn icache_miss_delays_fetch() {
        let (p, t) = setup("nop\nnop\nhalt");
        let cfg = CommonConfig::paper_8wide().perfect();
        // Real (cold) caches: first access misses to memory.
        let mut mem = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        let mut fe = Frontend::new(&p, &t, &cfg);
        assert!(fe.fetch(0, &mut mem, 64).is_empty(), "cold I-cache miss");
        let resume = fe.next_event().unwrap();
        assert!(resume > 300, "miss to memory takes ~400 cycles");
        assert!(fe.fetch(resume - 1, &mut mem, 64).is_empty());
        assert_eq!(fe.fetch(resume, &mut mem, 64).len(), 3);
    }
}

#[cfg(test)]
mod btb_gshare_tests {
    use super::*;
    use crate::config::PredictorKind;
    use crate::functional::Machine;
    use braid_isa::asm::assemble;
    use braid_uarch::cache::MemoryHierarchyConfig;

    fn setup(src: &str) -> (braid_isa::Program, Trace) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run(&p, 100_000).unwrap();
        (p, t)
    }

    #[test]
    fn btb_cold_miss_bubbles_then_hits() {
        let (p, t) = setup("addi r0, #20, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt");
        let mut cfg = CommonConfig::paper_8wide();
        cfg.perfect_branch_predictor = false;
        cfg.mem = MemoryHierarchyConfig::perfect();
        let mut fe = Frontend::new(&p, &t, &cfg);
        let mut mem = braid_uarch::cache::MemoryHierarchy::new(cfg.mem);
        let mut cycle = 0;
        let mut pending: Option<(u64, u64)> = None;
        let mut fetched = 0;
        while !fe.done() && cycle < 10_000 {
            if let Some((seq, at)) = pending {
                if cycle >= at {
                    fe.resolve_branch(seq, cycle);
                    pending = None;
                }
            }
            for f in fe.fetch(cycle, &mut mem, 64) {
                fetched += 1;
                if f.mispredicted {
                    pending = Some((f.seq, cycle + 3));
                }
            }
            cycle += 1;
        }
        assert_eq!(fetched, t.len(), "everything fetched despite BTB bubbles");
    }

    #[test]
    fn gshare_frontend_runs() {
        let (p, t) = setup("addi r0, #500, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt");
        let mut cfg = CommonConfig::paper_8wide();
        cfg.perfect_branch_predictor = false;
        cfg.predictor = PredictorKind::Gshare;
        cfg.mem = MemoryHierarchyConfig::perfect();
        let mut fe = Frontend::new(&p, &t, &cfg);
        let mut mem = braid_uarch::cache::MemoryHierarchy::new(cfg.mem);
        let mut cycle = 0;
        let mut pending: Option<(u64, u64)> = None;
        while !fe.done() && cycle < 10_000 {
            if let Some((seq, at)) = pending {
                if cycle >= at {
                    fe.resolve_branch(seq, cycle);
                    pending = None;
                }
            }
            for f in fe.fetch(cycle, &mut mem, 64) {
                if f.mispredicted {
                    pending = Some((f.seq, cycle + 3));
                }
            }
            cycle += 1;
        }
        assert!(fe.done());
        assert!(fe.branch_accuracy().rate() > 0.8, "{}", fe.branch_accuracy());
    }
}
