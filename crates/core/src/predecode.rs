//! Predecoded static instructions for the per-cycle hot path.
//!
//! The timing cores interrogate each dynamic instruction many times per
//! cycle — dependence construction, readiness checks, issue, retirement —
//! and every query used to re-derive properties from the [`Inst`] via
//! `Opcode` matches and `Option<Reg>` iterators. [`PreDecoded`] folds all
//! of that into one flat, cache-friendly table built **once per run**,
//! keyed by static instruction index (the simulated PC): a [`DecodedOp`]
//! per static instruction with register indices and a flag byte.
//!
//! Invariants (see DESIGN.md "Predecode cache"):
//!
//! * The table is a pure function of the immutable [`Program`]; it is
//!   built at engine construction and never updated. Checkpoint squash /
//!   replay never invalidates it because squashes replay the *same*
//!   static instructions.
//! * Register slots hold the flat [`Reg::index`] (0–63) or [`NO_REG`].
//!   The hard-wired zero register is folded to [`NO_REG`] at build time,
//!   so dependence construction needs no `is_zero` test on the hot path.
//! * Flags mirror the corresponding `Opcode` predicates exactly; the
//!   `decoded_table_matches_opcode_predicates` test enforces this for
//!   every instruction of every kernel workload.

use braid_isa::{Inst, Program};

/// Sentinel register slot: "no register / hard-wired zero".
pub const NO_REG: u8 = u8::MAX;

/// Flag: the instruction accesses memory.
pub const F_MEM: u8 = 1 << 0;
/// Flag: the instruction is a load.
pub const F_LOAD: u8 = 1 << 1;
/// Flag: the instruction is a store.
pub const F_STORE: u8 = 1 << 2;
/// Flag: the instruction is a control transfer.
pub const F_BRANCH: u8 = 1 << 3;
/// Flag: the instruction writes a register destination.
pub const F_HAS_DEST: u8 = 1 << 4;
/// Flag: the destination is braid-external (and written).
pub const F_EXTERNAL: u8 = 1 << 5;
/// Flag: the destination is braid-internal (and written).
pub const F_INTERNAL: u8 = 1 << 6;

/// One predecoded static instruction.
#[derive(Debug, Clone, Copy)]
pub struct DecodedOp {
    /// Explicit source register indices ([`NO_REG`] for absent or zero).
    pub srcs: [u8; 2],
    /// Implicit old-destination read (conditional moves), or [`NO_REG`].
    pub reads_dest: u8,
    /// Written register index ([`NO_REG`] for none or the zero register —
    /// discarded writes create no dataflow edge).
    pub dest: u8,
    /// Execution latency in cycles (address generation only for memory).
    pub latency: u8,
    /// Bytes accessed by a memory operation, `0` otherwise.
    pub mem_bytes: u8,
    /// Explicit source count (register-file read ports consumed).
    pub num_srcs: u8,
    /// `F_*` property flags.
    pub flags: u8,
    /// Braid `T` bits per source slot (bit *i* set: source *i* is read
    /// from the producing braid's internal register file).
    pub t_bits: u8,
}

impl DecodedOp {
    /// Decodes one instruction.
    fn new(inst: &Inst) -> DecodedOp {
        let op = inst.opcode;
        let mut srcs = [NO_REG; 2];
        for (i, r) in inst.src_regs().enumerate() {
            if !r.is_zero() {
                srcs[i] = r.index();
            }
        }
        let reads_dest = if op.reads_dest() {
            // `reads_dest` implies a destination by instruction validation.
            inst.dest.map_or(NO_REG, |d| d.index())
        } else {
            NO_REG
        };
        let written = inst.written_reg();
        let dest = match written {
            Some(d) if !d.is_zero() => d.index(),
            _ => NO_REG,
        };
        let mut flags = 0u8;
        if op.is_mem() {
            flags |= F_MEM;
        }
        if op.is_load() {
            flags |= F_LOAD;
        }
        if op.is_store() {
            flags |= F_STORE;
        }
        if op.is_branch() {
            flags |= F_BRANCH;
        }
        if written.is_some() {
            flags |= F_HAS_DEST;
        }
        if inst.braid.external && written.is_some() {
            flags |= F_EXTERNAL;
        }
        if inst.braid.internal && written.is_some() {
            flags |= F_INTERNAL;
        }
        let mut t_bits = 0u8;
        for (slot, &is_t) in inst.braid.t.iter().enumerate() {
            if is_t {
                t_bits |= 1 << slot;
            }
        }
        DecodedOp {
            srcs,
            reads_dest,
            dest,
            latency: inst.opcode.latency() as u8,
            mem_bytes: op.mem_bytes() as u8,
            num_srcs: op.num_srcs() as u8,
            flags,
            t_bits,
        }
    }

    /// Whether the instruction accesses memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & F_MEM != 0
    }

    /// Whether the instruction is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    /// Whether the instruction is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & F_STORE != 0
    }

    /// Whether the instruction is a control transfer.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.flags & F_BRANCH != 0
    }

    /// Whether the instruction writes any register destination (including
    /// the architecturally-discarded zero register).
    #[inline]
    pub fn has_dest(&self) -> bool {
        self.flags & F_HAS_DEST != 0
    }

    /// Whether the written destination is braid-external.
    #[inline]
    pub fn is_external(&self) -> bool {
        self.flags & F_EXTERNAL != 0
    }

    /// Whether the written destination is braid-internal.
    #[inline]
    pub fn is_internal(&self) -> bool {
        self.flags & F_INTERNAL != 0
    }

    /// Whether source slot `slot` carries a braid `T` annotation (read
    /// from the internal register file).
    #[inline]
    pub fn is_t(&self, slot: usize) -> bool {
        self.t_bits & (1 << slot) != 0
    }
}

/// The per-program predecode table, indexed by static instruction index.
#[derive(Debug, Clone)]
pub struct PreDecoded {
    ops: Vec<DecodedOp>,
}

impl PreDecoded {
    /// Builds the table for `program` (one pass, done once per run).
    pub fn new(program: &Program) -> PreDecoded {
        PreDecoded { ops: program.insts.iter().map(DecodedOp::new).collect() }
    }

    /// The decoded form of static instruction `idx`.
    #[inline]
    pub fn op(&self, idx: u32) -> &DecodedOp {
        &self.ops[idx as usize]
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_table_matches_opcode_predicates() {
        for w in braid_workloads::kernel_suite() {
            let table = PreDecoded::new(&w.program);
            assert_eq!(table.len(), w.program.len());
            for (i, inst) in w.program.insts.iter().enumerate() {
                let d = table.op(i as u32);
                let op = inst.opcode;
                assert_eq!(d.is_mem(), op.is_mem(), "{}: inst {i} mem flag", w.name);
                assert_eq!(d.is_load(), op.is_load(), "{}: inst {i} load flag", w.name);
                assert_eq!(d.is_store(), op.is_store(), "{}: inst {i} store flag", w.name);
                assert_eq!(d.is_branch(), op.is_branch(), "{}: inst {i} branch flag", w.name);
                assert_eq!(
                    d.has_dest(),
                    inst.written_reg().is_some(),
                    "{}: inst {i} dest flag",
                    w.name
                );
                assert_eq!(d.latency as u64, op.latency(), "{}: inst {i} latency", w.name);
                assert_eq!(d.mem_bytes as u64, op.mem_bytes(), "{}: inst {i} bytes", w.name);
                assert_eq!(d.num_srcs as usize, op.num_srcs(), "{}: inst {i} srcs", w.name);
                // Register slots agree with the iterator view.
                let mut want = [NO_REG; 2];
                for (k, r) in inst.src_regs().enumerate() {
                    if !r.is_zero() {
                        want[k] = r.index();
                    }
                }
                assert_eq!(d.srcs, want, "{}: inst {i} src regs", w.name);
                if op.reads_dest() {
                    assert_eq!(Some(d.reads_dest), inst.dest.map(|r| r.index()));
                } else {
                    assert_eq!(d.reads_dest, NO_REG);
                }
            }
        }
    }

    #[test]
    fn zero_register_writes_are_folded_out() {
        let p = braid_isa::asm::assemble("addi r1, #1, r0\nhalt").unwrap();
        let t = PreDecoded::new(&p);
        assert!(t.op(0).has_dest(), "the write exists architecturally");
        assert_eq!(t.op(0).dest, NO_REG, "but creates no dataflow edge");
    }
}
