//! Processor configurations (paper Table 4) with builders.

use braid_uarch::cache::MemoryHierarchyConfig;

use crate::error::SimError;

/// Which conditional-branch direction predictor the front end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// The paper's perceptron (512 entries, 64-bit history).
    #[default]
    Perceptron,
    /// Classic gshare (4K 2-bit counters, 12-bit history) for comparison.
    Gshare,
}

/// Parameters shared by every execution core (Table 4, "common
/// parameters").
#[derive(Debug, Clone, PartialEq)]
pub struct CommonConfig {
    /// Issue width (also fetch and retire width).
    pub width: u32,
    /// Maximum branches fetched per cycle (the paper's aggressive front end
    /// processes up to 3).
    pub max_branches_per_cycle: u32,
    /// Use a perfect branch predictor (Figure 1 mode).
    pub perfect_branch_predictor: bool,
    /// Which real predictor to use when not perfect.
    pub predictor: PredictorKind,
    /// Branch target buffer entries (0 disables target modelling: direct
    /// targets are always available, as in an infinite BTB).
    pub btb_entries: usize,
    /// Memory hierarchy; use [`MemoryHierarchyConfig::perfect`] for
    /// Figure 1.
    pub mem: MemoryHierarchyConfig,
    /// Minimum branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Load-store queue entries.
    pub lsq_entries: usize,
    /// Conservative memory disambiguation: loads wait for every older
    /// store's address generation instead of the default perfect
    /// memory-dependence prediction.
    pub conservative_disambiguation: bool,
    /// Maximum in-flight (dispatched, unretired) instructions.
    pub window: usize,
    /// Livelock watchdog: cycles without a retirement before the run aborts
    /// with [`crate::error::SimError::Livelock`] (0 = the 20 000-cycle
    /// default, far beyond any legitimate stall).
    pub watchdog_cycles: u64,
    /// Simulated-cycle deadline: the run aborts with
    /// [`crate::error::SimError::Deadline`] once the clock reaches this many
    /// cycles (0 = no deadline). Deadlines ride the same no-progress check
    /// as the watchdog, so they are deterministic: the same program and
    /// configuration always abort at the same simulated cycle, regardless
    /// of host load. Long-lived services use this to bound per-request
    /// simulation cost.
    pub deadline_cycles: u64,
}

impl CommonConfig {
    /// The paper's 8-wide common configuration with the conventional
    /// 23-cycle misprediction penalty.
    pub fn paper_8wide() -> CommonConfig {
        CommonConfig {
            width: 8,
            max_branches_per_cycle: 3,
            perfect_branch_predictor: false,
            predictor: PredictorKind::Perceptron,
            btb_entries: 4096,
            mem: MemoryHierarchyConfig::default(),
            mispredict_penalty: 23,
            lsq_entries: 64,
            conservative_disambiguation: false,
            window: 256,
            watchdog_cycles: 0,
            deadline_cycles: 0,
        }
    }

    /// Scales width-dependent resources for `width`-wide variants
    /// (Figures 1 and 13 use 4-, 8- and 16-wide machines).
    pub fn with_width(mut self, width: u32) -> CommonConfig {
        self.window = self.window * width as usize / self.width as usize;
        self.lsq_entries = self.lsq_entries * width as usize / self.width as usize;
        self.width = width;
        self
    }

    /// Enables the perfect front end and perfect caches of Figure 1.
    pub fn perfect(mut self) -> CommonConfig {
        self.perfect_branch_predictor = true;
        self.mem = MemoryHierarchyConfig::perfect();
        self
    }

    /// Checks that the shared parameters describe a runnable machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        require(self.width > 0, "width must be positive")?;
        require(self.window > 0, "window must hold at least one instruction")?;
        require(self.lsq_entries > 0, "lsq needs at least one entry")?;
        Ok(())
    }
}

/// Shorthand for configuration checks.
fn require(ok: bool, msg: &str) -> Result<(), SimError> {
    if ok {
        Ok(())
    } else {
        Err(SimError::Config(msg.to_string()))
    }
}

/// The conventional out-of-order configuration (Table 4, middle).
#[derive(Debug, Clone, PartialEq)]
pub struct OooConfig {
    /// Shared parameters (23-cycle penalty).
    pub common: CommonConfig,
    /// Number of distributed schedulers.
    pub schedulers: u32,
    /// Entries per scheduler.
    pub sched_entries: u32,
    /// General-purpose functional units (one per scheduler in the paper).
    pub fus: u32,
    /// In-flight register buffer entries (the "registers" of Figure 5);
    /// freed at retirement.
    pub regs: u32,
    /// Register file read ports.
    pub rf_read_ports: u32,
    /// Register file write ports.
    pub rf_write_ports: u32,
    /// Bypass network bandwidth in values per cycle.
    pub bypass_per_cycle: u32,
}

impl OooConfig {
    /// The paper's aggressive 8-wide out-of-order machine.
    pub fn paper_8wide() -> OooConfig {
        OooConfig {
            common: CommonConfig::paper_8wide(),
            schedulers: 8,
            sched_entries: 32,
            fus: 8,
            regs: 256,
            rf_read_ports: 16,
            rf_write_ports: 8,
            bypass_per_cycle: 8,
        }
    }

    /// A `width`-wide variant with proportionally scaled resources.
    pub fn paper_wide(width: u32) -> OooConfig {
        let base = OooConfig::paper_8wide();
        OooConfig {
            common: base.common.clone().with_width(width),
            schedulers: width,
            sched_entries: 32,
            fus: width,
            regs: 256 * width / 8,
            rf_read_ports: 2 * width,
            rf_write_ports: width,
            bypass_per_cycle: width,
        }
    }

    /// Checks the machine is constructible (every pool and port count the
    /// core divides by or allocates from is positive).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        self.common.validate()?;
        require(self.schedulers > 0, "ooo: at least one scheduler")?;
        require(self.sched_entries > 0, "ooo: schedulers need entries")?;
        require(self.fus > 0, "ooo: at least one functional unit")?;
        require(self.regs > 0, "ooo: register buffer cannot be empty")?;
        require(self.rf_write_ports > 0, "ooo: at least one register write port")?;
        require(self.bypass_per_cycle > 0, "ooo: bypass bandwidth must be positive")?;
        Ok(())
    }
}

/// The braid microarchitecture configuration (Table 4, bottom).
#[derive(Debug, Clone, PartialEq)]
pub struct BraidConfig {
    /// Shared parameters (19-cycle penalty — the braid pipeline is four
    /// stages shorter).
    pub common: CommonConfig,
    /// Number of braid execution units.
    pub beus: u32,
    /// FIFO instruction queue entries per BEU.
    pub fifo_entries: u32,
    /// In-order scheduling window: instructions examined at the FIFO head.
    pub window_size: u32,
    /// General-purpose functional units per BEU.
    pub fus_per_beu: u32,
    /// Internal register file entries per BEU.
    pub internal_regs: u32,
    /// Internal register file read ports per BEU.
    pub internal_read_ports: u32,
    /// Internal register file write ports per BEU.
    pub internal_write_ports: u32,
    /// External register file entries (in-flight external values; freed
    /// once the value drains to the architectural backing file).
    pub external_regs: u32,
    /// External register file read ports.
    pub ext_read_ports: u32,
    /// External register file write ports.
    pub ext_write_ports: u32,
    /// Bypass network bandwidth in external values per cycle.
    pub bypass_per_cycle: u32,
    /// External destination allocations per cycle (the paper's 4-operand
    /// allocator).
    pub alloc_ext_per_cycle: u32,
    /// External source renames per cycle.
    pub rename_src_per_cycle: u32,
    /// Number of BEU clusters (paper §5.2's future direction). `1`
    /// disables clustering; with more, external values crossing a cluster
    /// boundary arrive [`BraidConfig::inter_cluster_delay`] cycles later.
    pub clusters: u32,
    /// Extra cycles for an external value to cross clusters.
    pub inter_cluster_delay: u64,
}

impl BraidConfig {
    /// The paper's default braid machine: 8 BEUs × (32-entry FIFO, 2-entry
    /// window, 2 FUs, 8-entry internal RF 4R/2W), 8-entry external RF
    /// 6R/3W, 1-level bypass at 2 values/cycle, 19-cycle penalty.
    pub fn paper_default() -> BraidConfig {
        let mut common = CommonConfig::paper_8wide();
        common.mispredict_penalty = 19;
        BraidConfig {
            common,
            beus: 8,
            fifo_entries: 32,
            window_size: 2,
            fus_per_beu: 2,
            internal_regs: 8,
            internal_read_ports: 4,
            internal_write_ports: 2,
            external_regs: 8,
            ext_read_ports: 6,
            ext_write_ports: 3,
            bypass_per_cycle: 2,
            alloc_ext_per_cycle: 4,
            rename_src_per_cycle: 8,
            clusters: 1,
            inter_cluster_delay: 2,
        }
    }

    /// A `width`-wide variant: `width` BEUs with otherwise default BEU
    /// internals (Figure 13's 4- and 16-wide braid machines).
    pub fn paper_wide(width: u32) -> BraidConfig {
        let mut cfg = BraidConfig::paper_default();
        cfg.common = cfg.common.with_width(width);
        cfg.beus = width;
        cfg.alloc_ext_per_cycle = width / 2;
        cfg.rename_src_per_cycle = width;
        cfg
    }

    /// Checks the machine is constructible. Starvation-prone knobs
    /// (allocation/rename bandwidth, read ports) are deliberately *not*
    /// rejected at zero: the livelock watchdog reports those with a state
    /// dump instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        self.common.validate()?;
        require(self.beus > 0, "braid: at least one BEU")?;
        require(self.fifo_entries > 0, "braid: BEU FIFOs need entries")?;
        require(self.window_size > 0, "braid: the issue window must be positive")?;
        require(self.fus_per_beu > 0, "braid: BEUs need functional units")?;
        require(self.external_regs > 0, "braid: external register file cannot be empty")?;
        require(self.ext_write_ports > 0, "braid: at least one external write port")?;
        require(self.internal_write_ports > 0, "braid: at least one internal write port")?;
        require(self.bypass_per_cycle > 0, "braid: bypass bandwidth must be positive")?;
        Ok(())
    }
}

/// FIFO dependence-based steering (Palacharla-style), the paper's "dep"
/// baseline in Figure 13.
#[derive(Debug, Clone, PartialEq)]
pub struct DepConfig {
    /// Shared parameters (23-cycle penalty; the machine renames like the
    /// conventional core).
    pub common: CommonConfig,
    /// Number of issue FIFOs.
    pub fifos: u32,
    /// Entries per FIFO.
    pub fifo_entries: u32,
    /// General-purpose functional units.
    pub fus: u32,
    /// In-flight register buffer entries.
    pub regs: u32,
    /// Bypass bandwidth in values per cycle.
    pub bypass_per_cycle: u32,
}

impl DepConfig {
    /// An 8-wide dependence-steering machine comparable to the paper's.
    pub fn paper_8wide() -> DepConfig {
        DepConfig {
            common: CommonConfig::paper_8wide(),
            fifos: 8,
            fifo_entries: 32,
            fus: 8,
            regs: 256,
            bypass_per_cycle: 8,
        }
    }

    /// A `width`-wide variant.
    pub fn paper_wide(width: u32) -> DepConfig {
        let base = DepConfig::paper_8wide();
        DepConfig {
            common: base.common.clone().with_width(width),
            fifos: width,
            fifo_entries: 32,
            fus: width,
            regs: 256 * width / 8,
            bypass_per_cycle: width,
        }
    }

    /// Checks the machine is constructible.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        self.common.validate()?;
        require(self.fifos > 0, "dep: at least one FIFO")?;
        require(self.fifo_entries > 0, "dep: FIFOs need entries")?;
        require(self.fus > 0, "dep: at least one functional unit")?;
        require(self.regs > 0, "dep: register buffer cannot be empty")?;
        require(self.bypass_per_cycle > 0, "dep: bypass bandwidth must be positive")?;
        Ok(())
    }
}

/// The in-order baseline of Figure 13.
#[derive(Debug, Clone, PartialEq)]
pub struct InOrderConfig {
    /// Shared parameters (19-cycle penalty: an in-order pipeline is at
    /// least as short as the braid machine's).
    pub common: CommonConfig,
    /// General-purpose functional units.
    pub fus: u32,
}

impl InOrderConfig {
    /// An 8-wide in-order machine.
    pub fn paper_8wide() -> InOrderConfig {
        let mut common = CommonConfig::paper_8wide();
        common.mispredict_penalty = 19;
        common.window = 64;
        InOrderConfig { common, fus: 8 }
    }

    /// A `width`-wide variant.
    pub fn paper_wide(width: u32) -> InOrderConfig {
        let mut cfg = InOrderConfig::paper_8wide();
        cfg.common = cfg.common.with_width(width);
        cfg.fus = width;
        cfg
    }

    /// Checks the machine is constructible.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first bad parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        self.common.validate()?;
        require(self.fus > 0, "inorder: at least one functional unit")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table4() {
        let ooo = OooConfig::paper_8wide();
        assert_eq!(ooo.common.mispredict_penalty, 23);
        assert_eq!(ooo.schedulers, 8);
        assert_eq!(ooo.sched_entries, 32);
        assert_eq!(ooo.regs, 256);
        assert_eq!((ooo.rf_read_ports, ooo.rf_write_ports), (16, 8));
        assert_eq!(ooo.bypass_per_cycle, 8);

        let braid = BraidConfig::paper_default();
        assert_eq!(braid.common.mispredict_penalty, 19);
        assert_eq!(braid.beus, 8);
        assert_eq!(braid.fifo_entries, 32);
        assert_eq!(braid.window_size, 2);
        assert_eq!(braid.fus_per_beu, 2);
        assert_eq!(braid.internal_regs, 8);
        assert_eq!((braid.ext_read_ports, braid.ext_write_ports), (6, 3));
        assert_eq!(braid.bypass_per_cycle, 2);
        assert_eq!(braid.alloc_ext_per_cycle, 4);
        assert_eq!(braid.rename_src_per_cycle, 8);
    }

    #[test]
    fn width_scaling() {
        let ooo16 = OooConfig::paper_wide(16);
        assert_eq!(ooo16.common.width, 16);
        assert_eq!(ooo16.schedulers, 16);
        assert_eq!(ooo16.regs, 512);
        let b4 = BraidConfig::paper_wide(4);
        assert_eq!(b4.beus, 4);
        assert_eq!(b4.common.width, 4);
        let io4 = InOrderConfig::paper_wide(4);
        assert_eq!(io4.fus, 4);
    }

    #[test]
    fn perfect_mode() {
        let c = CommonConfig::paper_8wide().perfect();
        assert!(c.perfect_branch_predictor);
        assert!(c.mem.perfect);
    }
}
