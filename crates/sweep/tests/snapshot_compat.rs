//! Snapshot-format compatibility: sweeps must resume from snapshots
//! written before execution tiers existed.
//!
//! `fixtures/pre_tier_snapshot.json` is a checked-in aggregate in the
//! pre-tier document shape — no `tier`, `est_cycles`, `ipc_est` or
//! `ipc_err` fields anywhere. Loading it must reuse every point
//! zero-tolerantly (the same policy as `cpi_from_json`'s handling of
//! pre-CPI snapshots), not refuse the file.

use std::fs;
use std::path::PathBuf;

use braid_core::Tier;
use braid_sweep::{aggregate, run_sweep, CoreModel, Json, SweepSpec};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pre_tier_snapshot.json")
}

/// The spec the fixture was generated from.
fn fixture_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("pr6-compat");
    spec.workloads = vec!["dot_product".into(), "fig2_life".into()];
    spec.cores = vec![CoreModel::InOrder, CoreModel::Braid];
    spec
}

#[test]
fn fixture_has_no_tier_fields() {
    let text = fs::read_to_string(fixture_path()).expect("fixture readable");
    for field in ["\"tier\"", "\"est_cycles\"", "\"ipc_est\"", "\"ipc_err\""] {
        assert!(!text.contains(field), "fixture must predate {field}");
    }
}

#[test]
fn pre_tier_snapshot_resumes_without_rerunning() {
    let spec = fixture_spec();
    let run = run_sweep(&spec, 2, Some(&fixture_path()), true).expect("pre-tier snapshot loads");
    assert_eq!(run.reused, 4, "every point satisfied from the old snapshot");
    for o in &run.outcomes {
        let s = o.stats.as_ref().expect("fixture points all succeeded");
        // Missing fields default, they do not refuse the snapshot.
        assert_eq!(s.tier, Tier::Full);
        assert_eq!(s.est_cycles, 0);
        assert_eq!(s.ipc_err, 0.0);
        assert!(s.cycles > 0, "real stats came through");
        assert_eq!(s.cpi.total(), s.cycles, "CPI stack survived the round trip");
    }
}

#[test]
fn pre_tier_snapshot_matches_fresh_run() {
    // The old snapshot's numbers must agree with what the current engine
    // computes — resume is a cache, never an alternate result.
    let spec = fixture_spec();
    let resumed = run_sweep(&spec, 2, Some(&fixture_path()), true).expect("resumes");
    let fresh = run_sweep(&spec, 2, None, false).expect("runs");
    assert_eq!(aggregate(&resumed).to_string(), aggregate(&fresh).to_string());
}

#[test]
fn tiered_grids_do_not_collide_with_pre_tier_snapshots() {
    // Asking the same grid for non-full tiers changes the digest, so the
    // old snapshot is refused instead of silently misapplied.
    let mut spec = fixture_spec();
    spec.tiers = vec![Tier::Full, Tier::Sampled];
    let err = run_sweep(&spec, 1, Some(&fixture_path()), true).expect_err("digest must differ");
    assert_eq!(err.code(), "digest-mismatch");
}

#[test]
fn sampled_points_carry_ipc_error_and_round_trip() {
    let mut spec = SweepSpec::new("tiered");
    spec.workloads = vec!["dot_product".into()];
    spec.cores = vec![CoreModel::Ooo];
    spec.tiers = vec![Tier::Full, Tier::Sampled, Tier::Func];
    let run = run_sweep(&spec, 2, None, false).expect("runs");
    assert_eq!(run.outcomes.len(), 3);

    let by_tier = |t: Tier| {
        run.outcomes
            .iter()
            .find(|o| o.point.tier == t)
            .expect("tier present")
            .stats
            .as_ref()
            .expect("point ran")
    };
    let full = by_tier(Tier::Full);
    let sampled = by_tier(Tier::Sampled);
    let func = by_tier(Tier::Func);

    assert_eq!(full.instructions, sampled.instructions);
    assert_eq!(full.instructions, func.instructions);
    assert_eq!(full.cycles, sampled.cycles, "sampled points carry the exact run too");
    assert!(sampled.est_cycles > 0);
    assert!(sampled.ipc_err.abs() <= 0.05, "ipc_err {} within budget", sampled.ipc_err);
    assert_eq!(func.cycles, 0, "functional-only points have no timing");

    // Keys are distinct, and the serialized estimate survives a resume.
    let doc = aggregate(&run);
    let path = std::env::temp_dir()
        .join(format!("braid-sweep-tiered-{}.json", std::process::id()));
    braid_sweep::write_json(&path, &doc).expect("snapshot written");
    let resumed = run_sweep(&spec, 1, Some(&path), true).expect("resumes");
    assert_eq!(resumed.reused, 3);
    assert_eq!(aggregate(&resumed).to_string(), doc.to_string());
    let _ = fs::remove_file(&path);

    let pts = doc.get("points").and_then(Json::as_arr).expect("points");
    let tiers: Vec<&str> =
        pts.iter().filter_map(|e| e.get("tier").and_then(Json::as_str)).collect();
    assert_eq!(tiers, ["full", "sampled", "func"]);
    let sampled_entry = &pts[1];
    assert!(sampled_entry.get("est_cycles").is_some());
    assert!(sampled_entry.get("ipc_est").is_some());
    assert!(sampled_entry.get("ipc_err").is_some());
}
