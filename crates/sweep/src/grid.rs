//! Declarative sweep grids: (workload × core × config) cross products.
//!
//! A [`SweepSpec`] names the axes; [`SweepSpec::expand`] flattens them
//! into a deterministic list of [`GridPoint`]s, one per simulation. The
//! expansion order is fixed (workloads outermost, then cores, widths,
//! BEUs, FIFO depths, windows, bypasses, execution tiers), so a grid
//! index identifies the same point on every run and every thread count —
//! resume and deterministic aggregation both key off it.
//!
//! An axis value of `0` means "the model's paper default" for that knob.
//! Axes a core model ignores (BEUs on anything but the braid machine,
//! FIFO depth and bypass bandwidth on the in-order core) are collapsed to
//! their first value for that core, so the grid never contains two points
//! that would run the identical simulation.

use std::fmt;

use braid_core::Tier;

/// Which timing core a grid point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// The in-order baseline.
    InOrder,
    /// FIFO dependence-based steering (Palacharla-style).
    DepSteer,
    /// The conventional out-of-order machine.
    Ooo,
    /// The braid microarchitecture.
    Braid,
}

impl CoreModel {
    /// Every model, in the canonical (Figure 13) order.
    pub const ALL: [CoreModel; 4] =
        [CoreModel::InOrder, CoreModel::DepSteer, CoreModel::Ooo, CoreModel::Braid];

    /// The short stable name used in keys, JSON, and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::InOrder => "inorder",
            CoreModel::DepSteer => "dep",
            CoreModel::Ooo => "ooo",
            CoreModel::Braid => "braid",
        }
    }

    /// Parses a CLI/JSON name (the inverse of [`CoreModel::name`]).
    pub fn parse(s: &str) -> Option<CoreModel> {
        match s {
            "inorder" | "io" => Some(CoreModel::InOrder),
            "dep" | "depsteer" => Some(CoreModel::DepSteer),
            "ooo" => Some(CoreModel::Ooo),
            "braid" => Some(CoreModel::Braid),
            _ => None,
        }
    }
}

impl fmt::Display for CoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative sweep: the cross product of every non-empty axis.
///
/// Empty numeric axes behave as `[0]` ("paper default"). `workloads` and
/// `cores` must be non-empty for the grid to contain any points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name; names the snapshot and aggregate files under `results/`.
    pub name: String,
    /// Workload names, resolved via `braid_workloads::by_name_any`.
    pub workloads: Vec<String>,
    /// Core models to run.
    pub cores: Vec<CoreModel>,
    /// Machine widths (`0` = the model's 8-wide paper default).
    pub widths: Vec<u32>,
    /// Braid execution unit counts (braid only; `0` = default).
    pub beus: Vec<u32>,
    /// Issue-queue depths: BEU/dep FIFO entries, ooo scheduler entries
    /// (`0` = default; the in-order core ignores this axis).
    pub fifo_depths: Vec<u32>,
    /// Instruction windows: braid in-order scheduling window, max
    /// in-flight instructions elsewhere (`0` = default).
    pub windows: Vec<u32>,
    /// Bypass network bandwidths in values/cycle (`0` = default; the
    /// in-order core ignores this axis).
    pub bypasses: Vec<u32>,
    /// Dynamic-length scale for synthetic suite workloads (kernels ignore
    /// it).
    pub scale: f64,
    /// Run with the perfect front end and perfect caches of Figure 1.
    pub perfect: bool,
    /// Execution tiers to run each point at (empty = `[Tier::Full]`,
    /// which also keeps the grid digest identical to pre-tier sweeps).
    /// [`Tier::Sampled`] points run the full tier too and carry the
    /// estimated-vs-exact IPC error.
    pub tiers: Vec<Tier>,
}

impl SweepSpec {
    /// A spec with every numeric axis at the paper default, all four
    /// cores, no workloads, and a small scale suitable for smoke runs.
    pub fn new(name: &str) -> SweepSpec {
        SweepSpec {
            name: name.to_string(),
            workloads: Vec::new(),
            cores: CoreModel::ALL.to_vec(),
            widths: Vec::new(),
            beus: Vec::new(),
            fifo_depths: Vec::new(),
            windows: Vec::new(),
            bypasses: Vec::new(),
            scale: 0.05,
            perfect: false,
            tiers: Vec::new(),
        }
    }

    /// Flattens the spec into grid points in the fixed expansion order.
    pub fn expand(&self) -> Vec<GridPoint> {
        fn axis(values: &[u32]) -> Vec<u32> {
            if values.is_empty() {
                vec![0]
            } else {
                values.to_vec()
            }
        }
        /// Collapses an axis the core ignores to its first value.
        fn effective(values: &[u32], applies: bool) -> &[u32] {
            if applies || values.len() <= 1 {
                values
            } else {
                &values[..1]
            }
        }

        let widths = axis(&self.widths);
        let beus = axis(&self.beus);
        let fifos = axis(&self.fifo_depths);
        let windows = axis(&self.windows);
        let bypasses = axis(&self.bypasses);
        let tiers = if self.tiers.is_empty() { vec![Tier::Full] } else { self.tiers.clone() };

        let mut points = Vec::new();
        for workload in &self.workloads {
            for &core in &self.cores {
                let is_braid = core == CoreModel::Braid;
                let is_inorder = core == CoreModel::InOrder;
                for &width in &widths {
                    for &beus in effective(&beus, is_braid) {
                        for &fifo in effective(&fifos, !is_inorder) {
                            for &window in &windows {
                                for &bypass in effective(&bypasses, !is_inorder) {
                                    for &tier in &tiers {
                                        points.push(GridPoint {
                                            index: points.len() as u32,
                                            workload: workload.clone(),
                                            core,
                                            width,
                                            beus,
                                            fifo,
                                            window,
                                            bypass,
                                            scale: self.scale,
                                            perfect: self.perfect,
                                            tier,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// A stable hex digest of everything that affects the grid and its
    /// results (axes, scale, perfect mode — not the name). Snapshots carry
    /// it so resume refuses to mix results from a different grid.
    pub fn digest(&self) -> String {
        let mut canon = String::new();
        canon.push_str("workloads=");
        canon.push_str(&self.workloads.join(","));
        canon.push_str(";cores=");
        for c in &self.cores {
            canon.push_str(c.name());
            canon.push(',');
        }
        for (label, axis) in [
            ("widths", &self.widths),
            ("beus", &self.beus),
            ("fifos", &self.fifo_depths),
            ("windows", &self.windows),
            ("bypasses", &self.bypasses),
        ] {
            canon.push(';');
            canon.push_str(label);
            canon.push('=');
            for v in axis {
                canon.push_str(&v.to_string());
                canon.push(',');
            }
        }
        canon.push_str(&format!(";scale={};perfect={}", self.scale, self.perfect));
        // Appended only for non-default tier axes so pre-tier snapshots
        // (whose specs could not name tiers at all) keep their digests.
        if !self.tiers.is_empty() && self.tiers != [Tier::Full] {
            canon.push_str(";tiers=");
            for t in &self.tiers {
                canon.push_str(t.name());
                canon.push(',');
            }
        }
        crate::digest::hex(canon.as_bytes())
    }
}

/// One simulation of the grid: a workload on a core with concrete knobs.
///
/// Numeric knobs of `0` mean "the model's paper default".
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Position in the expansion order; the stable sort key for
    /// aggregation and the resume index.
    pub index: u32,
    /// Workload name.
    pub workload: String,
    /// Core model.
    pub core: CoreModel,
    /// Machine width.
    pub width: u32,
    /// Braid execution units (braid only).
    pub beus: u32,
    /// Issue-queue depth (FIFO / scheduler entries).
    pub fifo: u32,
    /// Instruction window.
    pub window: u32,
    /// Bypass bandwidth in values/cycle.
    pub bypass: u32,
    /// Synthetic-suite scale.
    pub scale: f64,
    /// Perfect front end and caches.
    pub perfect: bool,
    /// Execution tier this point runs at.
    pub tier: Tier,
}

impl GridPoint {
    /// A human-readable key unique within the grid, e.g.
    /// `dot_product:braid:w8:b4:f16:v2:y2`. Non-full tiers append a
    /// `:t<tier>` suffix; full-tier keys are identical to pre-tier keys so
    /// old snapshots still resume. Snapshots store it next to the index as
    /// a corruption check.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}:{}:w{}:b{}:f{}:v{}:y{}",
            self.workload, self.core, self.width, self.beus, self.fifo, self.window, self.bypass
        );
        if self.tier != Tier::Full {
            key.push_str(":t");
            key.push_str(self.tier.name());
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_names_round_trip() {
        for c in CoreModel::ALL {
            assert_eq!(CoreModel::parse(c.name()), Some(c));
        }
        assert_eq!(CoreModel::parse("nonesuch"), None);
    }

    #[test]
    fn default_axes_give_one_point_per_workload_core() {
        let mut spec = SweepSpec::new("t");
        spec.workloads = vec!["a".into(), "b".into()];
        let pts = spec.expand();
        assert_eq!(pts.len(), 2 * 4);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index as usize, i);
        }
    }

    #[test]
    fn ignored_axes_collapse_without_duplicate_points() {
        let mut spec = SweepSpec::new("t");
        spec.workloads = vec!["a".into()];
        spec.beus = vec![4, 8];
        spec.bypasses = vec![2, 4];
        let pts = spec.expand();
        // braid: 2 beus × 2 bypasses; ooo/dep: 1 × 2; inorder: 1 × 1.
        assert_eq!(pts.len(), 4 + 2 + 2 + 1);
        let keys: std::collections::HashSet<String> = pts.iter().map(GridPoint::key).collect();
        assert_eq!(keys.len(), pts.len(), "keys are unique");
    }

    #[test]
    fn expansion_order_is_stable() {
        let mut spec = SweepSpec::new("t");
        spec.workloads = vec!["x".into()];
        spec.cores = vec![CoreModel::Braid];
        spec.widths = vec![4, 8];
        spec.windows = vec![2, 4];
        let keys: Vec<String> = spec.expand().iter().map(GridPoint::key).collect();
        assert_eq!(
            keys,
            [
                "x:braid:w4:b0:f0:v2:y0",
                "x:braid:w4:b0:f0:v4:y0",
                "x:braid:w8:b0:f0:v2:y0",
                "x:braid:w8:b0:f0:v4:y0",
            ]
        );
    }

    #[test]
    fn tier_axis_expands_with_suffixed_keys() {
        let mut spec = SweepSpec::new("t");
        spec.workloads = vec!["x".into()];
        spec.cores = vec![CoreModel::Ooo];
        spec.tiers = vec![Tier::Full, Tier::Func, Tier::Sampled];
        let keys: Vec<String> = spec.expand().iter().map(GridPoint::key).collect();
        assert_eq!(
            keys,
            [
                "x:ooo:w0:b0:f0:v0:y0",
                "x:ooo:w0:b0:f0:v0:y0:tfunc",
                "x:ooo:w0:b0:f0:v0:y0:tsampled",
            ]
        );
    }

    #[test]
    fn full_only_tier_axis_keeps_pre_tier_digest_and_keys() {
        let mut bare = SweepSpec::new("t");
        bare.workloads = vec!["x".into()];
        let mut explicit = bare.clone();
        explicit.tiers = vec![Tier::Full];
        assert_eq!(bare.digest(), explicit.digest());
        assert_eq!(
            bare.expand().iter().map(GridPoint::key).collect::<Vec<_>>(),
            explicit.expand().iter().map(GridPoint::key).collect::<Vec<_>>(),
        );
        let mut sampled = bare.clone();
        sampled.tiers = vec![Tier::Sampled];
        assert_ne!(bare.digest(), sampled.digest());
    }

    #[test]
    fn digest_tracks_grid_changes_only() {
        let mut a = SweepSpec::new("one");
        a.workloads = vec!["x".into()];
        let mut b = a.clone();
        b.name = "two".into();
        assert_eq!(a.digest(), b.digest(), "name does not change the grid");
        b.widths = vec![4];
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.scale = 0.1;
        assert_ne!(a.digest(), c.digest());
    }
}
