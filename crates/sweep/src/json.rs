//! A minimal, dependency-free JSON value with a deterministic writer.
//!
//! The sweep engine needs machine-readable snapshots without pulling
//! `serde` into the hermetic workspace, so this module implements exactly
//! the subset the snapshots use. Two properties matter:
//!
//! * **Deterministic output.** Object keys keep insertion order, integers
//!   print as themselves, and floats use Rust's shortest-roundtrip
//!   [`Display`](std::fmt::Display) (forced to carry a `.` or exponent so
//!   they re-parse as floats). The same value always writes the same
//!   bytes — the thread-count-determinism test depends on this.
//! * **Round-tripping.** `parse(value.to_string())` reproduces the value,
//!   which snapshot/resume depends on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all sweep counters are unsigned).
    Int(u64),
    /// A float; written so it re-parses as a float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value on a single line with no insignificant
    /// whitespace — the framing JSON-lines protocols need (one value per
    /// `\n`-terminated line). As deterministic as [`Display`](fmt::Display):
    /// the same value always yields the same bytes.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(_) | Json::Float(_) | Json::Str(_) => {
                // Reuse the Display writer: floats need the
                // re-parses-as-float forcing, strings need escaping, and
                // none of the scalars emit newlines or indentation.
                fmt::Write::write_fmt(out, format_args!("{self}")).expect("fmt to string");
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    fmt::Write::write_fmt(out, format_args!("{}", Json::Str(k.clone())))
                        .expect("fmt to string");
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Json, depth: usize) -> fmt::Result {
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Int(n) => write!(f, "{n}"),
        Json::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            } else {
                // JSON has no Inf/NaN; null is the conventional stand-in.
                f.write_str("null")
            }
        }
        Json::Str(s) => write_escaped(f, s),
        Json::Arr(items) if items.is_empty() => f.write_str("[]"),
        Json::Arr(items) => {
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                write_indent(f, depth + 1)?;
                write_value(f, item, depth + 1)?;
                f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
            }
            write_indent(f, depth)?;
            f.write_str("]")
        }
        Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
        Json::Obj(fields) => {
            f.write_str("{\n")?;
            for (i, (k, val)) in fields.iter().enumerate() {
                write_indent(f, depth + 1)?;
                write_escaped(f, k)?;
                f.write_str(": ")?;
                write_value(f, val, depth + 1)?;
                f.write_str(if i + 1 < fields.len() { ",\n" } else { "\n" })?;
            }
            write_indent(f, depth)?;
            f.write_str("}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, msg: msg.to_string() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return self.err("unterminated string") };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else { return self.err("bad escape") };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(cp) = hex.and_then(char::from_u32) else {
                                return self.err("bad \\u escape");
                            };
                            out.push(cp);
                            self.pos += 4;
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Float(x)),
            Err(_) => self.err("bad number"),
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("sweep \"x\"\n".into())),
            ("cycles".into(), Json::Int(18446744073709551615)),
            ("ipc".into(), Json::Float(2.5)),
            ("whole".into(), Json::Float(2.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("pts".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Json::Float(3.0).to_string();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).unwrap(), Json::Float(3.0));
    }

    #[test]
    fn output_is_deterministic() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Int(2)),
            ("a".into(), Json::Int(1)),
        ]);
        assert_eq!(v.to_string(), v.to_string());
        assert_eq!(v.to_string(), "{\n  \"b\": 2,\n  \"a\": 1\n}");
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Int(7)),
            ("name".into(), Json::Str("a \"b\"\nc".into())),
            ("x".into(), Json::Float(2.0)),
            ("ok".into(), Json::Bool(false)),
            ("none".into(), Json::Null),
            ("pts".into(), Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Arr(vec![])])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(parse(&line).expect("parses"), v);
        assert_eq!(
            line,
            "{\"id\":7,\"name\":\"a \\\"b\\\"\\nc\",\"x\":2.0,\"ok\":false,\
             \"none\":null,\"pts\":[1,2,[]],\"empty\":{}}"
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": }").unwrap_err();
        assert!(e.at > 0);
        assert!(parse("[1, 2").is_err());
        assert!(parse("[] junk").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse("\"caf\\u00e9 déjà\"").unwrap();
        assert_eq!(v.as_str(), Some("café déjà"));
    }
}
