//! A std-only work-stealing thread pool, in two modes.
//!
//! The sweep engine needs to shard a few dozen to a few thousand
//! independent simulation points across OS threads without pulling an
//! external runtime (the workspace is hermetic — no `rayon`), and the
//! braid-serve daemon needs the same workers to stay alive and accept jobs
//! as requests arrive. Both modes share one structure:
//!
//! * Every worker owns a deque of tasks, seeded/submitted round-robin so
//!   the distribution is balanced.
//! * A worker pops from the **front** of its own deque; when that runs
//!   dry it steals from the **back** of a victim's deque, scanning the
//!   other workers in a fixed rotation. Opposite ends keep the owner and
//!   thieves off the same cache lines of work.
//!
//! **Fixed mode** ([`run_indexed`]): the task set is known up front and no
//! task ever spawns another, so a worker exits when every deque is empty —
//! a race-free termination check. Results land in a slot per task index,
//! so the output order is the input order, **independent of thread count
//! and steal timing**. That property is what makes the sweep aggregation
//! deterministic.
//!
//! **Dynamic mode** ([`JobPool`]): workers are long-lived; jobs arrive one
//! at a time via [`JobPool::try_submit`] and idle workers sleep on a
//! condvar. The queue is **bounded** — a full pool refuses the job instead
//! of buffering unboundedly, which is what lets a server answer "retry
//! later" under load instead of building invisible latency. A panicking
//! job is contained (counted, worker survives); ordering guarantees are
//! the submitter's business — braid-serve sequences results per connection
//! on top of completion-order delivery.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Runs `work(index, item)` for every item on `threads` workers and
/// returns the results **in input order**, regardless of which worker ran
/// which item or in what order.
///
/// `threads` is clamped to `1..=items.len()`. With `threads == 1` the
/// items run strictly in input order on one spawned worker, which is the
/// reference schedule the determinism tests compare against.
///
/// # Panics
///
/// Propagates a panic from `work` after the scope unwinds the remaining
/// workers.
pub fn run_indexed<T, R, F>(threads: usize, items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|w| Mutex::new((w..n).step_by(threads).collect())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let queues = &queues;
            let results = &results;
            let work = &work;
            scope.spawn(move || loop {
                let own = queues[w].lock().expect("queue poisoned").pop_front();
                let task = own.or_else(|| {
                    (1..threads).find_map(|d| {
                        queues[(w + d) % threads].lock().expect("queue poisoned").pop_back()
                    })
                });
                let Some(i) = task else { return };
                let item = slots[i].lock().expect("slot poisoned").take();
                if let Some(item) = item {
                    let r = work(i, item);
                    *results[i].lock().expect("result poisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result poisoned").expect("every task ran"))
        .collect()
}

/// A unit of dynamic work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`JobPool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; try again after in-flight work drains.
    /// This is the backpressure signal servers turn into `retry` replies.
    Saturated,
    /// The pool is shutting down and accepts no new work.
    Closing,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated => f.write_str("job queue saturated"),
            SubmitError::Closing => f.write_str("pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Queue depths of a [`JobPool`] at one instant (for stats reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDepth {
    /// Jobs submitted but not yet picked up by a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
}

struct PoolState {
    /// One deque per worker; owners pop the front, thieves pop the back.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin submission cursor.
    next: usize,
    /// Jobs in the queues (bounded by the pool's `bound`).
    queued: usize,
    /// Jobs currently executing.
    running: usize,
    /// No new submissions; workers exit once the queues drain.
    closing: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers sleep here when every deque is empty.
    wake: Condvar,
    /// [`JobPool::drain`] sleeps here until `queued == running == 0`.
    idle: Condvar,
    /// Jobs that panicked (contained, not propagated).
    panics: AtomicU64,
}

/// The dynamic-submission mode of the pool: long-lived workers, a bounded
/// job queue with explicit backpressure, work stealing between workers,
/// and drain-on-shutdown (queued jobs finish; new submissions are
/// refused).
///
/// Unlike [`run_indexed`], completion order is whatever the steal timing
/// produces; callers needing ordered results (braid-serve's in-order
/// per-connection replies) sequence them on top.
pub struct JobPool {
    shared: Arc<PoolShared>,
    bound: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl JobPool {
    /// Spawns `threads` long-lived workers (clamped to at least 1) behind
    /// a queue bounded at `bound` jobs (clamped to at least 1).
    pub fn new(threads: usize, bound: usize) -> JobPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                queued: 0,
                running: 0,
                closing: false,
            }),
            wake: Condvar::new(),
            idle: Condvar::new(),
            panics: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("braid-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w, threads))
                    .expect("spawn pool worker")
            })
            .collect();
        JobPool { shared, bound: bound.max(1), workers }
    }

    /// Submits a job, or refuses it with the reason ([`SubmitError`]).
    /// Never blocks: saturation is reported, not absorbed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when `queued` is at the bound,
    /// [`SubmitError::Closing`] after [`JobPool::shutdown`] began.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        if st.closing {
            return Err(SubmitError::Closing);
        }
        if st.queued >= self.bound {
            return Err(SubmitError::Saturated);
        }
        let w = st.next;
        st.next = (st.next + 1) % st.queues.len();
        st.queues[w].push_back(Box::new(job));
        st.queued += 1;
        drop(st);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Current queue depths (for stats reporting).
    pub fn depth(&self) -> PoolDepth {
        let st = self.shared.state.lock().expect("pool state poisoned");
        PoolDepth { queued: st.queued, running: st.running }
    }

    /// Jobs that panicked since the pool started. Panics are contained —
    /// the worker survives — but counted, so a server can surface them.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Blocks until no job is queued or running. New submissions during
    /// the wait reset the condition, so call this after the submitters
    /// stopped (or after [`JobPool::shutdown`] closed the intake).
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while st.queued > 0 || st.running > 0 {
            st = self.shared.idle.wait(st).expect("pool state poisoned");
        }
    }

    /// Closes the intake: every subsequent [`JobPool::try_submit`] returns
    /// [`SubmitError::Closing`]; queued and running jobs still finish, and
    /// workers exit once the queues drain. Shareable (`&self`), so a
    /// server holding the pool in an [`Arc`] can close it from a request
    /// handler.
    pub fn close(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        st.closing = true;
        drop(st);
        self.shared.wake.notify_all();
    }

    /// Graceful shutdown: closes the intake, lets every queued and running
    /// job finish, and joins the workers (also what dropping the pool
    /// does).
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, w: usize, threads: usize) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                let found = st.queues[w].pop_front().or_else(|| {
                    (1..threads).find_map(|d| st.queues[(w + d) % threads].pop_back())
                });
                if let Some(job) = found {
                    st.queued -= 1;
                    st.running += 1;
                    break job;
                }
                if st.closing {
                    return;
                }
                st = shared.wake.wait(st).expect("pool state poisoned");
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.running -= 1;
        if st.queued == 0 && st.running == 0 {
            drop(st);
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = run_indexed(threads, items.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_indexed(4, vec![(); 50], |_, ()| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 50);
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_indexed(8, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        // `threads` is clamped to the item count; no worker spins on an
        // empty deque and every result still lands in order.
        let out = run_indexed(64, vec![10u64, 20, 30], |i, x| (i as u64, x));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
        let one = run_indexed(5, vec![7u64], |_, x| x);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        // The module header promises a panic in `work` unwinds out of
        // `run_indexed` after the scope collects the other workers; pin
        // it so the promise stays true.
        let result = catch_unwind(|| {
            run_indexed(4, (0..16u64).collect::<Vec<_>>(), |_, x| {
                assert!(x != 11, "injected failure");
                x
            })
        });
        assert!(result.is_err(), "a worker panic must propagate, not vanish");
    }

    #[test]
    fn job_pool_runs_submitted_work() {
        let pool = JobPool::new(3, 64);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..40u64 {
            let tx = tx.clone();
            pool.try_submit(move || tx.send(i * i).expect("recv alive")).expect("submit");
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..40u64).map(|i| i * i).collect();
        assert_eq!(got, want);
        pool.drain();
        assert_eq!(pool.depth(), PoolDepth { queued: 0, running: 0 });
        pool.shutdown();
    }

    #[test]
    fn job_pool_backpressure_and_closing() {
        // One worker, held busy; a queue bound of 2 then refuses the
        // third queued job with `Saturated` — deterministically, because
        // the worker is parked on the channel.
        let pool = JobPool::new(1, 2);
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        pool.try_submit(move || hold_rx.recv().unwrap_or(())).expect("submit blocker");
        // Wait until the blocker is actually running so the bound applies
        // to the two fillers alone.
        while pool.depth().running == 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).expect("first queued");
        pool.try_submit(|| {}).expect("second queued");
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Saturated));
        assert_eq!(pool.depth().queued, 2);
        hold_tx.send(()).expect("worker waiting");
        pool.drain();
        pool.shutdown();
    }

    #[test]
    fn job_pool_shutdown_drains_queued_work_and_refuses_new() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = JobPool::new(2, 128);
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .expect("submit");
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 32);
        // Closing the intake refuses new work but joins cleanly.
        pool.close();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Closing));
        pool.shutdown();
    }

    #[test]
    fn job_pool_contains_panics() {
        let pool = JobPool::new(2, 16);
        pool.try_submit(|| panic!("injected")).expect("submit");
        pool.try_submit(|| {}).expect("pool survives");
        pool.drain();
        assert_eq!(pool.panics(), 1, "panic counted");
        // The worker survived the panic: it can still run work.
        let (tx, rx) = std::sync::mpsc::channel();
        pool.try_submit(move || tx.send(1u32).expect("recv alive")).expect("submit");
        assert_eq!(rx.recv(), Ok(1));
        pool.shutdown();
    }

    #[test]
    fn stealing_drains_imbalanced_work() {
        // One slow item seeded to worker 0; the rest are instant. With
        // stealing, everything still completes.
        let out = run_indexed(4, (0..32).collect::<Vec<u64>>(), |_, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }
}
