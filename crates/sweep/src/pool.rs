//! A std-only work-stealing thread pool for embarrassingly parallel grids.
//!
//! The sweep engine needs to shard a few dozen to a few thousand
//! independent simulation points across OS threads without pulling an
//! external runtime (the workspace is hermetic — no `rayon`). Because the
//! task set is fixed up front (no task ever spawns another), a very small
//! design is both correct and fast:
//!
//! * Every worker owns a deque of task indices, seeded round-robin so the
//!   initial distribution is balanced.
//! * A worker pops from the **front** of its own deque; when that runs
//!   dry it steals from the **back** of a victim's deque, scanning the
//!   other workers in a fixed rotation. Opposite ends keep the owner and
//!   thieves off the same cache lines of work.
//! * A worker exits when every deque is empty. With a fixed task set this
//!   termination check is race-free: an in-flight task can never make new
//!   work appear.
//!
//! Results land in a slot per task index, so the output order is the input
//! order — **independent of thread count and steal timing**. That property
//! is what makes the sweep aggregation deterministic.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `work(index, item)` for every item on `threads` workers and
/// returns the results **in input order**, regardless of which worker ran
/// which item or in what order.
///
/// `threads` is clamped to `1..=items.len()`. With `threads == 1` the
/// items run strictly in input order on one spawned worker, which is the
/// reference schedule the determinism tests compare against.
///
/// # Panics
///
/// Propagates a panic from `work` after the scope unwinds the remaining
/// workers.
pub fn run_indexed<T, R, F>(threads: usize, items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|w| Mutex::new((w..n).step_by(threads).collect())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let queues = &queues;
            let results = &results;
            let work = &work;
            scope.spawn(move || loop {
                let own = queues[w].lock().expect("queue poisoned").pop_front();
                let task = own.or_else(|| {
                    (1..threads).find_map(|d| {
                        queues[(w + d) % threads].lock().expect("queue poisoned").pop_back()
                    })
                });
                let Some(i) = task else { return };
                let item = slots[i].lock().expect("slot poisoned").take();
                if let Some(item) = item {
                    let r = work(i, item);
                    *results[i].lock().expect("result poisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result poisoned").expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = run_indexed(threads, items.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_indexed(4, vec![(); 50], |_, ()| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 50);
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_indexed(8, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn stealing_drains_imbalanced_work() {
        // One slow item seeded to worker 0; the rest are instant. With
        // stealing, everything still completes.
        let out = run_indexed(4, (0..32).collect::<Vec<u64>>(), |_, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }
}
