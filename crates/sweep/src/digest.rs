//! The shared content-digest helper.
//!
//! Everything in the workspace that needs to recognize "the same content"
//! across runs — sweep snapshot/resume guards, the braid-serve
//! content-addressed result cache — derives its key through this one
//! module, so all cache keys and snapshot digests agree on the hash
//! function and its rendering.
//!
//! The hash is 64-bit FNV-1a: tiny, dependency-free, deterministic across
//! platforms and releases. It is a *change detector*, not a cryptographic
//! commitment — collisions merely cause a spurious cache hit or snapshot
//! reuse between two inputs a human already considers interchangeable, and
//! the snapshot loader cross-checks per-point keys on top of the digest.
//!
//! The rendering (16 lowercase hex digits, zero-padded) is part of the
//! stable contract: digests are stored in snapshot files and compared as
//! strings by resume, so it must never change. The unit test below pins
//! both the function and the rendering against known vectors.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical rendering of a content digest: 16 lowercase hex digits.
pub fn hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// A small builder for digesting structured content: feed it labelled
/// fields and take the digest of the whole. The label/value framing keeps
/// adjacent fields from aliasing (`("ab", "c")` ≠ `("a", "bc")`).
#[derive(Debug, Default)]
pub struct ContentDigest {
    canon: Vec<u8>,
}

impl ContentDigest {
    /// An empty digest accumulator.
    pub fn new() -> ContentDigest {
        ContentDigest::default()
    }

    /// Feeds one labelled field.
    pub fn field(mut self, label: &str, value: impl AsRef<[u8]>) -> ContentDigest {
        let value = value.as_ref();
        self.canon.extend_from_slice(label.as_bytes());
        self.canon.push(b'=');
        self.canon.extend_from_slice(format!("{}:", value.len()).as_bytes());
        self.canon.extend_from_slice(value);
        self.canon.push(b';');
        self
    }

    /// The digest of everything fed so far, in the canonical rendering.
    pub fn finish(&self) -> String {
        hex(&self.canon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the digest of known byte strings: both the FNV-1a offset
    /// basis / prime behaviour and the 16-hex-digit rendering are stable
    /// contracts (snapshots and caches store these strings).
    #[test]
    fn known_vectors_are_pinned() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(hex(b""), "cbf29ce484222325");
        assert_eq!(hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn builder_frames_fields() {
        let ab_c = ContentDigest::new().field("k", "ab").field("j", "c").finish();
        let a_bc = ContentDigest::new().field("k", "a").field("j", "bc").finish();
        assert_ne!(ab_c, a_bc, "field framing must prevent aliasing");
        let again = ContentDigest::new().field("k", "ab").field("j", "c").finish();
        assert_eq!(ab_c, again, "same fields, same digest");
    }
}
