//! The shared content-digest helper.
//!
//! Everything in the workspace that needs to recognize "the same content"
//! across runs — sweep snapshot/resume guards, the braid-serve
//! content-addressed result cache — derives its key through this one
//! module, so all cache keys and snapshot digests agree on the hash
//! function and its rendering.
//!
//! The hash is 64-bit FNV-1a: tiny, dependency-free, deterministic across
//! platforms and releases. It is a *change detector*, not a cryptographic
//! commitment — collisions merely cause a spurious cache hit or snapshot
//! reuse between two inputs a human already considers interchangeable, and
//! the snapshot loader cross-checks per-point keys on top of the digest.
//!
//! The rendering (16 lowercase hex digits, zero-padded) is part of the
//! stable contract: digests are stored in snapshot files and compared as
//! strings by resume, so it must never change. The unit test below pins
//! both the function and the rendering against known vectors.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical rendering of a content digest: 16 lowercase hex digits.
pub fn hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// A small builder for digesting structured content: feed it labelled
/// fields and take the digest of the whole. The label/value framing keeps
/// adjacent fields from aliasing (`("ab", "c")` ≠ `("a", "bc")`).
#[derive(Debug, Default)]
pub struct ContentDigest {
    canon: Vec<u8>,
}

impl ContentDigest {
    /// An empty digest accumulator.
    pub fn new() -> ContentDigest {
        ContentDigest::default()
    }

    /// Feeds one labelled field.
    pub fn field(mut self, label: &str, value: impl AsRef<[u8]>) -> ContentDigest {
        let value = value.as_ref();
        self.canon.extend_from_slice(label.as_bytes());
        self.canon.push(b'=');
        self.canon.extend_from_slice(format!("{}:", value.len()).as_bytes());
        self.canon.extend_from_slice(value);
        self.canon.push(b';');
        self
    }

    /// The digest of everything fed so far, in the canonical rendering.
    pub fn finish(&self) -> String {
        hex(&self.canon)
    }
}

/// Magic trailer identifying a framed disk-cache entry, version 1. Part
/// of the on-disk contract: bump the digit, never reuse it, if the frame
/// layout ever changes.
pub const FRAME_MAGIC: &[u8; 8] = b"BRDCACH1";

/// Total size of the [`frame`] footer in bytes: magic (8) + little-endian
/// payload length (8) + canonical hex digest of the payload (16).
pub const FRAME_FOOTER_LEN: usize = 8 + 8 + 16;

/// Why [`unframe`] rejected a byte string. Every variant means the entry
/// must be treated as corrupt (quarantined), never served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the footer — a torn write truncated the entry.
    Truncated,
    /// The trailing magic is absent or from an unknown frame version.
    BadMagic,
    /// The footer's recorded payload length disagrees with the actual
    /// byte count — a torn or interleaved write.
    LengthMismatch {
        /// Length the footer claims.
        recorded: u64,
        /// Length actually present before the footer.
        actual: u64,
    },
    /// The payload bytes do not hash to the footer's digest — bit rot or
    /// a partially overwritten entry.
    DigestMismatch {
        /// Digest the footer claims.
        recorded: String,
        /// Digest of the bytes actually present.
        actual: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("entry shorter than the frame footer"),
            FrameError::BadMagic => f.write_str("missing or unknown frame magic"),
            FrameError::LengthMismatch { recorded, actual } => {
                write!(f, "footer records {recorded} payload bytes, found {actual}")
            }
            FrameError::DigestMismatch { recorded, actual } => {
                write!(f, "footer digest {recorded} != payload digest {actual}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Frames `payload` for crash-safe storage: the payload followed by a
/// self-describing footer (magic, length, digest). The footer comes
/// *last* so that any truncation — the failure mode of a torn write —
/// destroys the footer and is caught by [`unframe`].
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_FOOTER_LEN);
    out.extend_from_slice(payload);
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(hex(payload).as_bytes());
    out
}

/// Verifies a framed byte string and returns the payload slice.
///
/// # Errors
///
/// Returns a [`FrameError`] when the footer is missing, truncated, from
/// an unknown version, or disagrees with the payload in length or digest.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], FrameError> {
    if bytes.len() < FRAME_FOOTER_LEN {
        return Err(FrameError::Truncated);
    }
    let (payload, footer) = bytes.split_at(bytes.len() - FRAME_FOOTER_LEN);
    let (magic, rest) = footer.split_at(8);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let (len_bytes, digest_bytes) = rest.split_at(8);
    let recorded = u64::from_le_bytes(len_bytes.try_into().expect("8-byte slice"));
    if recorded != payload.len() as u64 {
        return Err(FrameError::LengthMismatch { recorded, actual: payload.len() as u64 });
    }
    let actual = hex(payload);
    if digest_bytes != actual.as_bytes() {
        return Err(FrameError::DigestMismatch {
            recorded: String::from_utf8_lossy(digest_bytes).into_owned(),
            actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the digest of known byte strings: both the FNV-1a offset
    /// basis / prime behaviour and the 16-hex-digit rendering are stable
    /// contracts (snapshots and caches store these strings).
    #[test]
    fn known_vectors_are_pinned() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(hex(b""), "cbf29ce484222325");
        assert_eq!(hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn builder_frames_fields() {
        let ab_c = ContentDigest::new().field("k", "ab").field("j", "c").finish();
        let a_bc = ContentDigest::new().field("k", "a").field("j", "bc").finish();
        assert_ne!(ab_c, a_bc, "field framing must prevent aliasing");
        let again = ContentDigest::new().field("k", "ab").field("j", "c").finish();
        assert_eq!(ab_c, again, "same fields, same digest");
    }

    #[test]
    fn frame_round_trips() {
        for payload in [&b""[..], b"x", b"{\"cycles\":10}", &[0u8, 255, 7, 42]] {
            let framed = frame(payload);
            assert_eq!(framed.len(), payload.len() + FRAME_FOOTER_LEN);
            assert_eq!(unframe(&framed).expect("verifies"), payload);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let framed = frame(b"hello braid cache");
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err(), "truncation at {cut} must not verify");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let framed = frame(b"payload under test");
        for i in 0..framed.len() {
            let mut mangled = framed.clone();
            mangled[i] ^= 0x41;
            assert!(unframe(&mangled).is_err(), "flip at {i} must not verify");
        }
    }

    #[test]
    fn frame_errors_name_the_failure() {
        assert_eq!(unframe(b"tiny"), Err(FrameError::Truncated));
        let mut framed = frame(b"abc");
        framed[3] = b'X'; // corrupt the magic
        assert_eq!(unframe(&framed), Err(FrameError::BadMagic));
        // Extra payload byte: length check fires before the digest check.
        let mut grown = frame(b"abc");
        grown.insert(0, b'z');
        assert!(matches!(unframe(&grown), Err(FrameError::LengthMismatch { recorded: 3, actual: 4 })));
        let mut flipped = frame(b"abc");
        flipped[0] = b'z';
        assert!(matches!(unframe(&flipped), Err(FrameError::DigestMismatch { .. })));
    }
}
