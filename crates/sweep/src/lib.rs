//! # braid-sweep: the parallel design-space sweep engine
//!
//! Runs a declarative (workload × core × config) grid — a [`SweepSpec`] —
//! across OS threads on a std-only work-stealing pool ([`pool`]), and
//! aggregates the per-point [`SimReport`]s **deterministically**: the
//! aggregate JSON is byte-identical whether the sweep ran on 1 thread or
//! 16, because results are keyed by grid index (the fixed expansion
//! order) and host wall-clock numbers are excluded from serialization.
//!
//! Long sweeps snapshot partial results to JSON under `results/` after
//! every completed point; [`run_sweep`] can resume from such a snapshot,
//! re-running only the missing points. Snapshots carry the spec's
//! [`digest`](SweepSpec::digest) so results from a different grid are
//! refused rather than silently mixed.
//!
//! ```
//! use braid_sweep::{run_sweep, SweepSpec};
//!
//! let mut spec = SweepSpec::new("doc");
//! spec.workloads = vec!["dot_product".into()];
//! spec.cores = vec![braid_sweep::CoreModel::Braid];
//! let run = run_sweep(&spec, 2, None, false).unwrap();
//! assert_eq!(run.outcomes.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod grid;
pub mod json;
pub mod pool;

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use braid_core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid_core::processor::{run_tier, CoreConfig, RunError, TierReport};
use braid_core::report::SimReport;
use braid_core::{CpiStack, SamplingConfig, SimError, StallCause, Tier};

pub use grid::{CoreModel, GridPoint, SweepSpec};
pub use json::Json;

/// The deterministic slice of a [`SimReport`] a sweep keeps per point.
///
/// `host_nanos` rides along in memory for throughput summaries but is
/// **never serialized** — it is the one non-deterministic field, and the
/// aggregate must be byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStats {
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Loads forwarded from older stores.
    pub forwarded_loads: u64,
    /// Front-end refill stall cycles after mispredictions.
    pub mispredict_stall_cycles: u64,
    /// Dispatch stalls: register buffer / external registers full.
    pub stall_regs: u64,
    /// Dispatch stalls: scheduler / FIFO space exhausted.
    pub stall_window: u64,
    /// Dispatch stalls: load-store queue full.
    pub stall_lsq: u64,
    /// Dispatch stalls: allocation/rename bandwidth exhausted.
    pub stall_alloc_bw: u64,
    /// Load issues rejected by memory-ordering waits.
    pub lsq_wait_events: u64,
    /// External values produced per cycle (braid §5.1).
    pub external_values_per_cycle: f64,
    /// Checkpoint state words saved.
    pub checkpoint_words: u64,
    /// Exceptions taken.
    pub exceptions_taken: u64,
    /// The CPI stack: cycles attributed per [`StallCause`] (sums to
    /// `cycles`).
    pub cpi: CpiStack,
    /// Execution tier the point ran at ([`Tier::Full`] for snapshots that
    /// predate tiers).
    pub tier: Tier,
    /// Sampled-tier cycle estimate (`0` outside [`Tier::Sampled`]; the
    /// exact `cycles` ride along because sampled points run the full tier
    /// too, precisely to measure the estimate's error).
    pub est_cycles: u64,
    /// Signed relative IPC error of the estimate, `(est - exact) / exact`
    /// (`0` outside [`Tier::Sampled`]).
    pub ipc_err: f64,
    /// Host wall-clock nanoseconds (in-memory only; `0` after resume).
    pub host_nanos: u64,
}

impl PointStats {
    fn from_report(r: &SimReport) -> PointStats {
        PointStats {
            instructions: r.instructions,
            cycles: r.cycles,
            forwarded_loads: r.forwarded_loads,
            mispredict_stall_cycles: r.mispredict_stall_cycles,
            stall_regs: r.stall_regs,
            stall_window: r.stall_window,
            stall_lsq: r.stall_lsq,
            stall_alloc_bw: r.stall_alloc_bw,
            lsq_wait_events: r.lsq_wait_events,
            external_values_per_cycle: r.external_values_per_cycle,
            checkpoint_words: r.checkpoint_words,
            exceptions_taken: r.exceptions_taken,
            cpi: r.cpi,
            tier: Tier::Full,
            est_cycles: 0,
            ipc_err: 0.0,
            host_nanos: r.host_nanos,
        }
    }

    /// Retired instructions per cycle (exact; `0` for functional-only
    /// points, which have no timing).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Sampled-tier estimated IPC (`0` outside [`Tier::Sampled`]).
    pub fn ipc_est(&self) -> f64 {
        if self.est_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.est_cycles as f64
        }
    }
}

/// One completed grid point: the point plus its stats or error text.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The grid point that ran.
    pub point: GridPoint,
    /// Its stats, or the simulation error rendered to a string (errors are
    /// results too: a config that livelocks is a data point of the sweep).
    pub stats: Result<PointStats, String>,
}

/// A finished sweep: every grid point in expansion order.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The spec that ran.
    pub spec: SweepSpec,
    /// One outcome per grid point, sorted by grid index.
    pub outcomes: Vec<PointOutcome>,
    /// Points satisfied from the resume snapshot instead of re-running.
    pub reused: usize,
    /// Total wall-clock nanoseconds for the sweep (not serialized).
    pub host_nanos: u64,
    /// First snapshot-write failure, if any (the sweep itself still
    /// completed; partial snapshots are best-effort).
    pub snapshot_error: Option<String>,
}

impl SweepRun {
    /// Summed simulated cycles across successful points.
    pub fn total_cycles(&self) -> u64 {
        self.outcomes.iter().filter_map(|o| o.stats.as_ref().ok()).map(|s| s.cycles).sum()
    }

    /// Host throughput: simulated cycles per wall-clock second across the
    /// whole sweep.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.total_cycles() as f64 * 1e9 / self.host_nanos as f64
        }
    }
}

/// Errors from sweep snapshot and aggregate I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A snapshot failed to parse as JSON.
    Parse {
        /// The snapshot file.
        path: PathBuf,
        /// The parse error.
        source: json::ParseError,
    },
    /// A snapshot belongs to a different grid than the spec being resumed.
    DigestMismatch {
        /// The snapshot file.
        path: PathBuf,
        /// Digest recorded in the snapshot.
        found: String,
        /// Digest of the spec being resumed.
        want: String,
    },
    /// A snapshot parsed as JSON but does not look like a sweep snapshot.
    Malformed {
        /// The snapshot file.
        path: PathBuf,
        /// What is wrong with it.
        msg: String,
    },
    /// A grid point named a workload the suite does not contain.
    UnknownWorkload {
        /// The unresolvable name.
        workload: String,
    },
    /// A grid point's simulation failed: impossible configuration,
    /// livelock, deadline, translation or functional failure. The typed
    /// cause is preserved so servers can map it to structured protocol
    /// errors instead of string-matching.
    Point {
        /// The failing point's key ([`GridPoint::key`]).
        key: String,
        /// The underlying pipeline failure.
        source: RunError,
    },
}

impl SweepError {
    /// A short stable machine-readable code for the error class, used as
    /// the `code` field of braid-serve protocol errors. These strings are
    /// a wire contract; extend, never repurpose.
    pub fn code(&self) -> &'static str {
        match self {
            SweepError::Io { .. } => "io",
            SweepError::Parse { .. } => "parse",
            SweepError::DigestMismatch { .. } => "digest-mismatch",
            SweepError::Malformed { .. } => "malformed",
            SweepError::UnknownWorkload { .. } => "unknown-workload",
            SweepError::Point { source, .. } => match source {
                RunError::Exec(_) => "exec",
                RunError::Translate(_) => "translate",
                RunError::Check(_) => "check",
                RunError::Sim(SimError::Config(_)) => "config",
                RunError::Sim(SimError::Livelock(_)) => "livelock",
                RunError::Sim(SimError::Deadline { .. }) => "deadline",
                RunError::Sim(_) => "sim",
                _ => "run",
            },
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            SweepError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            SweepError::DigestMismatch { path, found, want } => write!(
                f,
                "{}: snapshot is for a different grid (digest {found}, expected {want}); \
                 delete it or run without --resume",
                path.display()
            ),
            SweepError::Malformed { path, msg } => {
                write!(f, "{}: malformed snapshot: {msg}", path.display())
            }
            SweepError::UnknownWorkload { workload } => {
                write!(f, "unknown workload `{workload}`")
            }
            SweepError::Point { key, source } => write!(f, "{key}: {source}"),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            SweepError::Parse { source, .. } => Some(source),
            SweepError::Point { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Runs an already-annotated program on `core` without re-translating,
/// returning the same [`PointStats`] shape as [`run_point`]. Used by
/// `braidc -O` to confirm candidate partitions.
///
/// # Errors
///
/// Wraps the underlying [`RunError`] (check failure, livelock, out of
/// fuel) as a [`SweepError::Point`].
pub fn run_annotated_point(
    core: &braid_core::CoreConfig,
    program: &braid_isa::Program,
    fuel: u64,
) -> Result<PointStats, SweepError> {
    braid_core::run_annotated(program, core, fuel)
        .map(|r| PointStats::from_report(&r))
        .map_err(|source| SweepError::Point { key: format!("annotated:{}", program.name), source })
}

/// Runs one grid point to completion.
///
/// # Errors
///
/// Returns the typed failure: [`SweepError::UnknownWorkload`] for an
/// unresolvable workload name, [`SweepError::Point`] wrapping the
/// [`RunError`] for a bad configuration or a simulation failure (livelock,
/// deadline, out of fuel). [`SweepError::code`] maps these to stable
/// protocol codes.
pub fn run_point(p: &GridPoint) -> Result<PointStats, SweepError> {
    let w = braid_workloads::by_name_any(&p.workload, p.scale)
        .ok_or_else(|| SweepError::UnknownWorkload { workload: p.workload.clone() })?;
    let core = core_config(p);
    // Lockstep snapshot comparison is a debugging aid; sweeps run release
    // grids, so keep the production behavior on both build profiles.
    let sampling = SamplingConfig { lockstep: false, ..SamplingConfig::default() };
    let point_err = |source| SweepError::Point { key: p.key(), source };
    let tiered = |tier| run_tier(&w.program, &core, tier, w.fuel, &sampling).map_err(point_err);
    match p.tier {
        Tier::Full => match tiered(Tier::Full)? {
            TierReport::Full(r) => Ok(PointStats::from_report(&r)),
            _ => unreachable!("full tier returns a full report"),
        },
        Tier::Func => match tiered(Tier::Func)? {
            TierReport::Func(r) => Ok(PointStats {
                instructions: r.instructions,
                tier: Tier::Func,
                host_nanos: r.host_nanos,
                ..PointStats::from_report(&SimReport::default())
            }),
            _ => unreachable!("func tier returns a func report"),
        },
        // A sampled point is an accuracy measurement: run both tiers and
        // carry the estimated-vs-exact IPC error alongside the exact stats.
        Tier::Sampled => {
            let exact = match tiered(Tier::Full)? {
                TierReport::Full(r) => r,
                _ => unreachable!("full tier returns a full report"),
            };
            let est = match tiered(Tier::Sampled)? {
                TierReport::Sampled(r) => r,
                _ => unreachable!("sampled tier returns a sampled report"),
            };
            let mut stats = PointStats::from_report(&exact);
            stats.tier = Tier::Sampled;
            stats.est_cycles = est.est_cycles;
            stats.ipc_err =
                if exact.ipc() > 0.0 { stats.ipc_est() / exact.ipc() - 1.0 } else { 0.0 };
            stats.host_nanos = exact.host_nanos.saturating_add(est.host_nanos());
            Ok(stats)
        }
    }
}

/// Builds the typed core configuration a grid point describes (knob value
/// `0` = the model's paper default).
fn core_config(p: &GridPoint) -> CoreConfig {
    match p.core {
        CoreModel::InOrder => {
            let mut cfg = if p.width > 0 {
                InOrderConfig::paper_wide(p.width)
            } else {
                InOrderConfig::paper_8wide()
            };
            if p.perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            if p.window > 0 {
                cfg.common.window = p.window as usize;
            }
            CoreConfig::InOrder(cfg)
        }
        CoreModel::DepSteer => {
            let mut cfg =
                if p.width > 0 { DepConfig::paper_wide(p.width) } else { DepConfig::paper_8wide() };
            if p.perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            if p.fifo > 0 {
                cfg.fifo_entries = p.fifo;
            }
            if p.window > 0 {
                cfg.common.window = p.window as usize;
            }
            if p.bypass > 0 {
                cfg.bypass_per_cycle = p.bypass;
            }
            CoreConfig::Dep(cfg)
        }
        CoreModel::Ooo => {
            let mut cfg =
                if p.width > 0 { OooConfig::paper_wide(p.width) } else { OooConfig::paper_8wide() };
            if p.perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            if p.fifo > 0 {
                cfg.sched_entries = p.fifo;
            }
            if p.window > 0 {
                cfg.common.window = p.window as usize;
            }
            if p.bypass > 0 {
                cfg.bypass_per_cycle = p.bypass;
            }
            CoreConfig::Ooo(cfg)
        }
        CoreModel::Braid => {
            let mut cfg = if p.width > 0 {
                BraidConfig::paper_wide(p.width)
            } else {
                BraidConfig::paper_default()
            };
            if p.perfect {
                cfg.common = cfg.common.clone().perfect();
            }
            if p.beus > 0 {
                cfg.beus = p.beus;
            }
            if p.fifo > 0 {
                cfg.fifo_entries = p.fifo;
            }
            if p.window > 0 {
                cfg.window_size = p.window;
            }
            if p.bypass > 0 {
                cfg.bypass_per_cycle = p.bypass;
            }
            CoreConfig::Braid(cfg)
        }
    }
}

/// Runs a sweep on `threads` workers.
///
/// With `snapshot` set, partial results are written there (best-effort)
/// after every completed point; with `resume` also set and the snapshot
/// present, completed points whose grid digest matches are reused instead
/// of re-run.
///
/// # Errors
///
/// Returns [`SweepError`] when an existing snapshot cannot be read,
/// parsed, or belongs to a different grid. Per-point simulation failures
/// do **not** fail the sweep; they land in
/// [`PointOutcome::stats`] as `Err` strings.
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    snapshot: Option<&Path>,
    resume: bool,
) -> Result<SweepRun, SweepError> {
    let started = Instant::now();
    let points = spec.expand();
    let mut done: Vec<Option<Result<PointStats, String>>> = vec![None; points.len()];

    let mut reused = 0usize;
    if resume {
        if let Some(path) = snapshot {
            if path.exists() {
                reused = load_into(path, spec, &points, &mut done)?;
            }
        }
    }

    let tasks: Vec<(usize, GridPoint)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| done[*i].is_none())
        .map(|(i, p)| (i, p.clone()))
        .collect();

    let shared = Mutex::new(done);
    let write_failure: Mutex<Option<String>> = Mutex::new(None);
    pool::run_indexed(threads, tasks, |_, (idx, point)| {
        // Errors stay results of the sweep (a livelocking config is a data
        // point); the snapshot format stores them rendered to strings.
        let stats = run_point(&point).map_err(|e| e.to_string());
        let mut done = shared.lock().expect("sweep state poisoned");
        done[idx] = Some(stats);
        if let Some(path) = snapshot {
            let doc = sweep_json(spec, &points, &done);
            if let Err(e) = write_json(path, &doc) {
                let mut slot = write_failure.lock().expect("failure slot poisoned");
                if slot.is_none() {
                    *slot = Some(e.to_string());
                }
            }
        }
    });

    let done = shared.into_inner().expect("sweep state poisoned");
    let outcomes = points
        .into_iter()
        .zip(done)
        .map(|(point, stats)| PointOutcome {
            point,
            stats: stats.expect("pool ran every missing point"),
        })
        .collect();
    Ok(SweepRun {
        spec: spec.clone(),
        outcomes,
        reused,
        host_nanos: started.elapsed().as_nanos() as u64,
        snapshot_error: write_failure.into_inner().expect("failure slot poisoned"),
    })
}

/// Serializes a finished sweep to its deterministic aggregate document:
/// points sorted by grid index, no host wall-clock fields, byte-identical
/// across thread counts.
pub fn aggregate(run: &SweepRun) -> Json {
    let points: Vec<GridPoint> = run.outcomes.iter().map(|o| o.point.clone()).collect();
    let done: Vec<Option<Result<PointStats, String>>> =
        run.outcomes.iter().map(|o| Some(o.stats.clone())).collect();
    sweep_json(&run.spec, &points, &done)
}

/// Writes `doc` to `path` (with a trailing newline), creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns [`SweepError::Io`] on filesystem failure.
pub fn write_json(path: &Path, doc: &Json) -> Result<(), SweepError> {
    let io = |source| SweepError::Io { path: path.to_path_buf(), source };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(io)?;
        }
    }
    fs::write(path, format!("{doc}\n")).map_err(io)
}

/// Reads and parses a snapshot or aggregate file.
///
/// # Errors
///
/// Returns [`SweepError::Io`] or [`SweepError::Parse`].
pub fn load_json(path: &Path) -> Result<Json, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
    json::parse(&text).map_err(|source| SweepError::Parse { path: path.to_path_buf(), source })
}

/// The shared snapshot/aggregate document. Partial snapshots simply have
/// fewer entries in `points` than `grid_points`.
fn sweep_json(
    spec: &SweepSpec,
    points: &[GridPoint],
    done: &[Option<Result<PointStats, String>>],
) -> Json {
    let completed = done.iter().filter(|d| d.is_some()).count();
    let mut entries = Vec::with_capacity(completed);
    for (point, stats) in points.iter().zip(done) {
        let Some(stats) = stats else { continue };
        entries.push(point_json(point, stats));
    }
    Json::Obj(vec![
        ("sweep".into(), Json::Str(spec.name.clone())),
        ("digest".into(), Json::Str(spec.digest())),
        ("scale".into(), Json::Float(spec.scale)),
        ("perfect".into(), Json::Bool(spec.perfect)),
        ("grid_points".into(), Json::Int(points.len() as u64)),
        ("completed".into(), Json::Int(completed as u64)),
        ("points".into(), Json::Arr(entries)),
        ("summary".into(), summary_json(points, done)),
    ])
}

/// Per-core geometric-mean IPC over the successful points (deterministic:
/// computed in grid-index order from serialized-precision inputs).
/// Functional-only points have no timing and are excluded.
fn summary_json(points: &[GridPoint], done: &[Option<Result<PointStats, String>>]) -> Json {
    let mut fields = Vec::new();
    for core in CoreModel::ALL {
        let mut log_sum = 0.0f64;
        let mut n = 0usize;
        for (point, stats) in points.iter().zip(done) {
            if point.core != core || point.tier == Tier::Func {
                continue;
            }
            if let Some(Ok(s)) = stats {
                log_sum += s.ipc().max(1e-12).ln();
                n += 1;
            }
        }
        if n > 0 {
            let label = format!("geomean_ipc_{core}");
            fields.push((label, Json::Float((log_sum / n as f64).exp())));
        }
    }
    Json::Obj(fields)
}

fn point_json(point: &GridPoint, stats: &Result<PointStats, String>) -> Json {
    let mut fields = vec![
        ("index".into(), Json::Int(u64::from(point.index))),
        ("key".into(), Json::Str(point.key())),
        ("workload".into(), Json::Str(point.workload.clone())),
        ("core".into(), Json::Str(point.core.name().into())),
        ("width".into(), Json::Int(u64::from(point.width))),
        ("beus".into(), Json::Int(u64::from(point.beus))),
        ("fifo".into(), Json::Int(u64::from(point.fifo))),
        ("window".into(), Json::Int(u64::from(point.window))),
        ("bypass".into(), Json::Int(u64::from(point.bypass))),
        ("tier".into(), Json::Str(point.tier.name().into())),
    ];
    match stats {
        Ok(s) => {
            fields.push(("status".into(), Json::Str("ok".into())));
            fields.push(("instructions".into(), Json::Int(s.instructions)));
            fields.push(("cycles".into(), Json::Int(s.cycles)));
            fields.push(("ipc".into(), Json::Float(s.ipc())));
            if s.tier == Tier::Sampled {
                fields.push(("est_cycles".into(), Json::Int(s.est_cycles)));
                fields.push(("ipc_est".into(), Json::Float(s.ipc_est())));
                fields.push(("ipc_err".into(), Json::Float(s.ipc_err)));
            }
            fields.push(("forwarded_loads".into(), Json::Int(s.forwarded_loads)));
            fields
                .push(("mispredict_stall_cycles".into(), Json::Int(s.mispredict_stall_cycles)));
            fields.push(("stall_regs".into(), Json::Int(s.stall_regs)));
            fields.push(("stall_window".into(), Json::Int(s.stall_window)));
            fields.push(("stall_lsq".into(), Json::Int(s.stall_lsq)));
            fields.push(("stall_alloc_bw".into(), Json::Int(s.stall_alloc_bw)));
            fields.push(("lsq_wait_events".into(), Json::Int(s.lsq_wait_events)));
            fields.push((
                "external_values_per_cycle".into(),
                Json::Float(s.external_values_per_cycle),
            ));
            fields.push(("checkpoint_words".into(), Json::Int(s.checkpoint_words)));
            fields.push(("exceptions_taken".into(), Json::Int(s.exceptions_taken)));
            fields.push((
                "cpi".into(),
                Json::Obj(
                    s.cpi.iter().map(|(c, n)| (c.key().to_string(), Json::Int(n))).collect(),
                ),
            ));
        }
        Err(msg) => {
            fields.push(("status".into(), Json::Str("error".into())));
            fields.push(("error".into(), Json::Str(msg.clone())));
        }
    }
    Json::Obj(fields)
}

/// Loads a snapshot into `done`, returning how many points were reused.
fn load_into(
    path: &Path,
    spec: &SweepSpec,
    points: &[GridPoint],
    done: &mut [Option<Result<PointStats, String>>],
) -> Result<usize, SweepError> {
    let doc = load_json(path)?;
    let malformed = |msg: &str| SweepError::Malformed {
        path: path.to_path_buf(),
        msg: msg.to_string(),
    };
    let found = doc
        .get("digest")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing `digest`"))?;
    let want = spec.digest();
    if found != want {
        return Err(SweepError::DigestMismatch {
            path: path.to_path_buf(),
            found: found.to_string(),
            want,
        });
    }
    let entries =
        doc.get("points").and_then(Json::as_arr).ok_or_else(|| malformed("missing `points`"))?;
    let mut reused = 0;
    for entry in entries {
        let Some(idx) = entry.get("index").and_then(Json::as_u64) else { continue };
        let idx = idx as usize;
        if idx >= points.len() {
            return Err(malformed(&format!("point index {idx} outside the grid")));
        }
        let key = entry.get("key").and_then(Json::as_str).unwrap_or("");
        if key != points[idx].key() {
            return Err(malformed(&format!(
                "point {idx} key `{key}` does not match grid key `{}`",
                points[idx].key()
            )));
        }
        let Some(stats) = stats_from_json(entry) else {
            return Err(malformed(&format!("point {idx} has no readable result")));
        };
        done[idx] = Some(stats);
        reused += 1;
    }
    Ok(reused)
}

/// Reconstructs a CPI stack from its snapshot object; a missing or
/// malformed object (a snapshot predating CPI accounting) yields an
/// all-zero stack rather than refusing the whole snapshot.
fn cpi_from_json(obj: Option<&Json>) -> CpiStack {
    let mut cpi = CpiStack::new();
    if let Some(Json::Obj(fields)) = obj {
        for (key, v) in fields {
            if let (Some(cause), Some(n)) = (StallCause::from_key(key), v.as_u64()) {
                cpi.add(cause, n);
            }
        }
    }
    cpi
}

/// Aggregated CPI stacks per core model: every successful point's stack,
/// merged in grid order. Cores with no successful points are omitted.
/// This is the input for paper-style CPI-breakdown tables.
pub fn cpi_by_core(run: &SweepRun) -> Vec<(CoreModel, CpiStack)> {
    CoreModel::ALL
        .into_iter()
        .filter_map(|core| {
            let mut merged = CpiStack::new();
            let mut any = false;
            for o in &run.outcomes {
                if o.point.core != core {
                    continue;
                }
                if let Ok(s) = &o.stats {
                    merged.merge(&s.cpi);
                    any = true;
                }
            }
            any.then_some((core, merged))
        })
        .collect()
}

/// Reconstructs a point result from its snapshot entry. `host_nanos`
/// is not serialized, so it comes back as `0`. Tier fields are read
/// zero-tolerantly (mirroring [`cpi_from_json`]): a snapshot written
/// before execution tiers existed simply has no `tier` / `est_cycles` /
/// `ipc_err` fields and loads as a full-tier point with no estimate.
fn stats_from_json(entry: &Json) -> Option<Result<PointStats, String>> {
    match entry.get("status").and_then(Json::as_str)? {
        "error" => Some(Err(entry.get("error").and_then(Json::as_str)?.to_string())),
        "ok" => {
            let int = |k: &str| entry.get(k).and_then(Json::as_u64);
            Some(Ok(PointStats {
                tier: entry
                    .get("tier")
                    .and_then(Json::as_str)
                    .and_then(Tier::parse)
                    .unwrap_or(Tier::Full),
                est_cycles: int("est_cycles").unwrap_or(0),
                ipc_err: entry.get("ipc_err").and_then(Json::as_f64).unwrap_or(0.0),
                instructions: int("instructions")?,
                cycles: int("cycles")?,
                forwarded_loads: int("forwarded_loads")?,
                mispredict_stall_cycles: int("mispredict_stall_cycles")?,
                stall_regs: int("stall_regs")?,
                stall_window: int("stall_window")?,
                stall_lsq: int("stall_lsq")?,
                stall_alloc_bw: int("stall_alloc_bw")?,
                lsq_wait_events: int("lsq_wait_events")?,
                external_values_per_cycle: entry
                    .get("external_values_per_cycle")
                    .and_then(Json::as_f64)?,
                checkpoint_words: int("checkpoint_words")?,
                exceptions_taken: int("exceptions_taken")?,
                cpi: cpi_from_json(entry.get("cpi")),
                host_nanos: 0,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> SweepSpec {
        let mut spec = SweepSpec::new(name);
        spec.workloads = vec!["dot_product".into(), "fig2_life".into()];
        spec.cores = vec![CoreModel::InOrder, CoreModel::Braid];
        spec
    }

    fn temp_path(file: &str) -> PathBuf {
        std::env::temp_dir().join(format!("braid-sweep-{}-{file}", std::process::id()))
    }

    #[test]
    fn run_point_works_on_every_core() {
        let mut insts = Vec::new();
        for core in CoreModel::ALL {
            let p = GridPoint {
                index: 0,
                workload: "dot_product".into(),
                core,
                width: 0,
                beus: 0,
                fifo: 0,
                window: 0,
                bypass: 0,
                scale: 0.05,
                perfect: false,
                tier: Tier::Full,
            };
            let s = run_point(&p).unwrap_or_else(|e| panic!("{core}: {e}"));
            assert!(s.cycles > 0, "{core} simulated no cycles");
            assert_eq!(s.cpi.total(), s.cycles, "{core}: CPI stack must sum to cycles");
            insts.push(s.instructions);
        }
        assert!(insts.windows(2).all(|w| w[0] == w[1]), "same retire count on every core");
    }

    #[test]
    fn cpi_stacks_survive_snapshot_and_aggregate_per_core() {
        let spec = tiny_spec("cpi");
        let run = run_sweep(&spec, 2, None, false).unwrap();

        // Serialized points carry the full 10-cause object and it parses
        // back to the same stack.
        let doc = aggregate(&run);
        let pts = doc.get("points").and_then(Json::as_arr).unwrap();
        for (entry, o) in pts.iter().zip(&run.outcomes) {
            let s = o.stats.as_ref().unwrap();
            let cpi = entry.get("cpi").expect("cpi object serialized");
            let total: u64 = StallCause::ALL
                .iter()
                .map(|c| cpi.get(c.key()).and_then(Json::as_u64).expect("every cause present"))
                .sum();
            assert_eq!(total, s.cycles);
            assert_eq!(cpi_from_json(Some(cpi)), s.cpi);
        }
        // A pre-CPI snapshot entry degrades to a zero stack.
        assert_eq!(cpi_from_json(None), CpiStack::new());

        // Per-core aggregation merges every workload's stack.
        let by_core = cpi_by_core(&run);
        assert_eq!(by_core.len(), 2, "two cores in the grid");
        for (core, cpi) in &by_core {
            let expected: u64 = run
                .outcomes
                .iter()
                .filter(|o| o.point.core == *core)
                .map(|o| o.stats.as_ref().unwrap().cycles)
                .sum();
            assert_eq!(cpi.total(), expected, "{core}: merged stack sums to merged cycles");
        }
    }

    #[test]
    fn unknown_workload_is_reported() {
        let mut p = GridPoint {
            index: 0,
            workload: "nonesuch".into(),
            core: CoreModel::Ooo,
            width: 0,
            beus: 0,
            fifo: 0,
            window: 0,
            bypass: 0,
            scale: 0.05,
            perfect: false,
            tier: Tier::Full,
        };
        let err = run_point(&p).unwrap_err();
        assert_eq!(err.code(), "unknown-workload");
        assert!(err.to_string().contains("nonesuch"));
        // A bad configuration is an Err string, not a panic.
        p.workload = "dot_product".into();
        p.window = 1;
        let _ = run_point(&p);
    }

    #[test]
    fn aggregate_is_thread_count_invariant() {
        let spec = tiny_spec("det");
        let serial = aggregate(&run_sweep(&spec, 1, None, false).unwrap()).to_string();
        let threaded = aggregate(&run_sweep(&spec, 3, None, false).unwrap()).to_string();
        assert_eq!(serial, threaded, "aggregate must not depend on thread count");
    }

    #[test]
    fn snapshot_resume_round_trip() {
        let spec = tiny_spec("resume");
        let path = temp_path("resume.json");
        let _ = fs::remove_file(&path);

        // Full run with snapshotting; the snapshot ends up complete.
        let full = run_sweep(&spec, 2, Some(&path), false).unwrap();
        assert!(full.snapshot_error.is_none());
        let full_doc = aggregate(&full).to_string();
        let on_disk = load_json(&path).unwrap();
        assert_eq!(on_disk.get("completed").and_then(Json::as_u64), Some(4));

        // Resuming reuses every point and reproduces the aggregate bytes.
        let resumed = run_sweep(&spec, 2, Some(&path), true).unwrap();
        assert_eq!(resumed.reused, 4);
        assert_eq!(aggregate(&resumed).to_string(), full_doc);

        // A *partial* snapshot re-runs only the missing points.
        let points = spec.expand();
        let mut half: Vec<Option<Result<PointStats, String>>> =
            full.outcomes.iter().map(|o| Some(o.stats.clone())).collect();
        half[1] = None;
        half[3] = None;
        write_json(&path, &sweep_json(&spec, &points, &half)).unwrap();
        let resumed = run_sweep(&spec, 2, Some(&path), true).unwrap();
        assert_eq!(resumed.reused, 2);
        assert_eq!(aggregate(&resumed).to_string(), full_doc);

        // A different grid is refused.
        let mut other = spec.clone();
        other.widths = vec![4];
        assert!(matches!(
            run_sweep(&other, 1, Some(&path), true),
            Err(SweepError::DigestMismatch { .. })
        ));

        let _ = fs::remove_file(&path);
    }

    #[test]
    fn errors_are_data_points() {
        let mut spec = SweepSpec::new("err");
        spec.workloads = vec!["nonesuch".into()];
        spec.cores = vec![CoreModel::Ooo];
        let run = run_sweep(&spec, 1, None, false).unwrap();
        assert!(run.outcomes[0].stats.is_err());
        let doc = aggregate(&run);
        let pts = doc.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(pts[0].get("status").and_then(Json::as_str), Some("error"));
        // Summary skips error points entirely.
        assert_eq!(doc.get("summary"), Some(&Json::Obj(vec![])));
    }
}
