//! Fixed-width binary encoding of BRISC instructions.
//!
//! The paper (Figure 3) extends each instruction with the braid bits using
//! three formats: *zero-destination*, *one-register* and *two-register*.
//! BRISC packs every instruction into one 64-bit word:
//!
//! ```text
//!  bits 0..7   opcode
//!  bits 7..9   format tag (0 zero-dest, 1 one-register, 2 two-register)
//!  bit  9      S   braid start
//!  bit  10     T1  source 0 is internal
//!  bit  11     T2  source 1 is internal
//!  bit  12     I   destination written to internal register file
//!  bit  13     E   destination written to external register file
//!  bits 14..20 destination register
//!  bits 20..26 source register 0
//!  bits 26..32 source register 1
//!  bits 32..64 immediate (i32), except memory operations:
//!  bits 32..48   displacement (i16)
//!  bits 48..64   alias class (u16)
//! ```

use std::fmt;

use crate::inst::AliasClass;
use crate::{BraidBits, Inst, IsaError, Opcode, Reg};

/// The paper's three instruction formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// No register destination (stores, branches, `nop`, `halt`).
    ZeroDest,
    /// A destination and at most one register source.
    OneReg,
    /// A destination and two register sources.
    TwoReg,
}

impl Format {
    /// The format an instruction encodes with.
    pub fn of(inst: &Inst) -> Format {
        match (inst.opcode.has_dest(), inst.opcode.num_srcs()) {
            (false, _) => Format::ZeroDest,
            (true, 2) => Format::TwoReg,
            (true, _) => Format::OneReg,
        }
    }

    fn tag(self) -> u64 {
        match self {
            Format::ZeroDest => 0,
            Format::OneReg => 1,
            Format::TwoReg => 2,
        }
    }

    fn from_tag(tag: u64) -> Result<Format, IsaError> {
        match tag {
            0 => Ok(Format::ZeroDest),
            1 => Ok(Format::OneReg),
            2 => Ok(Format::TwoReg),
            t => Err(IsaError::BadFormat(t as u8)),
        }
    }
}

/// A binary-encoded instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedInst(pub u64);

impl fmt::Display for EncodedInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for EncodedInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for EncodedInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for EncodedInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<EncodedInst> for u64 {
    fn from(e: EncodedInst) -> u64 {
        e.0
    }
}

fn reg_bits(r: Option<Reg>) -> u64 {
    r.map(|r| r.index() as u64).unwrap_or(0)
}

/// Encodes an instruction into a 64-bit word.
///
/// # Errors
///
/// Returns [`IsaError::MalformedInst`] for shape violations and
/// [`IsaError::ImmOutOfRange`] when a memory displacement does not fit in 16
/// bits.
pub fn encode(inst: &Inst) -> Result<EncodedInst, IsaError> {
    inst.validate()?;
    let mut w = inst.opcode.code() as u64;
    w |= Format::of(inst).tag() << 7;
    let b = inst.braid;
    w |= (b.start as u64) << 9;
    w |= (b.t[0] as u64) << 10;
    w |= (b.t[1] as u64) << 11;
    w |= (b.internal as u64) << 12;
    w |= (b.external as u64) << 13;
    w |= reg_bits(inst.dest) << 14;
    w |= reg_bits(inst.srcs[0]) << 20;
    w |= reg_bits(inst.srcs[1]) << 26;
    if inst.opcode.is_mem() {
        let disp = i16::try_from(inst.imm).map_err(|_| IsaError::ImmOutOfRange(inst.imm as i64))?;
        w |= ((disp as u16) as u64) << 32;
        w |= (inst.alias.pack() as u64) << 48;
    } else {
        w |= ((inst.imm as u32) as u64) << 32;
    }
    Ok(EncodedInst(w))
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`IsaError::BadOpcode`], [`IsaError::BadFormat`] or
/// [`IsaError::MalformedInst`] for words that do not decode to a valid
/// instruction.
pub fn decode(word: EncodedInst) -> Result<Inst, IsaError> {
    let w = word.0;
    let opcode = Opcode::from_code((w & 0x7f) as u8)?;
    let format = Format::from_tag((w >> 7) & 0x3)?;
    let braid = BraidBits {
        start: (w >> 9) & 1 != 0,
        t: [(w >> 10) & 1 != 0, (w >> 11) & 1 != 0],
        internal: (w >> 12) & 1 != 0,
        external: (w >> 13) & 1 != 0,
    };
    let reg_at = |shift: u32| -> Result<Reg, IsaError> { Reg::new(((w >> shift) & 0x3f) as u8) };
    let dest = if opcode.has_dest() { Some(reg_at(14)?) } else { None };
    let mut srcs = [None, None];
    if opcode.num_srcs() >= 1 {
        srcs[0] = Some(reg_at(20)?);
    }
    if opcode.num_srcs() >= 2 {
        srcs[1] = Some(reg_at(26)?);
    }
    let (imm, alias) = if opcode.is_mem() {
        let disp = ((w >> 32) & 0xffff) as u16 as i16;
        let alias = AliasClass::unpack(((w >> 48) & 0xffff) as u16);
        (disp as i32, alias)
    } else {
        (((w >> 32) & 0xffff_ffff) as u32 as i32, AliasClass::Unknown)
    };
    let inst = Inst { opcode, dest, srcs, imm, alias, braid };
    if Format::of(&inst) != format {
        return Err(IsaError::MalformedInst(format!(
            "format tag {format:?} does not match opcode {opcode}"
        )));
    }
    inst.validate()?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::int(n).unwrap()
    }

    #[test]
    fn round_trip_every_shape() {
        let samples = vec![
            Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap(),
            Inst::alui(Opcode::Addi, r(1), -5, r(2)).unwrap(),
            Inst::alui(Opcode::Lda, r(4), 4, r(4)).unwrap(),
            Inst::load(Opcode::Ldl, r(1), -32, r(2), AliasClass::Stack(9)).unwrap(),
            Inst::store(Opcode::Stq, r(1), r(2), 24, AliasClass::Heap(3)).unwrap(),
            Inst::branch(Opcode::Bne, r(1), 1234).unwrap(),
            Inst::br(7),
            Inst::call(42, r(31)).unwrap(),
            Inst::ret(r(31)).unwrap(),
            Inst::nop(),
            Inst::halt(),
            Inst::alu(Opcode::Fadd, Reg::float(1).unwrap(), Reg::float(2).unwrap(), Reg::float(3).unwrap())
                .unwrap(),
        ];
        for inst in samples {
            let e = encode(&inst).unwrap();
            let back = decode(e).unwrap();
            assert_eq!(back, inst, "round trip failed for {inst}");
        }
    }

    #[test]
    fn braid_bits_survive_encoding() {
        let mut inst = Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap();
        inst.braid = BraidBits { start: true, t: [true, false], internal: true, external: true };
        let back = decode(encode(&inst).unwrap()).unwrap();
        assert_eq!(back.braid, inst.braid);
    }

    #[test]
    fn formats_match_paper_figure3() {
        let st = Inst::store(Opcode::Stl, r(1), r(2), 0, AliasClass::Unknown).unwrap();
        assert_eq!(Format::of(&st), Format::ZeroDest);
        let ld = Inst::load(Opcode::Ldl, r(1), 0, r(2), AliasClass::Unknown).unwrap();
        assert_eq!(Format::of(&ld), Format::OneReg);
        let add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap();
        assert_eq!(Format::of(&add), Format::TwoReg);
        let bne = Inst::branch(Opcode::Bne, r(1), 0).unwrap();
        assert_eq!(Format::of(&bne), Format::ZeroDest);
    }

    #[test]
    fn mem_displacement_range_checked() {
        let ok = Inst::load(Opcode::Ldq, r(1), 32767, r(2), AliasClass::Unknown).unwrap();
        assert!(encode(&ok).is_ok());
        let too_big = Inst::load(Opcode::Ldq, r(1), 32768, r(2), AliasClass::Unknown).unwrap();
        assert_eq!(encode(&too_big), Err(IsaError::ImmOutOfRange(32768)));
    }

    #[test]
    fn negative_immediates_round_trip() {
        let inst = Inst::alui(Opcode::Addi, r(1), i32::MIN, r(2)).unwrap();
        assert_eq!(decode(encode(&inst).unwrap()).unwrap().imm, i32::MIN);
        let inst = Inst::load(Opcode::Ldl, r(1), -32768, r(2), AliasClass::Unknown).unwrap();
        assert_eq!(decode(encode(&inst).unwrap()).unwrap().imm, -32768);
    }

    #[test]
    fn garbage_words_do_not_decode() {
        assert!(decode(EncodedInst(0x7f)).is_err(), "bad opcode");
        // add with zero-dest format tag
        let add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap();
        let w = encode(&add).unwrap().0 & !(0x3 << 7);
        assert!(decode(EncodedInst(w)).is_err(), "format mismatch");
    }

    #[test]
    fn display_is_hex() {
        let e = encode(&Inst::nop()).unwrap();
        assert!(e.to_string().starts_with("0x"));
        let _ = format!("{e:x} {e:X} {e:b}");
    }
}
