//! Programs: instruction sequences plus initial data memory.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Inst, IsaError, Opcode};

/// A contiguous range of initialized data memory.
///
/// Workloads use data segments to describe the arrays, tables and pointer
/// structures their code walks; the functional executor loads them into
/// memory before execution begins.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataSegment {
    /// First byte address of the segment.
    pub base: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Creates a zero-filled segment of `len` bytes at `base`.
    pub fn zeroed(base: u64, len: usize) -> DataSegment {
        DataSegment { base, bytes: vec![0; len] }
    }

    /// Creates a segment at `base` holding the given 64-bit words in
    /// little-endian order.
    pub fn from_words(base: u64, words: &[u64]) -> DataSegment {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        DataSegment { base, bytes }
    }

    /// The exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Overwrites the 64-bit word at byte offset `offset` (little endian).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the segment length.
    pub fn put_word(&mut self, offset: usize, value: u64) {
        self.bytes[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }
}

/// A complete BRISC program: a flat instruction sequence, an entry point and
/// initial data memory.
///
/// Control-transfer targets are absolute indices into [`Program::insts`].
/// Basic-block structure is *derived* (by `braid-compiler`), not stored, so
/// translations that reorder instructions cannot leave stale metadata here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Human-readable name (workload name, kernel name, ...).
    pub name: String,
    /// The instructions.
    pub insts: Vec<Inst>,
    /// Index of the first instruction executed.
    pub entry: u32,
    /// Initial data memory contents.
    pub data: Vec<DataSegment>,
    /// Labels kept for diagnostics: label name → instruction index.
    pub labels: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from instructions, entering at index 0.
    pub fn from_insts(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        Program { name: name.into(), insts, ..Program::default() }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Validates the program: every instruction is well-formed, every direct
    /// control target is in range, the entry point is in range, at least one
    /// `halt` exists, and data segments do not overlap.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.insts.is_empty() {
            return Err(IsaError::MalformedProgram("program has no instructions".into()));
        }
        if self.entry as usize >= self.insts.len() {
            return Err(IsaError::TargetOutOfRange(self.entry));
        }
        let mut saw_halt = false;
        for inst in &self.insts {
            inst.validate()?;
            if let Some(t) = inst.target() {
                if t as usize >= self.insts.len() {
                    return Err(IsaError::TargetOutOfRange(t));
                }
            }
            saw_halt |= inst.opcode == Opcode::Halt;
        }
        if !saw_halt {
            return Err(IsaError::MalformedProgram("program has no halt instruction".into()));
        }
        let mut segs: Vec<&DataSegment> = self.data.iter().collect();
        segs.sort_by_key(|s| s.base);
        for pair in segs.windows(2) {
            if pair[0].end() > pair[1].base {
                return Err(IsaError::MalformedProgram(format!(
                    "data segments at {:#x} and {:#x} overlap",
                    pair[0].base, pair[1].base
                )));
            }
        }
        Ok(())
    }

    /// The set of basic-block leader indices: the entry, every direct
    /// control target, and every instruction following a block terminator.
    pub fn leaders(&self) -> Vec<u32> {
        let mut is_leader = vec![false; self.insts.len()];
        if let Some(l) = is_leader.get_mut(self.entry as usize) {
            *l = true;
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                if let Some(l) = is_leader.get_mut(t as usize) {
                    *l = true;
                }
            }
            if inst.ends_block() {
                if let Some(l) = is_leader.get_mut(i + 1) {
                    *l = true;
                }
            }
        }
        is_leader
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| if l { Some(i as u32) } else { None })
            .collect()
    }

    /// Encodes every instruction.
    ///
    /// # Errors
    ///
    /// Propagates the first encoding failure.
    pub fn encode_all(&self) -> Result<Vec<crate::EncodedInst>, IsaError> {
        self.insts.iter().map(crate::encode).collect()
    }

    /// Per-instruction braid ordinals: instruction `i` belongs to braid
    /// `braid_ids()[i]`, counting `S` (start) bits in program order. An
    /// unannotated program (no explicit starts beyond the default) maps
    /// every instruction to the braid opened by the nearest preceding
    /// start. Used by observability exports to fold per-PC profiles into
    /// per-braid profiles.
    pub fn braid_ids(&self) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.insts.len());
        let mut current: u32 = 0;
        let mut seen_start = false;
        for inst in &self.insts {
            if inst.braid.start {
                if seen_start {
                    current += 1;
                }
                seen_start = true;
            }
            ids.push(current);
        }
        ids
    }

    /// Static count of instructions per opcode, useful for workload reports.
    pub fn opcode_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut h = BTreeMap::new();
        for inst in &self.insts {
            *h.entry(inst.opcode.mnemonic()).or_insert(0) += 1;
        }
        h
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {} ({} instructions)", self.name, self.insts.len())?;
        let mut label_of: BTreeMap<u32, &str> = BTreeMap::new();
        for (name, &idx) in &self.labels {
            label_of.insert(idx, name);
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(name) = label_of.get(&(i as u32)) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AliasClass, Reg};

    fn r(n: u8) -> Reg {
        Reg::int(n).unwrap()
    }

    fn counting_loop() -> Program {
        // r1 = 4; loop: r1 -= 1; bne r1, loop; halt
        Program::from_insts(
            "loop",
            vec![
                Inst::alui(Opcode::Addi, Reg::ZERO, 4, r(1)).unwrap(),
                Inst::alui(Opcode::Subi, r(1), 1, r(1)).unwrap(),
                Inst::branch(Opcode::Bne, r(1), 1).unwrap(),
                Inst::halt(),
            ],
        )
    }

    #[test]
    fn valid_program_validates() {
        counting_loop().validate().unwrap();
    }

    #[test]
    fn braid_ids_count_start_bits() {
        let mut p = counting_loop();
        // Unannotated default: every instruction starts its own braid.
        assert_eq!(p.braid_ids(), vec![0, 1, 2, 3]);
        // Merge the middle two into one braid.
        p.insts[2].braid.start = false;
        assert_eq!(p.braid_ids(), vec![0, 1, 1, 2]);
        // A leading non-start instruction still belongs to braid 0.
        p.insts[0].braid.start = false;
        assert_eq!(p.braid_ids(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn rejects_empty_and_haltless() {
        assert!(Program::from_insts("e", vec![]).validate().is_err());
        let p = Program::from_insts("n", vec![Inst::nop()]);
        assert!(matches!(p.validate(), Err(IsaError::MalformedProgram(_))));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut p = counting_loop();
        p.insts[2].set_target(99);
        assert_eq!(p.validate(), Err(IsaError::TargetOutOfRange(99)));
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let mut p = counting_loop();
        p.entry = 50;
        assert_eq!(p.validate(), Err(IsaError::TargetOutOfRange(50)));
    }

    #[test]
    fn leaders_found() {
        let p = counting_loop();
        // entry 0; branch target 1; fall-through after branch 3.
        assert_eq!(p.leaders(), vec![0, 1, 3]);
    }

    #[test]
    fn overlapping_data_rejected() {
        let mut p = counting_loop();
        p.data.push(DataSegment::zeroed(0x1000, 16));
        p.data.push(DataSegment::zeroed(0x1008, 16));
        assert!(p.validate().is_err());
        p.data[1].base = 0x1010;
        p.validate().unwrap();
    }

    #[test]
    fn data_segment_helpers() {
        let mut seg = DataSegment::from_words(0x100, &[1, 2]);
        assert_eq!(seg.end(), 0x110);
        seg.put_word(8, 77);
        assert_eq!(&seg.bytes[8..16], &77u64.to_le_bytes());
    }

    #[test]
    fn histogram_counts() {
        let p = counting_loop();
        let h = p.opcode_histogram();
        assert_eq!(h["addi"], 1);
        assert_eq!(h["subi"], 1);
        assert_eq!(h["bne"], 1);
        assert_eq!(h["halt"], 1);
    }

    #[test]
    fn encode_all_round_trips() {
        let p = counting_loop();
        let words = p.encode_all().unwrap();
        for (w, inst) in words.iter().zip(&p.insts) {
            assert_eq!(&crate::decode(*w).unwrap(), inst);
        }
    }

    #[test]
    fn display_includes_labels() {
        let mut p = counting_loop();
        p.labels.insert("loop".into(), 1);
        let text = p.to_string();
        assert!(text.contains("loop:"));
        assert!(text.contains("subi r1, #1, r1"));
    }

    #[test]
    fn alias_survives_program_round_trip() {
        let mut p = counting_loop();
        p.insts.insert(3, Inst::load(Opcode::Ldq, r(2), 0, r(3), AliasClass::Global(5)).unwrap());
        p.insts[2].set_target(1);
        let words = p.encode_all().unwrap();
        assert_eq!(crate::decode(words[3]).unwrap().alias, AliasClass::Global(5));
    }
}
