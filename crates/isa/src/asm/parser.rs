//! Two-pass line-oriented assembler.

use std::collections::BTreeMap;

use crate::opcode::ImmKind;
use crate::{AliasClass, DataSegment, Inst, IsaError, Opcode, Program, Reg};

/// A control target that may still be a label after the first pass.
#[derive(Debug, Clone)]
enum Target {
    Resolved(u32),
    Label(String, usize),
}

/// Assembles BRISC source text into a [`Program`].
///
/// See the [module documentation](crate::asm) for the accepted syntax.
///
/// # Errors
///
/// Returns [`IsaError::Syntax`] with the offending line,
/// [`IsaError::UndefinedLabel`]/[`IsaError::DuplicateLabel`] for label
/// problems, or validation errors from the constructed instructions.
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut targets: Vec<Option<Target>> = Vec::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut data: Vec<DataSegment> = Vec::new();
    let mut entry: Option<Target> = None;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = raw;
        if let Some(pos) = line.find(';') {
            line = &line[..pos];
        }
        let mut line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A leading `label:` may be followed by an instruction.
        while let Some(colon) = line.find(':') {
            let candidate = line[..colon].trim();
            if candidate.is_empty() || !is_ident(candidate) {
                break;
            }
            // Avoid treating alias tags like `@stack:2` as labels.
            if candidate.contains('@') || candidate.contains(' ') {
                break;
            }
            if labels.insert(candidate.to_string(), insts.len() as u32).is_some() {
                return Err(IsaError::DuplicateLabel(candidate.to_string()));
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            entry = Some(parse_target(rest.trim(), lineno)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".data") {
            data.push(parse_data(rest.trim(), lineno)?);
            continue;
        }
        let (inst, target) = parse_inst(line, lineno)?;
        insts.push(inst);
        targets.push(target);
    }

    // Second pass: resolve label targets.
    let resolve = |t: &Target| -> Result<u32, IsaError> {
        match t {
            Target::Resolved(i) => Ok(*i),
            Target::Label(name, _line) => labels
                .get(name)
                .copied()
                .ok_or_else(|| IsaError::UndefinedLabel(name.clone())),
        }
    };
    for (inst, target) in insts.iter_mut().zip(&targets) {
        if let Some(t) = target {
            inst.set_target(resolve(t)?);
        }
    }
    let entry = match &entry {
        Some(t) => resolve(t)?,
        None => 0,
    };

    let program = Program { name: "asm".into(), insts, entry, data, labels };
    program.validate()?;
    Ok(program)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn syntax(line: usize, msg: impl Into<String>) -> IsaError {
    IsaError::Syntax { line, msg: msg.into() }
}

fn parse_int(s: &str, line: usize) -> Result<i64, IsaError> {
    let s = s.trim().trim_start_matches('#');
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| syntax(line, format!("bad number {s:?}")))?;
    Ok(if neg { -value } else { value })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, IsaError> {
    s.trim().parse().map_err(|_| syntax(line, format!("bad register {s:?}")))
}

fn parse_target(s: &str, line: usize) -> Result<Target, IsaError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(syntax(line, "missing control target"));
    }
    if s.chars().next().unwrap().is_ascii_digit() {
        Ok(Target::Resolved(parse_int(s, line)? as u32))
    } else if is_ident(s) {
        Ok(Target::Label(s.to_string(), line))
    } else {
        Err(syntax(line, format!("bad control target {s:?}")))
    }
}

fn parse_alias(s: &str, line: usize) -> Result<AliasClass, IsaError> {
    let (kind, id) = s
        .split_once(':')
        .ok_or_else(|| syntax(line, format!("bad alias tag @{s}, expected @kind:id")))?;
    let id: u16 =
        id.trim().parse().map_err(|_| syntax(line, format!("bad alias id {id:?}")))?;
    match kind.trim() {
        "stack" => Ok(AliasClass::Stack(id)),
        "global" => Ok(AliasClass::Global(id)),
        "heap" => Ok(AliasClass::Heap(id)),
        other => Err(syntax(line, format!("unknown alias kind {other:?}"))),
    }
}

/// Parses `offset(base)`.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i32, Reg), IsaError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| syntax(line, format!("expected offset(base), got {s:?}")))?;
    if !s.ends_with(')') {
        return Err(syntax(line, format!("expected offset(base), got {s:?}")));
    }
    let offset = if s[..open].trim().is_empty() { 0 } else { parse_int(&s[..open], line)? };
    let base = parse_reg(&s[open + 1..s.len() - 1], line)?;
    Ok((offset as i32, base))
}

fn parse_data(rest: &str, line: usize) -> Result<DataSegment, IsaError> {
    let mut parts = rest.split_whitespace();
    let base =
        parse_int(parts.next().ok_or_else(|| syntax(line, "missing data base address"))?, line)?;
    let mut words = Vec::new();
    for p in parts {
        words.push(parse_int(p, line)? as u64);
    }
    Ok(DataSegment::from_words(base as u64, &words))
}

fn parse_inst(line: &str, lineno: usize) -> Result<(Inst, Option<Target>), IsaError> {
    // Split off a trailing alias tag.
    let (body, alias) = match line.rfind('@') {
        Some(pos) => (line[..pos].trim(), parse_alias(line[pos + 1..].trim(), lineno)?),
        None => (line, AliasClass::Unknown),
    };
    let (mnemonic, rest) = match body.find(char::is_whitespace) {
        Some(pos) => (&body[..pos], body[pos..].trim()),
        None => (body, ""),
    };
    let opcode: Opcode = mnemonic
        .parse()
        .map_err(|_| syntax(lineno, format!("unknown mnemonic {mnemonic:?}")))?;
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let expect = |n: usize| -> Result<(), IsaError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(syntax(lineno, format!("{mnemonic} expects {n} operands, got {}", ops.len())))
        }
    };

    let inst = match opcode.imm_kind() {
        ImmKind::MemOffset if opcode.is_load() => {
            expect(2)?;
            let dest = parse_reg(ops[0], lineno)?;
            let (off, base) = parse_mem_operand(ops[1], lineno)?;
            Inst::load(opcode, base, off, dest, alias)?
        }
        ImmKind::MemOffset if opcode.is_store() => {
            expect(2)?;
            let value = parse_reg(ops[0], lineno)?;
            let (off, base) = parse_mem_operand(ops[1], lineno)?;
            Inst::store(opcode, value, base, off, alias)?
        }
        ImmKind::MemOffset => {
            // lda rd, off(rb)
            expect(2)?;
            let dest = parse_reg(ops[0], lineno)?;
            let (off, base) = parse_mem_operand(ops[1], lineno)?;
            Inst::alui(opcode, base, off, dest)?
        }
        ImmKind::Target => match opcode {
            Opcode::Br => {
                expect(1)?;
                return Ok((Inst::br(0), Some(parse_target(ops[0], lineno)?)));
            }
            Opcode::Call => {
                expect(2)?;
                let link = parse_reg(ops[1], lineno)?;
                return Ok((Inst::call(0, link)?, Some(parse_target(ops[0], lineno)?)));
            }
            _ => {
                expect(2)?;
                let src = parse_reg(ops[0], lineno)?;
                return Ok((
                    Inst::branch(opcode, src, 0)?,
                    Some(parse_target(ops[1], lineno)?),
                ));
            }
        },
        ImmKind::Value => {
            expect(3)?;
            let src = parse_reg(ops[0], lineno)?;
            let imm = parse_int(ops[1], lineno)?;
            let imm = i32::try_from(imm).map_err(|_| IsaError::ImmOutOfRange(imm))?;
            let dest = parse_reg(ops[2], lineno)?;
            Inst::alui(opcode, src, imm, dest)?
        }
        ImmKind::None => match (opcode.has_dest(), opcode.num_srcs()) {
            (false, 0) => {
                expect(0)?;
                match opcode {
                    Opcode::Nop => Inst::nop(),
                    Opcode::Halt => Inst::halt(),
                    _ => return Err(syntax(lineno, format!("cannot build {mnemonic}"))),
                }
            }
            (false, 1) => {
                expect(1)?;
                Inst::ret(parse_reg(ops[0], lineno)?)?
            }
            (true, 1) => {
                expect(2)?;
                let src = parse_reg(ops[0], lineno)?;
                let dest = parse_reg(ops[1], lineno)?;
                let mut inst = Inst::alu(opcode, src, src, dest);
                if inst.is_err() {
                    // Single-source register ops (sqrtt, cvtqt, ...).
                    inst = Ok(Inst {
                        opcode,
                        dest: Some(dest),
                        srcs: [Some(src), None],
                        imm: 0,
                        alias: AliasClass::Unknown,
                        braid: crate::BraidBits::unannotated(true),
                    });
                    inst.as_ref().map_err(|e| e.clone())?.validate()?;
                }
                inst?
            }
            (true, 2) => {
                expect(3)?;
                let s1 = parse_reg(ops[0], lineno)?;
                let s2 = parse_reg(ops[1], lineno)?;
                let d = parse_reg(ops[2], lineno)?;
                Inst::alu(opcode, s1, s2, d)?
            }
            _ => return Err(syntax(lineno, format!("unsupported shape for {mnemonic}"))),
        },
    };
    Ok((inst, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_register_ops() {
        let p = assemble("sqrtt f1, f2\ncvtqt r1, f3\ncvttq f3, r4\nhalt").unwrap();
        assert_eq!(p.insts[0].opcode, Opcode::Fsqrt);
        assert_eq!(p.insts[0].srcs[1], None);
        assert_eq!(p.insts[1].opcode, Opcode::Cvtif);
        assert_eq!(p.insts[2].opcode, Opcode::Cvtfi);
    }

    #[test]
    fn call_and_ret() {
        let p = assemble("call f, r31\nhalt\nf: ret r31").unwrap();
        assert_eq!(p.insts[0].target(), Some(2));
        assert_eq!(p.insts[0].dest, Some(Reg::int(31).unwrap()));
        assert_eq!(p.insts[2].opcode, Opcode::Ret);
    }

    #[test]
    fn numeric_targets_and_entry() {
        let p = assemble("nop\nbr 0\nhalt\n.entry 1").unwrap();
        assert_eq!(p.entry, 1);
        assert_eq!(p.insts[1].target(), Some(0));
    }

    #[test]
    fn hex_numbers() {
        let p = assemble("addi r0, #0x10, r1\nhalt\n.data 0x100 0xff").unwrap();
        assert_eq!(p.insts[0].imm, 16);
        assert_eq!(p.data[0].bytes[0], 0xff);
    }

    #[test]
    fn negative_offsets() {
        let p = assemble("ldq r1, -8(r2)\nhalt").unwrap();
        assert_eq!(p.insts[0].imm, -8);
    }

    #[test]
    fn duplicate_label_rejected() {
        assert_eq!(
            assemble("x: nop\nx: halt"),
            Err(IsaError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn undefined_label_rejected() {
        assert_eq!(
            assemble("br nowhere\nhalt"),
            Err(IsaError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn operand_count_errors() {
        assert!(matches!(
            assemble("addq r1, r2\nhalt"),
            Err(IsaError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            assemble("nop r1\nhalt"),
            Err(IsaError::Syntax { line: 1, .. })
        ));
    }

    #[test]
    fn label_and_inst_same_line() {
        let p = assemble("top: nop\nbne r1, top\nhalt").unwrap();
        assert_eq!(p.labels["top"], 0);
        assert_eq!(p.insts[1].target(), Some(0));
    }
}
