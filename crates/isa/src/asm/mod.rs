//! Text assembler and disassembler for BRISC.
//!
//! The syntax follows the Alpha listing style used in the paper's Figure 2:
//! ALU operations name the destination last, memory operations name it first
//! with an `offset(base)` operand:
//!
//! ```text
//! ; the paper's braid 2: induction-variable increment
//! loop:
//!     addi r5, #1, r5        ; r5 += 1
//!     cmpeq r9, r5, r7       ; r7 = (r9 == r5)
//!     ldl  r3, 0(r1) @stack:4
//!     stl  r3, 8(r2) @heap:1
//!     bne  r7, loop
//!     halt
//! .entry loop
//! .data 0x1000 1 2 3
//! ```
//!
//! * `;` starts a comment.
//! * `label:` defines a label; control transfers may name labels or absolute
//!   instruction indices.
//! * `@stack:N`, `@global:N`, `@heap:N` attach an [`crate::AliasClass`] to a
//!   memory operation (anything else is [`crate::AliasClass::Unknown`]).
//! * `.entry <label|index>` sets the entry point (default: instruction 0).
//! * `.data <base> <word>...` declares an initialized data segment.

mod parser;

pub use parser::assemble;

use crate::Program;

/// Renders a program back to assembler text, including labels.
///
/// The output re-assembles to an equivalent program (labels become the
/// assembler's names for the same indices; alias tags are preserved).
pub fn disassemble(program: &Program) -> String {
    program.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AliasClass, Opcode};

    const EXAMPLE: &str = r#"
        ; gcc life-analysis inner loop flavour
        entry:
            addi r0, #3, r1
        loop:
            subi r1, #1, r1
            ldl  r2, 0(r1) @stack:1
            stl  r2, 8(r1) @heap:2
            bne  r1, loop
            halt
        .entry entry
        .data 0x2000 7 9
    "#;

    #[test]
    fn assemble_example() {
        let p = assemble(EXAMPLE).unwrap();
        assert_eq!(p.insts.len(), 6);
        assert_eq!(p.entry, 0);
        assert_eq!(p.insts[4].target(), Some(1));
        assert_eq!(p.insts[2].alias, AliasClass::Stack(1));
        assert_eq!(p.insts[3].alias, AliasClass::Heap(2));
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].base, 0x2000);
        assert_eq!(&p.data[0].bytes[..8], &7u64.to_le_bytes());
        p.validate().unwrap();
    }

    #[test]
    fn disassemble_reassembles() {
        let p = assemble(EXAMPLE).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.insts, p2.insts);
        assert_eq!(p.entry, p2.entry);
    }

    #[test]
    fn paper_figure2_basic_block_assembles() {
        // The 15-instruction basic block of the paper's Figure 2(b),
        // transliterated to BRISC registers (aN→r16+N, tN→rN, zero→r0).
        let src = r#"
            addq r17, r4, r0x   ; placeholder replaced below
        "#;
        let _ = src;
        let fig2 = r#"
            addq r17, r4, r10
            addq r16, r4, r11
            addq r8,  r4, r12
            ldl  r3, 0(r10)
            addi r5, #1, r5
            ldl  r10, 0(r11)
            cmpeq r9, r5, r7
            ldl  r11, 0(r12)
            lda  r4, 4(r4)
            andnot r3, r10, r10
            addq r0, r10, r10
            and  r10, r11, r11
            zapnot r11, #15, r11
            cmovnei r10, #1, r6
            bne  r11, 0
            halt
        "#;
        let p = assemble(fig2).unwrap();
        assert_eq!(p.insts.len(), 16);
        assert_eq!(p.insts[14].opcode, Opcode::Bne);
        p.validate().unwrap();
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\n frobnicate r1\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "got: {msg}");
    }
}
