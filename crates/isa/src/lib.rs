//! # braid-isa: the BRISC instruction set with braid annotations
//!
//! This crate defines **BRISC**, the RISC instruction set used throughout the
//! braid-microarchitecture reproduction. BRISC plays the role the Alpha EV6
//! ISA plays in the paper *Achieving Out-of-Order Performance with Almost
//! In-Order Complexity* (Tseng & Patt, ISCA 2008): a conventional load/store
//! ISA with at most two register sources and one register destination per
//! instruction, extended with the paper's braid annotation bits (Figure 3):
//!
//! * a **braid start bit** `S` marking the first instruction of a braid,
//! * a **temporary bit** `T` per source operand selecting the internal
//!   register file over the external one,
//! * an **internal destination bit** `I` and an **external destination bit**
//!   `E` selecting which register file(s) the result is written to.
//!
//! The crate provides:
//!
//! * [`Reg`]/[`RegClass`] — the 64-register architectural register space
//!   (32 integer + 32 floating point, `r0` hard-wired to zero),
//! * [`Opcode`] — the operation set and its static properties (functional
//!   unit class, execution latency, branch/memory classification),
//! * [`Inst`] — one instruction, including its [`BraidBits`] annotations and
//!   an [`AliasClass`] memory-disambiguation tag,
//! * [`encode`]/[`decode`] — a fixed-width 64-bit binary encoding with the
//!   paper's three instruction formats,
//! * an [`asm`] module with a text assembler and disassembler,
//! * [`Program`] — a flat instruction sequence plus data segments, the unit
//!   consumed by the compiler and the simulators.
//!
//! ## Example
//!
//! ```
//! use braid_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     entry:
//!         addi  r0, #10, r1      ; r1 = 10
//!     loop:
//!         subi  r1, #1, r1
//!         bne   r1, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.insts.len(), 4);
//! # Ok::<(), braid_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod container;
mod encode;
mod error;
mod inst;
mod opcode;
mod program;
mod reg;

pub use encode::{decode, encode, EncodedInst, Format};
pub use error::IsaError;
pub use inst::{AliasClass, BraidBits, Inst};
pub use opcode::{FuClass, Opcode};
pub use program::{DataSegment, Program};
pub use reg::{Reg, RegClass, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
