//! Architectural registers.

use std::fmt;
use std::str::FromStr;

use crate::IsaError;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// The register class an architectural register belongs to.
///
/// BRISC splits the register space like the Alpha: integer registers
/// (`r0`..`r31`) and floating-point registers (`f0`..`f31`). `r0` reads as
/// zero and writes to it are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer register file (`r0`..`r31`).
    Int,
    /// Floating-point register file (`f0`..`f31`).
    Float,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}

/// An architectural register identifier.
///
/// Registers `0..32` are the integer registers `r0`..`r31`; registers
/// `32..64` are the floating-point registers `f0`..`f31`. The numbering is
/// flat so the compiler and the simulators can index dense tables with it.
///
/// ```
/// use braid_isa::{Reg, RegClass};
///
/// let r3 = Reg::int(3)?;
/// assert_eq!(r3.class(), RegClass::Int);
/// assert_eq!(r3.to_string(), "r3");
///
/// let f1: Reg = "f1".parse()?;
/// assert_eq!(f1.class(), RegClass::Float);
/// assert_eq!(f1.index(), 33);
/// # Ok::<(), braid_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The integer register hard-wired to zero.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from its flat index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index >= 64`.
    pub fn new(index: u8) -> Result<Reg, IsaError> {
        if index < NUM_ARCH_REGS {
            Ok(Reg(index))
        } else {
            Err(IsaError::InvalidRegister(index))
        }
    }

    /// Creates the integer register `r<n>`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `n >= 32`.
    pub fn int(n: u8) -> Result<Reg, IsaError> {
        if n < NUM_INT_REGS {
            Ok(Reg(n))
        } else {
            Err(IsaError::InvalidRegister(n))
        }
    }

    /// Creates the floating-point register `f<n>`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `n >= 32`.
    pub fn float(n: u8) -> Result<Reg, IsaError> {
        if n < NUM_FP_REGS {
            Ok(Reg(NUM_INT_REGS + n))
        } else {
            Err(IsaError::InvalidRegister(n))
        }
    }

    /// The flat index of this register in `0..64`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// The register class.
    #[inline]
    pub fn class(self) -> RegClass {
        if self.0 < NUM_INT_REGS {
            RegClass::Int
        } else {
            RegClass::Float
        }
    }

    /// The index of this register within its class, in `0..32`.
    #[inline]
    pub fn class_index(self) -> u8 {
        self.0 % NUM_INT_REGS
    }

    /// Whether this is the hard-wired zero register `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_ARCH_REGS).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.class_index()),
            RegClass::Float => write!(f, "f{}", self.class_index()),
        }
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Reg, IsaError> {
        let bad = || IsaError::BadRegisterName(s.to_string());
        let (class, rest) = match s.as_bytes().first() {
            Some(b'r') => (RegClass::Int, &s[1..]),
            Some(b'f') => (RegClass::Float, &s[1..]),
            _ => return Err(bad()),
        };
        let n: u8 = rest.parse().map_err(|_| bad())?;
        match class {
            RegClass::Int => Reg::int(n).map_err(|_| bad()),
            RegClass::Float => Reg::float(n).map_err(|_| bad()),
        }
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::ZERO.class(), RegClass::Int);
        assert!(!Reg::int(1).unwrap().is_zero());
        assert!(!Reg::float(0).unwrap().is_zero());
    }

    #[test]
    fn flat_indexing_round_trips() {
        for r in Reg::all() {
            let again = Reg::new(r.index()).unwrap();
            assert_eq!(r, again);
        }
        assert_eq!(Reg::all().count(), 64);
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(Reg::new(31).unwrap().class(), RegClass::Int);
        assert_eq!(Reg::new(32).unwrap().class(), RegClass::Float);
        assert_eq!(Reg::new(63).unwrap().class(), RegClass::Float);
        assert!(Reg::new(64).is_err());
        assert!(Reg::int(32).is_err());
        assert!(Reg::float(32).is_err());
    }

    #[test]
    fn display_and_parse_round_trip() {
        for r in Reg::all() {
            let text = r.to_string();
            let parsed: Reg = text.parse().unwrap();
            assert_eq!(parsed, r, "round trip through {text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "x3", "r", "r32", "f32", "r-1", "f 2", "r3x"] {
            assert!(s.parse::<Reg>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn class_index_maps_into_file() {
        assert_eq!(Reg::float(5).unwrap().class_index(), 5);
        assert_eq!(Reg::float(5).unwrap().index(), 37);
        assert_eq!(Reg::int(5).unwrap().class_index(), 5);
    }
}
