//! A binary container for BRISC programs (`.brisc` files).
//!
//! The braid toolchain is a *binary* translator; this module gives programs
//! an on-disk form so annotated binaries can be shipped between tools:
//!
//! ```text
//! offset  size  contents
//! 0       8     magic "BRISC\x01\0\0"
//! 8       4     entry point (u32 LE)
//! 12      4     instruction count N (u32 LE)
//! 16      8N    encoded instructions (u64 LE each)
//! ...     4     data segment count S (u32 LE)
//! per segment:  base (u64 LE), byte length (u64 LE), bytes
//! ...     4     label count L (u32 LE)
//! per label:    index (u32 LE), name length (u32 LE), UTF-8 bytes
//! ```
//!
//! ```
//! use braid_isa::asm::assemble;
//! use braid_isa::container;
//!
//! let program = assemble("addi r0, #7, r1\nhalt")?;
//! let bytes = container::to_bytes(&program)?;
//! let back = container::from_bytes(&bytes)?;
//! assert_eq!(back.insts, program.insts);
//! # Ok::<(), braid_isa::IsaError>(())
//! ```

use crate::{decode, encode, DataSegment, EncodedInst, IsaError, Program};

const MAGIC: &[u8; 8] = b"BRISC\x01\0\0";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IsaError> {
        if self.at + n > self.bytes.len() {
            return Err(IsaError::MalformedProgram("truncated container".into()));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, IsaError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, IsaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Serializes a program (instructions, data segments and labels) to the
/// `.brisc` container format.
///
/// # Errors
///
/// Propagates instruction-encoding failures.
pub fn to_bytes(program: &Program) -> Result<Vec<u8>, IsaError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, program.entry);
    put_u32(&mut out, program.insts.len() as u32);
    for inst in &program.insts {
        put_u64(&mut out, encode(inst)?.0);
    }
    put_u32(&mut out, program.data.len() as u32);
    for seg in &program.data {
        put_u64(&mut out, seg.base);
        put_u64(&mut out, seg.bytes.len() as u64);
        out.extend_from_slice(&seg.bytes);
    }
    put_u32(&mut out, program.labels.len() as u32);
    for (name, &idx) in &program.labels {
        put_u32(&mut out, idx);
        put_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
    }
    Ok(out)
}

/// Deserializes a `.brisc` container back into a validated [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::MalformedProgram`] for truncated or mis-tagged
/// containers, and decoding/validation errors for corrupt contents.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, IsaError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(8)? != MAGIC {
        return Err(IsaError::MalformedProgram("bad container magic".into()));
    }
    let entry = r.u32()?;
    let n = r.u32()? as usize;
    if n > 1 << 24 {
        return Err(IsaError::MalformedProgram("implausible instruction count".into()));
    }
    let mut insts = Vec::with_capacity(n);
    for _ in 0..n {
        insts.push(decode(EncodedInst(r.u64()?))?);
    }
    let segs = r.u32()? as usize;
    let mut data = Vec::with_capacity(segs);
    for _ in 0..segs {
        let base = r.u64()?;
        let len = r.u64()? as usize;
        data.push(DataSegment { base, bytes: r.take(len)?.to_vec() });
    }
    let labels_n = r.u32()? as usize;
    let mut labels = std::collections::BTreeMap::new();
    for _ in 0..labels_n {
        let idx = r.u32()?;
        let len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| IsaError::MalformedProgram("label is not UTF-8".into()))?;
        labels.insert(name.to_string(), idx);
    }
    let program = Program { name: "binary".into(), insts, entry, data, labels };
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        let mut p = assemble(
            r#"
            start:
                addi r0, #3, r1
            loop:
                ldq  r2, 0(r4) @stack:2
                subi r1, #1, r1
                bne  r1, loop
                halt
                .entry start
                .data 0x1000 10 20 30
            "#,
        )
        .unwrap();
        p.name = "sample".into();
        p
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let p = sample();
        let bytes = to_bytes(&p).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.insts, p.insts);
        assert_eq!(back.entry, p.entry);
        assert_eq!(back.data, p.data);
        assert_eq!(back.labels, p.labels);
    }

    #[test]
    fn braid_annotations_survive_the_container() {
        // The container must carry the S/T/I/E bits: round-trip an
        // annotated instruction explicitly.
        let mut p = sample();
        p.insts[1].braid.t[0] = true;
        p.insts[1].braid.internal = true;
        p.insts[1].braid.external = false;
        let back = from_bytes(&to_bytes(&p).unwrap()).unwrap();
        assert_eq!(back.insts[1].braid, p.insts[1].braid);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample()).unwrap();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(IsaError::MalformedProgram(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = to_bytes(&sample()).unwrap();
        for cut in [3, 9, 17, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "container truncated at {cut} must not parse"
            );
        }
    }

    #[test]
    fn corrupt_instruction_rejected() {
        let mut bytes = to_bytes(&sample()).unwrap();
        // Stomp the first instruction's opcode byte with junk.
        bytes[16] = 0x7f;
        assert!(from_bytes(&bytes).is_err());
    }
}
