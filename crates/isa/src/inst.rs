//! Instructions, braid annotation bits, and memory alias tags.

use std::fmt;

use crate::opcode::ImmKind;
use crate::{IsaError, Opcode, Reg};

/// The braid annotation bits the paper adds to every instruction (Figure 3).
///
/// * `start` (`S`) — this instruction begins a new braid.
/// * `t[i]` (`T`) — source operand `i` reads the **internal** register file
///   of the braid execution unit instead of the external register file.
/// * `internal` (`I`) — the result is written to the internal register file.
/// * `external` (`E`) — the result is written to the external register file.
///
/// A destination may set both `I` and `E` when a value is consumed both
/// inside and outside its braid. Instructions without a destination leave
/// both clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BraidBits {
    /// `S`: first instruction of a braid.
    pub start: bool,
    /// `T` per source operand: read from the internal register file.
    pub t: [bool; 2],
    /// `I`: write the result to the internal register file.
    pub internal: bool,
    /// `E`: write the result to the external register file.
    pub external: bool,
}

impl BraidBits {
    /// Annotation state of a conventional (non-braid-aware) binary: every
    /// instruction starts its own "braid" and all communication is external.
    pub fn unannotated(has_dest: bool) -> BraidBits {
        BraidBits { start: true, t: [false, false], internal: false, external: has_dest }
    }
}

/// Compile-time memory-disambiguation information attached to loads and
/// stores.
///
/// The paper notes that "the majority of memory instructions access the
/// stack so the compiler can disambiguate them". In this reproduction the
/// profiling information a binary translator would recover is carried on the
/// instruction: two accesses may be reordered when [`AliasClass::may_alias`]
/// is `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AliasClass {
    /// Nothing is known; conservatively aliases everything.
    #[default]
    Unknown,
    /// A stack slot, identified by slot number; distinct slots never alias.
    Stack(u16),
    /// A global, identified by symbol id; distinct globals never alias.
    Global(u16),
    /// A heap region; distinct regions never alias, same region may.
    Heap(u16),
}

impl AliasClass {
    /// Whether two accesses may refer to the same memory.
    pub fn may_alias(self, other: AliasClass) -> bool {
        use AliasClass::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => true,
            (Stack(a), Stack(b)) => a == b,
            (Global(a), Global(b)) => a == b,
            (Heap(a), Heap(b)) => a == b,
            // Distinct storage classes are disjoint.
            _ => false,
        }
    }

    /// Packs the class into 16 bits for the binary encoding.
    pub(crate) fn pack(self) -> u16 {
        match self {
            AliasClass::Unknown => 0,
            AliasClass::Stack(n) => (1 << 14) | (n & 0x3fff),
            AliasClass::Global(n) => (2 << 14) | (n & 0x3fff),
            AliasClass::Heap(n) => (3 << 14) | (n & 0x3fff),
        }
    }

    /// Unpacks a class packed with [`AliasClass::pack`].
    pub(crate) fn unpack(bits: u16) -> AliasClass {
        let n = bits & 0x3fff;
        match bits >> 14 {
            1 => AliasClass::Stack(n),
            2 => AliasClass::Global(n),
            3 => AliasClass::Heap(n),
            _ => AliasClass::Unknown,
        }
    }
}

/// One BRISC instruction.
///
/// Use the shape-specific constructors ([`Inst::alu`], [`Inst::alui`],
/// [`Inst::load`], [`Inst::store`], [`Inst::branch`], ...) rather than
/// building the struct by hand; they enforce the opcode's operand shape.
///
/// ```
/// use braid_isa::{Inst, Opcode, Reg};
///
/// let add = Inst::alu(Opcode::Add, Reg::int(1)?, Reg::int(2)?, Reg::int(3)?)?;
/// assert_eq!(add.to_string(), "addq r1, r2, r3");
/// # Ok::<(), braid_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub opcode: Opcode,
    /// Destination register, when the opcode writes one.
    pub dest: Option<Reg>,
    /// Explicit source registers, `srcs[i]` valid for `i < opcode.num_srcs()`.
    pub srcs: [Option<Reg>; 2],
    /// Immediate: literal value, memory displacement, or resolved absolute
    /// instruction index for control transfers (see [`Opcode::imm_kind`]).
    pub imm: i32,
    /// Memory-disambiguation tag; meaningful only for loads and stores.
    pub alias: AliasClass,
    /// Braid annotation bits.
    pub braid: BraidBits,
}

impl Inst {
    fn raw(opcode: Opcode, dest: Option<Reg>, srcs: [Option<Reg>; 2], imm: i32) -> Inst {
        Inst {
            opcode,
            dest,
            srcs,
            imm,
            alias: AliasClass::default(),
            braid: BraidBits::unannotated(opcode.has_dest()),
        }
    }

    /// Builds a register-register operation `dest = src1 op src2`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if the opcode is not a two-source
    /// register operation or an operand has the wrong class.
    pub fn alu(opcode: Opcode, src1: Reg, src2: Reg, dest: Reg) -> Result<Inst, IsaError> {
        let inst = Inst::raw(opcode, Some(dest), [Some(src1), Some(src2)], 0);
        inst.validated()
    }

    /// Builds a register-immediate operation `dest = src1 op imm`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] for opcodes that do not take a
    /// value immediate, or [`IsaError::ImmOutOfRange`].
    pub fn alui(opcode: Opcode, src1: Reg, imm: i32, dest: Reg) -> Result<Inst, IsaError> {
        if opcode.imm_kind() != ImmKind::Value && opcode != Opcode::Lda {
            return Err(IsaError::MalformedInst(format!("{opcode} takes no value immediate")));
        }
        let inst = Inst::raw(opcode, Some(dest), [Some(src1), None], imm);
        inst.validated()
    }

    /// Builds a load `dest = [base + offset]`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if the opcode is not a load.
    pub fn load(
        opcode: Opcode,
        base: Reg,
        offset: i32,
        dest: Reg,
        alias: AliasClass,
    ) -> Result<Inst, IsaError> {
        if !opcode.is_load() {
            return Err(IsaError::MalformedInst(format!("{opcode} is not a load")));
        }
        let mut inst = Inst::raw(opcode, Some(dest), [Some(base), None], offset);
        inst.alias = alias;
        inst.validated()
    }

    /// Builds a store `[base + offset] = value`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if the opcode is not a store.
    pub fn store(
        opcode: Opcode,
        value: Reg,
        base: Reg,
        offset: i32,
        alias: AliasClass,
    ) -> Result<Inst, IsaError> {
        if !opcode.is_store() {
            return Err(IsaError::MalformedInst(format!("{opcode} is not a store")));
        }
        let mut inst = Inst::raw(opcode, None, [Some(value), Some(base)], offset);
        inst.alias = alias;
        inst.validated()
    }

    /// Builds a conditional branch on `src` to absolute instruction index
    /// `target`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if the opcode is not a
    /// conditional branch.
    pub fn branch(opcode: Opcode, src: Reg, target: u32) -> Result<Inst, IsaError> {
        if !opcode.is_cond_branch() {
            return Err(IsaError::MalformedInst(format!("{opcode} is not a conditional branch")));
        }
        let inst = Inst::raw(opcode, None, [Some(src), None], target as i32);
        inst.validated()
    }

    /// Builds an unconditional branch to absolute instruction index `target`.
    pub fn br(target: u32) -> Inst {
        Inst::raw(Opcode::Br, None, [None, None], target as i32)
    }

    /// Builds a call to `target` writing the return address to `link`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if `link` is not an integer
    /// register.
    pub fn call(target: u32, link: Reg) -> Result<Inst, IsaError> {
        let inst = Inst::raw(Opcode::Call, Some(link), [None, None], target as i32);
        inst.validated()
    }

    /// Builds a return through `link`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] if `link` is not an integer
    /// register.
    pub fn ret(link: Reg) -> Result<Inst, IsaError> {
        let inst = Inst::raw(Opcode::Ret, None, [Some(link), None], 0);
        inst.validated()
    }

    /// Builds a no-operation.
    pub fn nop() -> Inst {
        Inst::raw(Opcode::Nop, None, [None, None], 0)
    }

    /// Builds the halt instruction terminating simulation.
    pub fn halt() -> Inst {
        Inst::raw(Opcode::Halt, None, [None, None], 0)
    }

    /// Validates operand shape and register classes against the opcode.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedInst`] describing the first violation.
    pub fn validate(&self) -> Result<(), IsaError> {
        let op = self.opcode;
        let malformed = |msg: String| Err(IsaError::MalformedInst(msg));
        match (op.has_dest(), self.dest) {
            (true, None) => return malformed(format!("{op} requires a destination")),
            (false, Some(_)) => return malformed(format!("{op} takes no destination")),
            (true, Some(d)) => {
                let want = op.dest_class().expect("has_dest implies dest_class");
                if d.class() != want {
                    return malformed(format!("{op} destination {d} must be {want}"));
                }
            }
            (false, None) => {}
        }
        for i in 0..2 {
            match (i < op.num_srcs(), self.srcs[i]) {
                (true, None) => return malformed(format!("{op} requires source {i}")),
                (false, Some(_)) => return malformed(format!("{op} takes no source {i}")),
                (true, Some(s)) => {
                    let want = op.src_class(i);
                    if s.class() != want {
                        return malformed(format!("{op} source {i} {s} must be {want}"));
                    }
                }
                (false, None) => {}
            }
        }
        if op.imm_kind() == ImmKind::Target && self.imm < 0 {
            return malformed(format!("{op} target must be non-negative"));
        }
        // Braid-bit shape rules. These are structural (annotation vs operand
        // shape); dataflow consistency of the bits is `braid-check`'s job.
        for (i, &t) in self.braid.t.iter().enumerate() {
            if !t {
                continue;
            }
            if i >= op.num_srcs() {
                return malformed(format!("{op} has a T bit on non-register operand {i}"));
            }
            if self.srcs[i].is_some_and(|s| s.is_zero()) {
                return malformed(format!(
                    "{op} has a T bit on the zero register (source {i})"
                ));
            }
        }
        if (self.braid.internal || self.braid.external) && !op.has_dest() {
            return malformed(format!("{op} writes no destination but carries I/E bits"));
        }
        if let Some(d) = self.dest {
            if !d.is_zero() && !self.braid.internal && !self.braid.external {
                return malformed(format!(
                    "{op} destination {d} is written to neither register file"
                ));
            }
        }
        Ok(())
    }

    fn validated(self) -> Result<Inst, IsaError> {
        self.validate()?;
        Ok(self)
    }

    /// The control-transfer target as an absolute instruction index, if this
    /// is a direct branch or call.
    pub fn target(&self) -> Option<u32> {
        if self.opcode.imm_kind() == ImmKind::Target {
            Some(self.imm as u32)
        } else {
            None
        }
    }

    /// Retargets a direct control transfer.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a direct branch or call.
    pub fn set_target(&mut self, target: u32) {
        assert_eq!(self.opcode.imm_kind(), ImmKind::Target, "{} has no target", self.opcode);
        self.imm = target as i32;
    }

    /// Iterates over the explicit source registers, skipping the hard-wired
    /// zero register (which needs no dataflow edge).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Iterates over every register the instruction *reads*: explicit
    /// sources plus, for conditional moves, the old destination value.
    pub fn read_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        let implicit = if self.opcode.reads_dest() { self.dest } else { None };
        self.src_regs().chain(implicit)
    }

    /// The register the instruction writes, if any. Writes to the zero
    /// register are architecturally discarded but still reported here.
    pub fn written_reg(&self) -> Option<Reg> {
        self.dest
    }

    /// Whether this instruction ends a basic block (any control transfer or
    /// halt).
    pub fn ends_block(&self) -> bool {
        self.opcode.is_branch() || self.opcode == Opcode::Halt
    }
}

fn write_alias(f: &mut fmt::Formatter<'_>, alias: AliasClass) -> fmt::Result {
    match alias {
        AliasClass::Unknown => Ok(()),
        AliasClass::Stack(n) => write!(f, " @stack:{n}"),
        AliasClass::Global(n) => write!(f, " @global:{n}"),
        AliasClass::Heap(n) => write!(f, " @heap:{n}"),
    }
}

/// A register operand for display: missing operands render as `r?` so
/// `Display` stays total on malformed instructions (the checker prints
/// them in diagnostics).
fn shown(r: Option<Reg>) -> String {
    r.map_or_else(|| "r?".to_string(), |r| r.to_string())
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = self.opcode;
        write!(f, "{}", op.mnemonic())?;
        match op.imm_kind() {
            ImmKind::MemOffset if op.is_load() => {
                // ldl rd, off(rb) [@alias]
                write!(f, " {}, {}({})", shown(self.dest), self.imm, shown(self.srcs[0]))?;
                write_alias(f, self.alias)?;
            }
            ImmKind::MemOffset if op.is_store() => {
                // stl rs, off(rb) [@alias]
                write!(f, " {}, {}({})", shown(self.srcs[0]), self.imm, shown(self.srcs[1]))?;
                write_alias(f, self.alias)?;
            }
            ImmKind::MemOffset => {
                // lda rd, off(rb)
                write!(f, " {}, {}({})", shown(self.dest), self.imm, shown(self.srcs[0]))?;
            }
            ImmKind::Target => {
                if let Some(s) = self.srcs[0] {
                    write!(f, " {s},")?;
                }
                write!(f, " {}", self.imm)?;
                if op == Opcode::Call {
                    write!(f, ", {}", shown(self.dest))?;
                }
            }
            ImmKind::Value => {
                // op rs, #imm, rd   (dest last, Alpha listing style)
                write!(f, " {}, #{}, {}", shown(self.srcs[0]), self.imm, shown(self.dest))?;
            }
            ImmKind::None => {
                let mut first = true;
                for s in self.src_regs() {
                    write!(f, "{} {s}", if first { "" } else { "," })?;
                    first = false;
                }
                if let Some(d) = self.dest {
                    write!(f, "{} {d}", if first { "" } else { "," })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::int(n).unwrap()
    }
    fn fr(n: u8) -> Reg {
        Reg::float(n).unwrap()
    }

    #[test]
    fn alu_constructor_validates_classes() {
        assert!(Inst::alu(Opcode::Add, r(1), r(2), r(3)).is_ok());
        assert!(Inst::alu(Opcode::Add, fr(1), r(2), r(3)).is_err());
        assert!(Inst::alu(Opcode::Fadd, fr(1), fr(2), fr(3)).is_ok());
        assert!(Inst::alu(Opcode::Fadd, fr(1), fr(2), r(3)).is_err());
        // fp compare delivers an integer result.
        assert!(Inst::alu(Opcode::Fcmplt, fr(1), fr(2), r(3)).is_ok());
    }

    #[test]
    fn store_shape() {
        let st = Inst::store(Opcode::Stq, r(4), r(5), 16, AliasClass::Stack(2)).unwrap();
        assert_eq!(st.dest, None);
        assert_eq!(st.srcs[0], Some(r(4)));
        assert_eq!(st.srcs[1], Some(r(5)));
        assert!(Inst::store(Opcode::Ldq, r(4), r(5), 0, AliasClass::Unknown).is_err());
    }

    #[test]
    fn cmov_reads_its_destination() {
        let cm = Inst::alu(Opcode::Cmovne, r(1), r(2), r(3)).unwrap();
        let reads: Vec<Reg> = cm.read_regs().collect();
        assert_eq!(reads, vec![r(1), r(2), r(3)]);
        let add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap();
        assert_eq!(add.read_regs().count(), 2);
    }

    #[test]
    fn branch_targets() {
        let mut b = Inst::branch(Opcode::Bne, r(1), 7).unwrap();
        assert_eq!(b.target(), Some(7));
        b.set_target(12);
        assert_eq!(b.target(), Some(12));
        assert_eq!(Inst::nop().target(), None);
        assert!(Inst::branch(Opcode::Br, r(1), 7).is_err());
    }

    #[test]
    fn display_matches_alpha_listing_style() {
        let lda = Inst::alui(Opcode::Lda, r(4), 4, r(4)).unwrap();
        assert_eq!(lda.to_string(), "lda r4, 4(r4)");
        let ld = Inst::load(Opcode::Ldl, r(0), 0, r(3), AliasClass::Unknown).unwrap();
        assert_eq!(ld.to_string(), "ldl r3, 0(r0)");
        let st = Inst::store(Opcode::Stl, r(3), r(2), 8, AliasClass::Unknown).unwrap();
        assert_eq!(st.to_string(), "stl r3, 8(r2)");
        let addi = Inst::alui(Opcode::Addi, r(5), 1, r(5)).unwrap();
        assert_eq!(addi.to_string(), "addi r5, #1, r5");
        let bne = Inst::branch(Opcode::Bne, r(1), 3).unwrap();
        assert_eq!(bne.to_string(), "bne r1, 3");
    }

    #[test]
    fn alias_classes() {
        use AliasClass::*;
        assert!(Unknown.may_alias(Stack(1)));
        assert!(!Stack(1).may_alias(Stack(2)));
        assert!(Stack(1).may_alias(Stack(1)));
        assert!(!Stack(1).may_alias(Global(1)));
        assert!(Heap(3).may_alias(Heap(3)));
        assert!(!Heap(3).may_alias(Heap(4)));
    }

    #[test]
    fn alias_pack_round_trips() {
        let cases = [
            AliasClass::Unknown,
            AliasClass::Stack(0),
            AliasClass::Stack(0x3fff),
            AliasClass::Global(77),
            AliasClass::Heap(1),
        ];
        for a in cases {
            assert_eq!(AliasClass::unpack(a.pack()), a);
        }
    }

    #[test]
    fn unannotated_bits() {
        let b = BraidBits::unannotated(true);
        assert!(b.start && b.external && !b.internal && !b.t[0] && !b.t[1]);
        let b = BraidBits::unannotated(false);
        assert!(!b.external);
    }

    #[test]
    fn ends_block() {
        assert!(Inst::halt().ends_block());
        assert!(Inst::br(0).ends_block());
        assert!(Inst::branch(Opcode::Beq, r(1), 0).unwrap().ends_block());
        assert!(!Inst::nop().ends_block());
    }

    #[test]
    fn t_bit_requires_a_register_operand() {
        // addi has one register source; a T bit on the immediate slot is
        // meaningless and rejected.
        let mut inst = Inst::alui(Opcode::Addi, r(1), 5, r(2)).unwrap();
        inst.braid.t[0] = true;
        assert!(inst.validate().is_ok(), "T on the register source is fine");
        inst.braid.t[1] = true;
        assert!(inst.validate().is_err(), "T on the immediate slot");

        // The zero register never lives in an internal file.
        let mut inst = Inst::alu(Opcode::Add, r(0), r(2), r(3)).unwrap();
        inst.braid.t[0] = true;
        assert!(inst.validate().is_err(), "T on r0");
    }

    #[test]
    fn destination_bits_match_destination_presence() {
        let mut store = Inst::store(Opcode::Stq, r(1), r(2), 0, AliasClass::Unknown).unwrap();
        store.braid.internal = true;
        assert!(store.validate().is_err(), "I bit without a destination");
        store.braid.internal = false;
        store.braid.external = true;
        assert!(store.validate().is_err(), "E bit without a destination");

        let mut add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).unwrap();
        add.braid.external = false;
        assert!(add.validate().is_err(), "written value must land somewhere");
        add.braid.internal = true;
        assert!(add.validate().is_ok(), "internal-only write is fine");

        // A zero-register destination may carry any combination: the write
        // is discarded, so neither file is implicated.
        let mut nopish = Inst::alu(Opcode::Add, r(1), r(2), r(0)).unwrap();
        nopish.braid.external = false;
        assert!(nopish.validate().is_ok(), "r0 dest with I/E clear");
    }
}
