//! Error type for the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding, decoding, assembling or
/// validating BRISC instructions and programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index outside `0..64`.
    InvalidRegister(u8),
    /// A register name that does not parse (`"r32"`, `"x3"`, ...).
    BadRegisterName(String),
    /// An unknown assembler mnemonic.
    UnknownMnemonic(String),
    /// An opcode byte that decodes to no operation.
    BadOpcode(u8),
    /// An encoded word whose format tag is invalid.
    BadFormat(u8),
    /// An instruction whose operands violate the opcode's shape
    /// (wrong register class, missing source, unexpected destination, ...).
    MalformedInst(String),
    /// An immediate or displacement that does not fit its field.
    ImmOutOfRange(i64),
    /// A syntax error at `line` of assembler input.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A label used but never defined.
    UndefinedLabel(String),
    /// A label defined twice.
    DuplicateLabel(String),
    /// A branch or call target outside the program.
    TargetOutOfRange(u32),
    /// Program-level validation failure.
    MalformedProgram(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(n) => write!(f, "register index {n} out of range"),
            IsaError::BadRegisterName(s) => write!(f, "bad register name {s:?}"),
            IsaError::UnknownMnemonic(s) => write!(f, "unknown mnemonic {s:?}"),
            IsaError::BadOpcode(c) => write!(f, "byte {c:#x} is not an opcode"),
            IsaError::BadFormat(t) => write!(f, "invalid instruction format tag {t}"),
            IsaError::MalformedInst(msg) => write!(f, "malformed instruction: {msg}"),
            IsaError::ImmOutOfRange(v) => write!(f, "immediate {v} does not fit its field"),
            IsaError::Syntax { line, msg } => write!(f, "syntax error on line {line}: {msg}"),
            IsaError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            IsaError::TargetOutOfRange(t) => write!(f, "control target {t} outside program"),
            IsaError::MalformedProgram(msg) => write!(f, "malformed program: {msg}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_lowercase() {
        let samples = [
            IsaError::InvalidRegister(99),
            IsaError::BadRegisterName("z9".into()),
            IsaError::UnknownMnemonic("frob".into()),
            IsaError::BadOpcode(0xff),
            IsaError::BadFormat(3),
            IsaError::MalformedInst("x".into()),
            IsaError::ImmOutOfRange(1 << 40),
            IsaError::Syntax { line: 3, msg: "bad token".into() },
            IsaError::UndefinedLabel("loop".into()),
            IsaError::DuplicateLabel("loop".into()),
            IsaError::TargetOutOfRange(9),
            IsaError::MalformedProgram("empty".into()),
        ];
        for e in samples {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
