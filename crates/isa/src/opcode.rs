//! Operations and their static properties.

use std::fmt;
use std::str::FromStr;

use crate::{IsaError, RegClass};

/// The functional-unit class an operation executes on.
///
/// The braid paper's machines use *general-purpose* functional units, so this
/// class selects the execution **latency**, not a dedicated unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide and square root.
    FpDiv,
    /// Memory operation (address generation plus cache access).
    Mem,
    /// Control-transfer operation.
    Branch,
    /// No-operation.
    Nop,
}

impl FuClass {
    /// Execution latency in cycles, excluding the memory hierarchy for
    /// memory operations (which only spend address generation here).
    pub fn latency(self) -> u64 {
        match self {
            FuClass::IntAlu => 1,
            FuClass::IntMul => 3,
            FuClass::IntDiv => 20,
            FuClass::FpAdd => 2,
            FuClass::FpMul => 2,
            FuClass::FpDiv => 12,
            FuClass::Mem => 1,
            FuClass::Branch => 1,
            FuClass::Nop => 1,
        }
    }
}

/// What the immediate field of an instruction means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmKind {
    /// The instruction has no immediate.
    None,
    /// An arithmetic literal operand.
    Value,
    /// A displacement added to the base register of a memory operation.
    MemOffset,
    /// A control-transfer target, stored as an absolute instruction index
    /// resolved by the assembler.
    Target,
}

macro_rules! opcodes {
    ($( $variant:ident => $mnemonic:literal ),+ $(,)?) => {
        /// A BRISC operation.
        ///
        /// The set mirrors the Alpha subset that appears in the paper's
        /// examples (Figure 2 uses `addq`, `ldl`, `addl`, `cmpeq`, `lda`,
        /// `andnot`, `and`, `zapnot`, `cmovne`, `bne`) plus enough integer,
        /// floating-point, memory and control operations to express the
        /// SPEC-like workloads.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $($variant),+
        }

        impl Opcode {
            /// Every opcode, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),+];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic),+
                }
            }
        }

        impl FromStr for Opcode {
            type Err = IsaError;
            fn from_str(s: &str) -> Result<Opcode, IsaError> {
                match s {
                    $($mnemonic => Ok(Opcode::$variant),)+
                    _ => Err(IsaError::UnknownMnemonic(s.to_string())),
                }
            }
        }
    };
}

opcodes! {
    // Integer register-register ALU.
    Add => "addq", Sub => "subq", Mul => "mulq", Div => "divq",
    And => "and", Or => "or", Xor => "xor", Andnot => "andnot",
    Sll => "sll", Srl => "srl", Sra => "sra",
    Cmpeq => "cmpeq", Cmplt => "cmplt", Cmple => "cmple", Cmpult => "cmpult",
    // Integer register-immediate ALU.
    Addi => "addi", Subi => "subi", Muli => "muli",
    Andi => "andi", Ori => "ori", Xori => "xori",
    Slli => "slli", Srli => "srli", Srai => "srai",
    Cmpeqi => "cmpeqi", Cmplti => "cmplti", Zapnot => "zapnot",
    Lda => "lda",
    // Conditional move: dest = (src1 != 0) ? src2 : old dest.
    Cmovne => "cmovne", Cmoveq => "cmoveq",
    // Conditional move immediate: dest = (src1 != 0) ? imm : old dest.
    Cmovnei => "cmovnei",
    // Floating point.
    Fadd => "addt", Fsub => "subt", Fmul => "mult", Fdiv => "divt",
    Fsqrt => "sqrtt",
    Fcmpeq => "cmpteq", Fcmplt => "cmptlt", Fcmple => "cmptle",
    Fcmovne => "fcmovne",
    Cvtif => "cvtqt", Cvtfi => "cvttq",
    // Memory.
    Ldl => "ldl", Ldq => "ldq", Stl => "stl", Stq => "stq",
    Fldd => "ldt", Fstd => "stt",
    // Control.
    Br => "br", Beq => "beq", Bne => "bne", Blt => "blt",
    Bge => "bge", Ble => "ble", Bgt => "bgt",
    Call => "call", Ret => "ret",
    // Miscellaneous.
    Nop => "nop", Halt => "halt",
}

impl Opcode {
    /// The functional-unit (latency) class.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul | Muli => FuClass::IntMul,
            Div => FuClass::IntDiv,
            Fadd | Fsub | Fcmpeq | Fcmplt | Fcmple | Fcmovne | Cvtif | Cvtfi => FuClass::FpAdd,
            Fmul => FuClass::FpMul,
            Fdiv | Fsqrt => FuClass::FpDiv,
            Ldl | Ldq | Stl | Stq | Fldd | Fstd => FuClass::Mem,
            Br | Beq | Bne | Blt | Bge | Ble | Bgt | Call | Ret => FuClass::Branch,
            Nop | Halt => FuClass::Nop,
            _ => FuClass::IntAlu,
        }
    }

    /// Execution latency in cycles (memory operations: address generation
    /// only; the cache hierarchy adds its own latency).
    pub fn latency(self) -> u64 {
        self.fu_class().latency()
    }

    /// Number of explicit register sources (not counting the implicit old
    /// destination read by conditional moves).
    pub fn num_srcs(self) -> usize {
        use Opcode::*;
        match self {
            Nop | Halt | Br | Call => 0,
            Addi | Subi | Muli | Andi | Ori | Xori | Slli | Srli | Srai | Cmpeqi | Cmplti
            | Zapnot | Lda | Cmovnei | Fsqrt | Cvtif | Cvtfi | Ldl | Ldq | Fldd | Beq | Bne
            | Blt | Bge | Ble | Bgt | Ret => 1,
            _ => 2,
        }
    }

    /// Whether the instruction writes a register destination.
    pub fn has_dest(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Stl | Stq | Fstd | Br | Beq | Bne | Blt | Bge | Ble | Bgt | Ret | Nop | Halt
        )
    }

    /// Whether the instruction also reads its destination register
    /// (conditional moves keep the old value when the condition fails).
    pub fn reads_dest(self) -> bool {
        use Opcode::*;
        matches!(self, Cmovne | Cmoveq | Cmovnei | Fcmovne)
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_branch(self) -> bool {
        self.fu_class() == FuClass::Branch
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        use Opcode::*;
        matches!(self, Beq | Bne | Blt | Bge | Ble | Bgt)
    }

    /// Whether this is an indirect control transfer (target from a register).
    pub fn is_indirect(self) -> bool {
        matches!(self, Opcode::Ret)
    }

    /// Whether this is a memory load.
    pub fn is_load(self) -> bool {
        use Opcode::*;
        matches!(self, Ldl | Ldq | Fldd)
    }

    /// Whether this is a memory store.
    pub fn is_store(self) -> bool {
        use Opcode::*;
        matches!(self, Stl | Stq | Fstd)
    }

    /// Whether this accesses memory.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Number of bytes a memory operation accesses; `0` otherwise.
    pub fn mem_bytes(self) -> u64 {
        use Opcode::*;
        match self {
            Ldl | Stl => 4,
            Ldq | Stq | Fldd | Fstd => 8,
            _ => 0,
        }
    }

    /// How this instruction uses its immediate field.
    pub fn imm_kind(self) -> ImmKind {
        use Opcode::*;
        match self {
            Addi | Subi | Muli | Andi | Ori | Xori | Slli | Srli | Srai | Cmpeqi | Cmplti
            | Zapnot | Cmovnei => ImmKind::Value,
            Lda | Ldl | Ldq | Stl | Stq | Fldd | Fstd => ImmKind::MemOffset,
            Br | Beq | Bne | Blt | Bge | Ble | Bgt | Call => ImmKind::Target,
            _ => ImmKind::None,
        }
    }

    /// The register class of the destination, if any.
    pub fn dest_class(self) -> Option<RegClass> {
        use Opcode::*;
        if !self.has_dest() {
            return None;
        }
        match self {
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fcmovne | Cvtif | Fldd => Some(RegClass::Float),
            // Floating-point compares and float-to-int conversion deliver an
            // integer result so conditional branches can consume them.
            _ => Some(RegClass::Int),
        }
    }

    /// The register class of explicit source operand `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_srcs()`.
    pub fn src_class(self, i: usize) -> RegClass {
        use Opcode::*;
        assert!(i < self.num_srcs(), "{self:?} has no source {i}");
        match self {
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fcmpeq | Fcmplt | Fcmple | Cvtfi => {
                RegClass::Float
            }
            // fcmovne: condition is integer, value is float.
            Fcmovne => {
                if i == 0 {
                    RegClass::Int
                } else {
                    RegClass::Float
                }
            }
            // Stores: operand 0 is the stored value, operand 1 the base.
            Fstd => {
                if i == 0 {
                    RegClass::Float
                } else {
                    RegClass::Int
                }
            }
            _ => RegClass::Int,
        }
    }

    /// Opcode identifier used by the binary encoding.
    pub fn code(self) -> u8 {
        Opcode::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Looks an opcode up by its binary encoding identifier.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOpcode`] for out-of-range codes.
    pub fn from_code(code: u8) -> Result<Opcode, IsaError> {
        Opcode::ALL
            .get(code as usize)
            .copied()
            .ok_or(IsaError::BadOpcode(code))
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trips() {
        for &op in Opcode::ALL {
            let parsed: Opcode = op.mnemonic().parse().unwrap();
            assert_eq!(parsed, op);
        }
    }

    #[test]
    fn code_round_trips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()).unwrap(), op);
        }
        assert!(Opcode::from_code(200).is_err());
    }

    #[test]
    fn structural_properties_are_consistent() {
        for &op in Opcode::ALL {
            if op.reads_dest() {
                assert!(op.has_dest(), "{op} reads a dest it does not have");
            }
            if op.is_store() {
                assert!(!op.has_dest(), "stores produce no register result");
                assert_eq!(op.num_srcs(), 2);
            }
            if op.is_load() {
                assert!(op.has_dest());
                assert_eq!(op.num_srcs(), 1);
            }
            if op.is_mem() {
                assert!(op.mem_bytes() > 0);
                assert_eq!(op.imm_kind(), ImmKind::MemOffset);
            } else {
                assert_eq!(op.mem_bytes(), 0);
            }
            if op.is_cond_branch() {
                assert_eq!(op.num_srcs(), 1);
                assert!(!op.has_dest());
            }
            // src_class must be defined for every declared source.
            for i in 0..op.num_srcs() {
                let _ = op.src_class(i);
            }
        }
    }

    #[test]
    fn latencies_are_positive() {
        for &op in Opcode::ALL {
            assert!(op.latency() >= 1, "{op} must take at least one cycle");
        }
    }

    #[test]
    fn paper_figure2_opcodes_exist() {
        // The opcodes used in the paper's Figure 2 example all parse.
        for m in ["addq", "ldl", "lda", "andnot", "and", "zapnot", "cmovne", "bne", "cmpeq"] {
            assert!(m.parse::<Opcode>().is_ok(), "missing paper opcode {m}");
        }
    }

    #[test]
    fn call_writes_link_ret_reads_it() {
        assert!(Opcode::Call.has_dest());
        assert_eq!(Opcode::Call.num_srcs(), 0);
        assert!(!Opcode::Ret.has_dest());
        assert_eq!(Opcode::Ret.num_srcs(), 1);
        assert!(Opcode::Ret.is_indirect());
    }
}
