//! A small reusable dataflow-analysis framework over [`braid_compiler::cfg`]
//! blocks.
//!
//! Passes describe a lattice of per-block facts (an initial "no information"
//! value, a join, and a transfer function) and a direction; [`solve`] runs
//! the standard iterative worklist algorithm to the fixpoint and returns the
//! fact on entry and exit of every block. Both analysis passes shipped here
//! ([`Reachability`], [`ExtLiveness`]) and the report layer are built on it,
//! so new program-wide analyses only have to provide the lattice.

use braid_compiler::cfg::{BlockId, Cfg};
use braid_isa::Program;

/// Direction a dataflow pass propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (entry seeds the solve).
    Forward,
    /// Facts flow from successors to predecessors (exits seed the solve).
    Backward,
}

/// A dataflow pass: a lattice of facts plus a per-block transfer function.
///
/// `join` must be monotone-friendly (a least-upper-bound style merge) and
/// `transfer` monotone in its input for the worklist solve to terminate;
/// every finite-height lattice with those properties converges.
pub trait Pass {
    /// The per-block fact.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The "no information yet" fact interior blocks start from.
    fn init(&self) -> Self::Fact;

    /// The fact at the boundary: program entry for forward passes, block
    /// exits for backward passes. `indirect` is true for blocks that exit
    /// via `ret`, whose continuation is statically unknown — backward
    /// passes typically answer with their most conservative fact there.
    fn boundary(&self, indirect: bool) -> Self::Fact;

    /// Transforms the fact across block `b` (entry→exit for forward
    /// passes, exit→entry for backward passes).
    fn transfer(&self, program: &Program, cfg: &Cfg, b: BlockId, input: &Self::Fact)
        -> Self::Fact;

    /// Merges `other` into `acc`, returning whether `acc` changed.
    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) -> bool;
}

/// The fixpoint of a pass: the fact observed on entry and exit of each
/// block, in the *program* direction (for backward passes `entry[b]` is
/// still the fact at the block's first instruction).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at the first instruction of each block.
    pub entry: Vec<F>,
    /// Fact just after the last instruction of each block.
    pub exit: Vec<F>,
}

/// Runs `pass` to its fixpoint over `cfg` with the standard iterative
/// worklist algorithm.
pub fn solve<P: Pass>(program: &Program, cfg: &Cfg, pass: &P) -> Solution<P::Fact> {
    let n = cfg.len();
    let mut entry: Vec<P::Fact> = vec![pass.init(); n];
    let mut exit: Vec<P::Fact> = vec![pass.init(); n];
    if n == 0 {
        return Solution { entry, exit };
    }
    let preds = cfg.predecessors();
    let forward = pass.direction() == Direction::Forward;
    let entry_block = cfg.entry_block(program);
    let indirect = {
        let mut v = vec![false; n];
        for &b in &cfg.indirect_exits {
            if b < n {
                v[b] = true;
            }
        }
        v
    };

    // Seed: entry block (forward) or every exit block (backward).
    let mut on_list = vec![false; n];
    let mut worklist: std::collections::VecDeque<BlockId> = std::collections::VecDeque::new();
    if forward {
        pass.join(&mut entry[entry_block], &pass.boundary(false));
        worklist.push_back(entry_block);
        on_list[entry_block] = true;
    } else {
        for b in 0..n {
            if cfg.blocks[b].succs.is_empty() || indirect[b] {
                pass.join(&mut exit[b], &pass.boundary(indirect[b]));
            }
            worklist.push_back(b);
            on_list[b] = true;
        }
    }

    while let Some(b) = worklist.pop_front() {
        on_list[b] = false;
        if forward {
            let out = pass.transfer(program, cfg, b, &entry[b]);
            if out != exit[b] {
                exit[b] = out;
                for &s in &cfg.blocks[b].succs {
                    if pass.join(&mut entry[s], &exit[b]) && !on_list[s] {
                        worklist.push_back(s);
                        on_list[s] = true;
                    }
                }
            }
        } else {
            let inp = pass.transfer(program, cfg, b, &exit[b]);
            if inp != entry[b] {
                entry[b] = inp;
                for &p in &preds[b] {
                    if pass.join(&mut exit[p], &entry[b]) && !on_list[p] {
                        worklist.push_back(p);
                        on_list[p] = true;
                    }
                }
            }
        }
    }
    Solution { entry, exit }
}

/// Forward reachability from the program entry: can block `b` execute at
/// all? Used to keep unreachable code out of the structural reports.
pub struct Reachability;

impl Pass for Reachability {
    type Fact = bool;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self) -> bool {
        false
    }

    fn boundary(&self, _indirect: bool) -> bool {
        true
    }

    fn transfer(&self, _program: &Program, _cfg: &Cfg, _b: BlockId, input: &bool) -> bool {
        *input
    }

    fn join(&self, acc: &mut bool, other: &bool) -> bool {
        let changed = !*acc && *other;
        *acc |= *other;
        changed
    }
}

/// The reachable-block set of `cfg`. When the program contains an indirect
/// exit (`ret`), its continuation is unknown and every block is
/// conservatively reachable.
pub fn reachable_blocks(program: &Program, cfg: &Cfg) -> Vec<bool> {
    if !cfg.indirect_exits.is_empty() {
        return vec![true; cfg.len()];
    }
    solve(program, cfg, &Reachability).entry
}

/// Backward liveness of *externally visible* register values: a register is
/// ext-live where some later read may consult the external register file
/// for it (a read whose `T` bit is clear). Unlike plain liveness, an
/// internal-only (`I` without `E`) def does **not** kill the fact — it
/// never updates the external file, so the older external copy stays
/// observable. The communication pass uses this to find `E` writes whose
/// value no one ever reads externally.
pub struct ExtLiveness;

/// A 64-register bitmask fact (bit = [`braid_isa::Reg::index`]).
pub type RegMask = u64;

impl Pass for ExtLiveness {
    type Fact = RegMask;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self) -> RegMask {
        0
    }

    fn boundary(&self, indirect: bool) -> RegMask {
        // `ret` continuations are unknown: everything may be read.
        if indirect {
            !0
        } else {
            0
        }
    }

    fn transfer(&self, program: &Program, cfg: &Cfg, b: BlockId, live_out: &RegMask) -> RegMask {
        let mut live = *live_out;
        let Some(block) = cfg.blocks.get(b) else { return live };
        for i in block.range().rev() {
            let Some(inst) = program.insts.get(i) else { continue };
            // An external write satisfies later external reads.
            if inst.braid.external {
                if let Some(d) = inst.written_reg().filter(|r| !r.is_zero()) {
                    live &= !(1u64 << d.index());
                }
            }
            for (slot, r) in inst.src_regs().enumerate() {
                if r.is_zero() {
                    continue;
                }
                let internal = slot < 2 && inst.braid.t[slot];
                if !internal {
                    live |= 1u64 << r.index();
                }
            }
            // A conditional move's implicit old-destination read consults
            // whichever file holds the value; conservatively keep the
            // external copy live.
            if inst.opcode.reads_dest() {
                if let Some(d) = inst.dest.filter(|r| !r.is_zero()) {
                    live |= 1u64 << d.index();
                }
            }
        }
        live
    }

    fn join(&self, acc: &mut RegMask, other: &RegMask) -> bool {
        let before = *acc;
        *acc |= *other;
        *acc != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn reachability_skips_dead_blocks() {
        // Block after an unconditional branch-over is unreachable.
        let p = assemble("br skip\naddq r1, r2, r3\nskip: halt").unwrap();
        let cfg = Cfg::build(&p);
        let reach = reachable_blocks(&p, &cfg);
        assert_eq!(reach.len(), 3);
        let dead = cfg.block_of[1];
        assert!(!reach[dead], "block holding inst 1 must be unreachable");
        assert!(reach[cfg.block_of[0]] && reach[cfg.block_of[2]]);
    }

    #[test]
    fn reachability_is_total_with_indirect_exits() {
        let p = assemble("ret r31\naddq r1, r2, r3\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        assert!(reachable_blocks(&p, &cfg).iter().all(|&r| r));
    }

    #[test]
    fn ext_liveness_sees_through_internal_defs() {
        // r3 is written internally mid-block; the later external read of
        // r3 still observes the *older* external value, so r3 must be
        // ext-live on entry.
        let mut p = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &ExtLiveness);
        let b0 = cfg.block_of[0];
        let r3 = braid_isa::Reg::int(3).unwrap();
        assert!(sol.entry[b0] & (1 << r3.index()) != 0, "r3 must stay ext-live");

        // With an external def, the block kills r3's incoming liveness.
        let p2 = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        let cfg2 = Cfg::build(&p2);
        let sol2 = solve(&p2, &cfg2, &ExtLiveness);
        assert!(sol2.entry[cfg2.block_of[0]] & (1 << r3.index()) == 0);
    }

    #[test]
    fn backward_liveness_crosses_loop_edges() {
        let p = assemble(
            "addi r0, #4, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &ExtLiveness);
        let r1 = braid_isa::Reg::int(1).unwrap();
        let loop_b = cfg.block_of[1];
        // r1 is live around the back edge.
        assert!(sol.exit[loop_b] & (1 << r1.index()) != 0);
    }
}
