//! The sound cycle lower bound: `predicted ≤ simulated`, always.
//!
//! The bound is the maximum of independent resource and dependence limits,
//! each provable against the shared timing engine:
//!
//! * **Retire width** — every core retires at most `width` instructions per
//!   cycle and none on cycle zero, so `ceil(n / width)` cycles are needed
//!   to retire `n` instructions.
//! * **Issue slots** — a core cannot begin executing more than its
//!   functional-unit count per cycle (`beus * fus_per_beu` on the braid
//!   core), so `ceil(n / slots)` is a floor as well.
//! * **LSQ occupancy** — every memory instruction holds a load/store-queue
//!   entry over at least one full cycle and the queue never exceeds its
//!   capacity, so `ceil(n_mem / lsq_entries)` cycles are needed.
//! * **Dependence chains** — the engine never lets a consumer issue before
//!   `producer_issue + latency(producer)` for every dependence it enforces
//!   (register sources, and a conditional move's implicit old-destination
//!   read), and real completion is never earlier than that (write-port and
//!   bypass contention only push it later, loads pay at least one extra
//!   cache cycle over their unit address-generation latency). Walking the
//!   committed trace with those minimum latencies therefore yields a sound
//!   chain bound. Stores contribute only their address dependence: the
//!   engine explicitly skips the value dependence at issue, and nothing
//!   chains through a store's (nonexistent) destination.
//!
//! Constraints the engines *do* enforce but the model ignores — branch
//!   mispredictions, memory ordering, finite windows, port conflicts — only
//!   ever delay the simulated machine, so ignoring them preserves
//!   `bound ≤ simulated` (it just loosens the bound).

use braid_core::{CoreConfig, Trace};
use braid_isa::Program;

/// A per-core sound cycle lower bound, with each contributing limit kept
/// separate so reports can attribute *why* the program cannot go faster.
#[derive(Debug, Clone)]
pub struct CycleBound {
    /// Core the bound was computed for (`inorder`/`dep`/`ooo`/`braid`).
    pub core: String,
    /// Committed instructions in the analyzed trace.
    pub insts: u64,
    /// Committed memory instructions (loads + stores).
    pub mem_insts: u64,
    /// `ceil(insts / width)`: the retire-bandwidth floor.
    pub width_bound: u64,
    /// `ceil(insts / issue slots)`: the execution-bandwidth floor.
    pub issue_bound: u64,
    /// `ceil(mem_insts / lsq_entries)`: the memory-queue occupancy floor.
    pub lsq_bound: u64,
    /// The longest engine-enforced dependence chain through the trace,
    /// weighted by minimum execution latencies.
    pub dep_bound: u64,
}

impl CycleBound {
    /// The bound itself: the largest of the component floors (never zero —
    /// the engines report at least one cycle).
    pub fn cycles(&self) -> u64 {
        self.width_bound.max(self.issue_bound).max(self.lsq_bound).max(self.dep_bound).max(1)
    }

    /// Which component limits the program on this core.
    pub fn limiter(&self) -> &'static str {
        let c = self.cycles();
        // Dependence dominance is the interesting diagnosis; report it
        // whenever it ties a resource floor.
        if self.dep_bound == c {
            "dependence"
        } else if self.width_bound == c {
            "width"
        } else if self.issue_bound == c {
            "issue"
        } else {
            "lsq"
        }
    }
}

fn ceil_div(n: u64, d: u64) -> u64 {
    if d == 0 {
        0
    } else {
        n.div_ceil(d)
    }
}

/// Computes the sound cycle lower bound for running `program`'s committed
/// `trace` on `core`. The trace must come from the same program the core
/// would execute (for the braid core, the *translated* program).
pub fn cycle_bound(program: &Program, core: &CoreConfig, trace: &Trace) -> CycleBound {
    let n = trace.entries.len() as u64;
    let mut mem = 0u64;
    // reg_time[r] = earliest cycle the engine could make r's current value
    // visible to consumers.
    let mut reg_time = [0u64; 64];
    let mut dep_bound = 0u64;
    for e in &trace.entries {
        let Some(inst) = program.insts.get(e.idx as usize) else { continue };
        let op = inst.opcode;
        if op.is_load() || op.is_store() {
            mem += 1;
        }
        let mut ready = 0u64;
        for (slot, r) in inst.src_regs().enumerate() {
            // The engine never waits on a store's value operand at issue
            // (it is only needed at retirement, by which time it is ready).
            if op.is_store() && slot == 0 {
                continue;
            }
            if !r.is_zero() {
                ready = ready.max(reg_time[r.index() as usize]);
            }
        }
        if op.reads_dest() {
            if let Some(d) = inst.dest.filter(|r| !r.is_zero()) {
                ready = ready.max(reg_time[d.index() as usize]);
            }
        }
        let avail = ready + core.latency_of(op);
        dep_bound = dep_bound.max(avail);
        if let Some(d) = inst.written_reg().filter(|r| !r.is_zero()) {
            reg_time[d.index() as usize] = avail;
        }
    }
    CycleBound {
        core: core.name().to_string(),
        insts: n,
        mem_insts: mem,
        width_bound: ceil_div(n, core.width() as u64),
        issue_bound: ceil_div(n, core.issue_slots() as u64),
        lsq_bound: ceil_div(mem, core.lsq_entries() as u64),
        dep_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_core::{
        run_tier, trace_program, BraidConfig, DepConfig, InOrderConfig, OooConfig, SamplingConfig,
        Tier, TierReport,
    };
    use braid_isa::asm::assemble;

    fn paper_cores() -> Vec<CoreConfig> {
        vec![
            CoreConfig::InOrder(InOrderConfig::paper_8wide()),
            CoreConfig::Dep(DepConfig::paper_8wide()),
            CoreConfig::Ooo(OooConfig::paper_8wide()),
            CoreConfig::Braid(BraidConfig::paper_default()),
        ]
    }

    #[test]
    fn serial_divide_chain_is_dependence_bound() {
        // 4 dependent divides: dep bound ≥ 4 * 20 even at width 8.
        let p = assemble(
            "divq r1, r2, r3\ndivq r3, r2, r3\ndivq r3, r2, r3\ndivq r3, r2, r3\nhalt",
        )
        .unwrap();
        let trace = trace_program(&p, 1000).unwrap();
        let core = CoreConfig::Ooo(OooConfig::paper_8wide());
        let b = cycle_bound(&p, &core, &trace);
        assert_eq!(b.dep_bound, 80);
        assert_eq!(b.limiter(), "dependence");
        assert!(b.cycles() >= 80);
    }

    #[test]
    fn wide_independent_block_is_width_bound() {
        let mut src = String::new();
        for i in 0..64 {
            src.push_str(&format!("addi r0, #{i}, r{}\n", 1 + (i % 8)));
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let trace = trace_program(&p, 1000).unwrap();
        let core = CoreConfig::Ooo(OooConfig::paper_8wide());
        let b = cycle_bound(&p, &core, &trace);
        assert_eq!(b.width_bound, 65u64.div_ceil(8));
        assert!(b.cycles() >= b.width_bound);
    }

    #[test]
    fn bound_is_sound_on_a_hand_kernel_for_all_cores() {
        let p = assemble(
            r#"
                addi r0, #200, r1
            loop:
                mulq r1, r1, r2
                addq r2, r1, r3
                stq  r3, 0(r9) @stack:1
                subi r1, #1, r1
                bne  r1, loop
                halt
            "#,
        )
        .unwrap();
        for core in paper_cores() {
            let rep = run_tier(&p, &core, Tier::Full, 100_000, &SamplingConfig::default())
                .unwrap();
            let TierReport::Full(sim) = rep else { panic!("full tier expected") };
            // Bound what the core actually executed.
            let executed = if core.is_braid() {
                braid_compiler::translate(&p, &braid_compiler::TranslatorConfig::default())
                    .unwrap()
                    .program
            } else {
                p.clone()
            };
            let trace = trace_program(&executed, 100_000).unwrap();
            let b = cycle_bound(&executed, &core, &trace);
            assert!(
                b.cycles() <= sim.cycles,
                "{}: bound {} > simulated {}",
                core.name(),
                b.cycles(),
                sim.cycles
            );
            // And it is not vacuous: within 100x of reality on this loop.
            assert!(b.cycles() * 100 >= sim.cycles, "{}: bound too loose", core.name());
        }
    }
}
