//! The `braidc -O` partition search: braid partitioning as an optimization
//! problem.
//!
//! The canonical translator emits one partition (maximal dataflow
//! components, split only when the internal working set overflows). This
//! module enumerates a family of alternative cuts — tighter working-set
//! splits and chain-length-limited braids — prunes them with a static
//! communication score, validates every survivor with `braid_check`, and
//! confirms the finalists by actually simulating them on the braid core.
//! The canonical partition always reaches simulation, so the winner's
//! cycle count is never worse than the canonical translator's.
//!
//! The **sound bound** ([`crate::bound`]) is partition-invariant: every
//! candidate is a legal block-local reordering of the same dataflow, so
//! its dependence chains and instruction counts are identical. What a
//! partition changes is *communication* — which values ride the internal
//! file versus the external ports. The static score is therefore the sound
//! bound plus an execution-weighted serialization estimate (documented as
//! a heuristic: the bound stays sound, the score is just a ranking).

use braid_check::CheckConfig;
use braid_compiler::{translate, Translation, TranslatorConfig};
use braid_core::{run_annotated, trace_program, BraidConfig, CoreConfig, RunError};
use braid_isa::Program;

use crate::framework::{self, ExtLiveness};
use crate::passes;

/// Knobs of [`search`].
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Functional-execution budget for tracing and simulation.
    pub fuel: u64,
    /// Hardware internal register file capacity (candidates may *translate*
    /// with a tighter split threshold, but all are checked against this).
    pub hw_internal_regs: u32,
    /// How many top-scored candidates to confirm by simulation (the
    /// canonical partition is always confirmed in addition).
    pub simulate_top: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig { fuel: 10_000_000, hw_internal_regs: 8, simulate_top: 3 }
    }
}

/// One candidate partition.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Short stable name (`canonical`, `wset4`, `len8`, ...).
    pub name: String,
    /// The translator configuration that produced it.
    pub tconfig: TranslatorConfig,
    /// The translation.
    pub translation: Translation,
    /// Execution-weighted static score (lower is better; the sound bound
    /// plus the communication-serialization estimate).
    pub static_score: u64,
    /// Whether the candidate passed `braid_check` against the hardware
    /// capacity (candidates that do not are never simulated).
    pub check_clean: bool,
    /// Simulated cycles on the braid core, for confirmed candidates.
    pub simulated_cycles: Option<u64>,
}

/// The outcome of a partition search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every enumerated candidate, sorted by static score (ascending).
    pub candidates: Vec<Candidate>,
    /// Index of the winning candidate in `candidates` (always simulated;
    /// minimal simulated cycles, ties broken toward the canonical).
    pub winner: usize,
    /// Simulated cycles of the canonical partition.
    pub canonical_cycles: u64,
    /// The partition-invariant sound cycle lower bound on the braid core.
    pub bound_cycles: u64,
}

impl SearchOutcome {
    /// The winning candidate.
    pub fn winner(&self) -> &Candidate {
        &self.candidates[self.winner]
    }

    /// Cycles recovered by the winner relative to the canonical partition.
    pub fn cycles_recovered(&self) -> u64 {
        self.canonical_cycles
            .saturating_sub(self.winner().simulated_cycles.unwrap_or(self.canonical_cycles))
    }
}

/// The candidate family: the canonical cut plus tighter working-set splits
/// and chain-length-limited braids.
pub fn candidate_grid(hw_internal_regs: u32) -> Vec<(String, TranslatorConfig)> {
    let base = TranslatorConfig {
        max_internal_regs: hw_internal_regs,
        max_braid_len: 0,
        self_check: false,
    };
    let mut grid = vec![("canonical".to_string(), base)];
    for wset in [hw_internal_regs / 2, 3 * hw_internal_regs / 4] {
        if wset > 0 && wset < hw_internal_regs {
            grid.push((format!("wset{wset}"), TranslatorConfig { max_internal_regs: wset, ..base }));
        }
    }
    for len in [4u32, 8, 16] {
        grid.push((format!("len{len}"), TranslatorConfig { max_braid_len: len, ..base }));
    }
    grid.push((
        format!("wset{}-len8", 3 * hw_internal_regs / 4),
        TranslatorConfig {
            max_internal_regs: (3 * hw_internal_regs / 4).max(1),
            max_braid_len: 8,
            ..base
        },
    ));
    grid
}

/// Static communication-serialization estimate for one candidate, weighted
/// by per-block execution counts from the committed trace: for each block
/// visit, cycles the external read ports need beyond the width-bound
/// minimum, plus a small braid-dispatch term. A ranking heuristic, not a
/// bound.
fn comm_penalty(program: &Program, braid: &BraidConfig, block_visits: &[u64]) -> u64 {
    let cfg = braid_compiler::cfg::Cfg::build(program);
    let blocks = braid_check::Blocks::build(program);
    let live = framework::solve(program, &cfg, &ExtLiveness);
    let comm = passes::communication(program, &cfg, &blocks, &live.exit);
    let width = braid.common.width.max(1) as u64;
    let rd = braid.ext_read_ports.max(1) as u64;
    let wr = braid.ext_write_ports.max(1) as u64;
    let mut penalty = 0u64;
    for c in &comm {
        let visits = block_visits.get(c.block).copied().unwrap_or(0);
        if visits == 0 {
            continue;
        }
        let len = cfg.blocks[c.block].len() as u64;
        let min_cycles = len.div_ceil(width).max(1);
        let read_cycles = (c.ext_reads as u64).div_ceil(rd);
        let write_cycles = (c.ext_writes as u64).div_ceil(wr);
        let ser = read_cycles.max(write_cycles).saturating_sub(min_cycles);
        penalty += visits * ser;
    }
    penalty
}

/// Per-block visit counts of `program`'s committed trace. Candidates are
/// block-local permutations of each other, so counts computed on one
/// partition apply to all (block boundaries are identical).
fn block_visit_counts(program: &Program, fuel: u64) -> Result<Vec<u64>, RunError> {
    let cfg = braid_compiler::cfg::Cfg::build(program);
    let trace = trace_program(program, fuel)?;
    let mut visits = vec![0u64; cfg.len()];
    let mut prev_block = usize::MAX;
    for e in &trace.entries {
        let Some(&b) = cfg.block_of.get(e.idx as usize) else { continue };
        if b != prev_block {
            if let Some(v) = visits.get_mut(b) {
                *v += 1;
            }
        }
        prev_block = b;
    }
    Ok(visits)
}

/// Runs the partition search for `program` on `braid` (see the module
/// docs for the pipeline).
///
/// # Errors
///
/// Propagates translation failure of the canonical partition, functional
/// execution failure, and simulation failure of confirmed candidates.
pub fn search(
    program: &Program,
    braid: &BraidConfig,
    config: &SearchConfig,
) -> Result<SearchOutcome, RunError> {
    let core = CoreConfig::Braid(braid.clone());
    let check_cfg = CheckConfig { max_internal_regs: config.hw_internal_regs };

    // Canonical first: its translation must succeed (that error is the
    // caller's problem) and its trace prices the candidates.
    let canonical_cfg = candidate_grid(config.hw_internal_regs)[0].1;
    let canonical = translate(program, &canonical_cfg)?;
    let visits = block_visit_counts(&canonical.program, config.fuel)?;
    let bound_cycles = {
        let trace = trace_program(&canonical.program, config.fuel)?;
        crate::bound::cycle_bound(&canonical.program, &core, &trace).cycles()
    };

    let mut candidates: Vec<Candidate> = Vec::new();
    for (name, tconfig) in candidate_grid(config.hw_internal_regs) {
        let translation = match translate(program, &tconfig) {
            Ok(t) => t,
            Err(_) => continue, // canonical already succeeded; skip odd knobs
        };
        let check_clean = !translation.check(program, &check_cfg).has_errors();
        let static_score =
            bound_cycles + comm_penalty(&translation.program, braid, &visits);
        candidates.push(Candidate {
            name,
            tconfig,
            translation,
            static_score,
            check_clean,
            simulated_cycles: None,
        });
    }
    candidates.sort_by(|a, b| {
        a.static_score.cmp(&b.static_score).then_with(|| a.name.cmp(&b.name))
    });

    // Confirm the canonical plus the top-scored check-clean survivors.
    let mut to_simulate: Vec<usize> = Vec::new();
    if let Some(canon) = candidates.iter().position(|c| c.name == "canonical") {
        to_simulate.push(canon);
    }
    for (i, c) in candidates.iter().enumerate() {
        if to_simulate.len() > config.simulate_top {
            break;
        }
        if c.check_clean && !to_simulate.contains(&i) {
            to_simulate.push(i);
        }
    }
    for &i in &to_simulate {
        let sim = run_annotated(&candidates[i].translation.program, &core, config.fuel)?;
        candidates[i].simulated_cycles = Some(sim.cycles);
    }

    let canonical_cycles = candidates
        .iter()
        .find(|c| c.name == "canonical")
        .and_then(|c| c.simulated_cycles)
        .expect("canonical is always simulated");
    // Winner: minimum simulated cycles; the canonical wins ties.
    let winner = to_simulate
        .iter()
        .copied()
        .min_by_key(|&i| {
            (candidates[i].simulated_cycles.unwrap_or(u64::MAX), candidates[i].name != "canonical")
        })
        .expect("at least the canonical is simulated");
    Ok(SearchOutcome { candidates, winner, canonical_cycles, bound_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    const KERNEL: &str = r#"
        addi r0, #100, r1
    loop:
        mulq r1, r1, r2
        addq r2, r1, r3
        addq r3, r2, r4
        stq  r4, 0(r9) @stack:1
        subi r1, #1, r1
        bne  r1, loop
        halt
    "#;

    #[test]
    fn grid_contains_canonical_and_variants() {
        let grid = candidate_grid(8);
        assert_eq!(grid[0].0, "canonical");
        assert!(grid.iter().any(|(n, _)| n == "len8"));
        assert!(grid.iter().any(|(n, _)| n == "wset4"));
        assert!(grid.len() >= 6);
    }

    #[test]
    fn search_winner_never_loses_to_canonical() {
        let p = assemble(KERNEL).unwrap();
        let cfg = SearchConfig { fuel: 100_000, ..Default::default() };
        let out = search(&p, &BraidConfig::paper_default(), &cfg).unwrap();
        let w = out.winner();
        assert!(w.check_clean);
        let wc = w.simulated_cycles.unwrap();
        assert!(wc <= out.canonical_cycles, "winner {wc} > canonical {}", out.canonical_cycles);
        // The sound bound holds for the winner too.
        assert!(out.bound_cycles <= wc, "bound {} > winner {wc}", out.bound_cycles);
    }

    #[test]
    fn chain_length_candidates_stay_check_clean() {
        let p = assemble(KERNEL).unwrap();
        for (name, tconfig) in candidate_grid(8) {
            let t = translate(&p, &tconfig).unwrap();
            let rep = t.check(&p, &CheckConfig { max_internal_regs: 8 });
            assert!(!rep.has_errors(), "{name}: {rep}");
        }
    }
}
