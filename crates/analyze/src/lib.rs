//! braid-bound: whole-program static performance analysis for annotated
//! BRISC, and the partition search behind `braidc -O`.
//!
//! The paper's central claim is that braid structure — dataflow components,
//! the 8-entry internal register file, external-communication edges —
//! determines achievable ILP. That makes performance largely *statically
//! predictable*: this crate computes, per core model, a **sound cycle lower
//! bound** (`predicted ≤ simulated`, always — see [`bound`]) plus the
//! structural profiles that explain it (critical paths, internal-register
//! pressure, external-communication cost), and reports them with stable
//! `PB1xx` codes in text and JSON.
//!
//! Layering:
//!
//! * [`framework`] — a reusable forward/backward dataflow solver over
//!   [`braid_compiler::cfg`] blocks, hosting the reachability and
//!   external-liveness passes.
//! * [`passes`] — structural passes (critical path, pressure,
//!   communication) built on the compiler's def-use chains.
//! * [`bound`] — the sound per-core cycle lower bound.
//! * [`report`] — `PB1xx` findings and renderers.
//! * [`search`] — the `braidc -O` partition search: enumerate candidate
//!   braid cuts, prune by static score, validate with `braid_check`,
//!   confirm survivors by simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod framework;
pub mod passes;
pub mod report;
pub mod search;

use braid_check::Blocks;
use braid_compiler::cfg::Cfg;
use braid_compiler::{translate, TranslatorConfig};
use braid_core::{trace_program, CoreConfig, RunError};
use braid_isa::Program;

pub use bound::{cycle_bound, CycleBound};
pub use report::{AnalysisReport, Finding, Level, PbCode};
pub use search::{search, Candidate, SearchConfig, SearchOutcome};

/// Knobs of [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeConfig {
    /// Functional-execution budget for the committed trace the bounds are
    /// computed over.
    pub fuel: u64,
    /// Internal register file capacity the pressure profile is taken
    /// against (the hardware's 8 by default).
    pub max_internal_regs: u32,
}

impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig { fuel: 10_000_000, max_internal_regs: 8 }
    }
}

/// Whether `program` already carries braid annotations (any deviation from
/// the unannotated every-instruction-is-its-own-braid state).
pub fn is_annotated(program: &Program) -> bool {
    program.insts.iter().any(|i| {
        !i.braid.start
            || i.braid.internal
            || i.braid.t[0]
            || i.braid.t[1]
            || i.braid.external != i.opcode.has_dest()
    })
}

/// Analyzes `program` for every core in `cores`: computes the sound cycle
/// lower bound per core and the structural findings of the annotated form.
///
/// The braid core executes the *translated* program, so its bound is taken
/// over the translation's own trace; every other core is bounded over the
/// original program's trace. If `program` is already annotated it is used
/// as-is for both structure and the braid core.
///
/// # Errors
///
/// Propagates functional-execution failures (e.g. out of fuel) and, when a
/// braid core is requested, translation/check failures.
pub fn analyze(
    program: &Program,
    cores: &[CoreConfig],
    config: &AnalyzeConfig,
) -> Result<AnalysisReport, RunError> {
    let mut report = AnalysisReport::new(program.name.clone());

    // The annotated form: the program itself when already annotated, else
    // the canonical translation (when it succeeds — plain programs can be
    // analyzed for non-braid cores even when translation is impossible).
    let annotated: Option<Program> = if is_annotated(program) {
        Some(program.clone())
    } else {
        translate(program, &TranslatorConfig { self_check: false, ..Default::default() })
            .ok()
            .map(|t| t.program)
    };

    // Per-core bounds: PB101 + PB106.
    let mut plain_trace = None;
    let mut annot_trace = None;
    for core in cores {
        let (exec, trace) = if core.is_braid() {
            let Some(a) = annotated.as_ref() else {
                // Surface the translation failure the braid core would hit.
                translate(program, &TranslatorConfig { self_check: false, ..Default::default() })?;
                unreachable!("translate failed above");
            };
            if annot_trace.is_none() {
                annot_trace = Some(trace_program(a, config.fuel)?);
            }
            (a, annot_trace.as_ref().expect("filled above"))
        } else {
            if plain_trace.is_none() {
                plain_trace = Some(trace_program(program, config.fuel)?);
            }
            (program, plain_trace.as_ref().expect("filled above"))
        };
        let b = cycle_bound(exec, core, trace);
        report.push(
            Finding::new(
                PbCode::Pb101CycleBound,
                format!(
                    "sound cycle lower bound {} over {} committed instructions \
                     (width {}, issue {}, lsq {}, dependence {})",
                    b.cycles(),
                    b.insts,
                    b.width_bound,
                    b.issue_bound,
                    b.lsq_bound,
                    b.dep_bound
                ),
            )
            .on_core(core.name()),
        );
        report.push(
            Finding::new(
                PbCode::Pb106Limiter,
                format!("program is {}-limited on this core", b.limiter()),
            )
            .on_core(core.name()),
        );
        report.bounds.push(b);
    }

    // Structural findings over the annotated form.
    if let Some(a) = annotated.as_ref() {
        structural_findings(a, cores, config, &mut report);
    }
    Ok(report)
}

fn structural_findings(
    annotated: &Program,
    cores: &[CoreConfig],
    config: &AnalyzeConfig,
    report: &mut AnalysisReport,
) {
    use braid_check::Span;

    let cfg = Cfg::build(annotated);
    let blocks = Blocks::build(annotated);
    let reach = framework::reachable_blocks(annotated, &cfg);

    // PB102: per-block critical paths (reachable blocks only).
    for bp in passes::critical_paths(annotated, &cfg) {
        if !reach.get(bp.block).copied().unwrap_or(true) || bp.cp_cycles == 0 {
            continue;
        }
        report.push(
            Finding::new(
                PbCode::Pb102CriticalPath,
                format!(
                    "critical path {} cycles over {} instructions (ends at inst {})",
                    bp.cp_cycles,
                    bp.end - bp.start,
                    bp.tail
                ),
            )
            .with_span(Span::range(bp.start, bp.end))
            .in_block(bp.block as u32),
        );
    }

    // PB103: braids with no internal-file headroom.
    for bp in passes::pressure_profile(annotated, &blocks, config.max_internal_regs) {
        if !reach.get(bp.extent.block).copied().unwrap_or(true) {
            continue;
        }
        if bp.peak >= bp.capacity && bp.capacity > 0 {
            report.push(
                Finding::new(
                    PbCode::Pb103PressureAtCapacity,
                    format!(
                        "braid holds {} simultaneously-live internal values — at the \
                         {}-entry internal file capacity, one more forces a split",
                        bp.peak, bp.capacity
                    ),
                )
                .with_span(Span::range(bp.extent.start, bp.extent.end))
                .in_block(bp.extent.block as u32),
            );
        }
    }

    // PB104/PB105 need the external-liveness fixpoint.
    let live = framework::solve(annotated, &cfg, &framework::ExtLiveness);
    let comm = passes::communication(annotated, &cfg, &blocks, &live.exit);
    let braid_cfg = cores.iter().find_map(|c| match c {
        CoreConfig::Braid(b) => Some(b),
        _ => None,
    });
    for c in &comm {
        if !reach.get(c.block).copied().unwrap_or(true) {
            continue;
        }
        if let Some(bc) = braid_cfg {
            // The external file can deliver `ext_read_ports` values per
            // cycle; if the block's external reads cannot fit in its
            // width-bound minimum cycles, communication serializes issue.
            let blk = &cfg.blocks[c.block];
            let min_cycles = (blk.len() as u64).div_ceil(bc.common.width.max(1) as u64);
            if (c.ext_reads as u64) > min_cycles * bc.ext_read_ports as u64 {
                report.push(
                    Finding::new(
                        PbCode::Pb104CommunicationHeavy,
                        format!(
                            "{} external reads exceed {} read ports x {} min cycles — \
                             external communication serializes braid issue",
                            c.ext_reads, bc.ext_read_ports, min_cycles
                        ),
                    )
                    .with_span(Span::range(blk.start, blk.end))
                    .in_block(c.block as u32),
                );
            }
        }
        if c.unread_ext_writes > 0 {
            report.push(
                Finding::new(
                    PbCode::Pb105UnreadExternalWrite,
                    format!(
                        "{} external write(s) whose value is never read through the \
                         external file — wasted external bandwidth",
                        c.unread_ext_writes
                    ),
                )
                .in_block(c.block as u32),
            );
        }
    }
}
