//! Analysis findings: stable `PB1xx` codes, the whole-program report, and
//! the text/JSON renderers (following `braid_check::diag` conventions).

use std::fmt;

use braid_check::{json_string, Span};

use crate::bound::CycleBound;

/// Stable analysis codes. Like the checker's `BC0xx` codes these are part
/// of the tool interface — tests and scripts match on them, so existing
/// codes must never be renumbered (append instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PbCode {
    /// `PB101`: the per-core sound cycle lower bound.
    Pb101CycleBound,
    /// `PB102`: a block's latency-weighted dataflow critical path.
    Pb102CriticalPath,
    /// `PB103`: a braid's internal working set has no headroom — one more
    /// simultaneously-live internal value would force a split.
    Pb103PressureAtCapacity,
    /// `PB104`: a block's external reads exceed the braid core's external
    /// read ports per cycle, serializing braid issue.
    Pb104CommunicationHeavy,
    /// `PB105`: an external (`E`) write whose value is never read through
    /// the external file on any path — wasted external bandwidth.
    Pb105UnreadExternalWrite,
    /// `PB106`: per-core classification of what limits the program
    /// (dependence chains vs. a resource floor).
    Pb106Limiter,
}

impl PbCode {
    /// The stable `PB1xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            PbCode::Pb101CycleBound => "PB101",
            PbCode::Pb102CriticalPath => "PB102",
            PbCode::Pb103PressureAtCapacity => "PB103",
            PbCode::Pb104CommunicationHeavy => "PB104",
            PbCode::Pb105UnreadExternalWrite => "PB105",
            PbCode::Pb106Limiter => "PB106",
        }
    }

    /// The level this code always reports at.
    pub fn level(self) -> Level {
        match self {
            PbCode::Pb103PressureAtCapacity
            | PbCode::Pb104CommunicationHeavy
            | PbCode::Pb105UnreadExternalWrite => Level::Warning,
            _ => Level::Info,
        }
    }

    /// Every code, in numbering order.
    pub const ALL: &'static [PbCode] = &[
        PbCode::Pb101CycleBound,
        PbCode::Pb102CriticalPath,
        PbCode::Pb103PressureAtCapacity,
        PbCode::Pb104CommunicationHeavy,
        PbCode::Pb105UnreadExternalWrite,
        PbCode::Pb106Limiter,
    ];
}

impl fmt::Display for PbCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Finding level. Analysis findings are never errors — the analyzer
/// describes performance, it does not reject programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Neutral structural information.
    Info,
    /// A performance smell worth acting on.
    Warning,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Info => f.write_str("info"),
            Level::Warning => f.write_str("warning"),
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The stable code.
    pub code: PbCode,
    /// Instruction span the finding is anchored to, when instruction-local.
    pub span: Option<Span>,
    /// Containing block, when block-local.
    pub block: Option<u32>,
    /// Core the finding applies to, for per-core findings.
    pub core: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding; level is derived from the code.
    pub fn new(code: PbCode, message: impl Into<String>) -> Finding {
        Finding { code, span: None, block: None, core: None, message: message.into() }
    }

    /// Attaches the anchor span.
    pub fn with_span(mut self, span: Span) -> Finding {
        self.span = Some(span);
        self
    }

    /// Attaches the containing block.
    pub fn in_block(mut self, block: u32) -> Finding {
        self.block = Some(block);
        self
    }

    /// Attaches the core the finding applies to.
    pub fn on_core(mut self, core: impl Into<String>) -> Finding {
        self.core = Some(core.into());
        self
    }

    /// The level (fixed per code).
    pub fn level(&self) -> Level {
        self.code.level()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.level(), self.code)?;
        if let Some(core) = &self.core {
            write!(f, "({core})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(span) = self.span {
            write!(f, "\n  --> {span}")?;
            if let Some(b) = self.block {
                write!(f, " (block {b})")?;
            }
        } else if let Some(b) = self.block {
            write!(f, "\n  --> block {b}")?;
        }
        Ok(())
    }
}

/// The full result of analyzing one program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Name of the analyzed program.
    pub program: String,
    /// Findings in discovery order (bounds first, then structure).
    pub findings: Vec<Finding>,
    /// The per-core sound cycle lower bounds.
    pub bounds: Vec<CycleBound>,
}

impl AnalysisReport {
    /// An empty report for `program`.
    pub fn new(program: impl Into<String>) -> AnalysisReport {
        AnalysisReport { program: program.into(), findings: Vec::new(), bounds: Vec::new() }
    }

    /// Adds a finding.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.level() == Level::Warning).count()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: PbCode) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// The bound computed for `core`, if that core was analyzed.
    pub fn bound_for(&self, core: &str) -> Option<&CycleBound> {
        self.bounds.iter().find(|b| b.core == core)
    }

    /// Renders the machine-readable JSON form (hand-rolled; the workspace
    /// is hermetic).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"program\":");
        json_string(&mut out, &self.program);
        out.push_str(",\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"core\":");
            json_string(&mut out, &b.core);
            out.push_str(&format!(
                ",\"cycles\":{},\"limiter\":\"{}\",\"insts\":{},\"mem_insts\":{},\
                 \"width_bound\":{},\"issue_bound\":{},\"lsq_bound\":{},\"dep_bound\":{}}}",
                b.cycles(),
                b.limiter(),
                b.insts,
                b.mem_insts,
                b.width_bound,
                b.issue_bound,
                b.lsq_bound,
                b.dep_bound
            ));
        }
        out.push_str("],\"warnings\":");
        out.push_str(&self.warnings().to_string());
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"code\":\"{}\",\"level\":\"{}\"", f.code, f.level()));
            if let Some(span) = f.span {
                out.push_str(&format!(",\"start\":{},\"end\":{}", span.start, span.end));
            }
            if let Some(b) = f.block {
                out.push_str(&format!(",\"block\":{b}"));
            }
            if let Some(core) = &f.core {
                out.push_str(",\"core\":");
                json_string(&mut out, core);
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bound: {} findings for {} ({} warnings)",
            self.findings.len(),
            self.program,
            self.warnings()
        )?;
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(PbCode::ALL.len(), 6);
        for (i, c) in PbCode::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("PB{}", 101 + i));
        }
    }

    #[test]
    fn levels_are_fixed_per_code() {
        assert_eq!(PbCode::Pb101CycleBound.level(), Level::Info);
        assert_eq!(PbCode::Pb103PressureAtCapacity.level(), Level::Warning);
        assert_eq!(PbCode::Pb105UnreadExternalWrite.level(), Level::Warning);
    }

    #[test]
    fn json_carries_codes_spans_and_bounds() {
        let mut r = AnalysisReport::new("demo");
        r.bounds.push(crate::bound::CycleBound {
            core: "ooo".into(),
            insts: 80,
            mem_insts: 8,
            width_bound: 10,
            issue_bound: 10,
            lsq_bound: 1,
            dep_bound: 42,
        });
        r.push(
            Finding::new(PbCode::Pb102CriticalPath, "cp 42")
                .with_span(Span::range(0, 9))
                .in_block(0),
        );
        r.push(Finding::new(PbCode::Pb101CycleBound, "bound 42").on_core("ooo"));
        let j = r.to_json();
        assert!(j.contains("\"core\":\"ooo\""));
        assert!(j.contains("\"cycles\":42"));
        assert!(j.contains("\"limiter\":\"dependence\""));
        assert!(j.contains("\"code\":\"PB102\""));
        assert!(j.contains("\"start\":0,\"end\":9"));
        let text = r.to_string();
        assert!(text.contains("info[PB102]: cp 42"));
        assert!(text.contains("info[PB101](ooo): bound 42"));
    }
}
