//! Structural analysis passes: latency-weighted critical paths, internal
//! register pressure, and external-communication cost.
//!
//! These passes describe the *shape* of an annotated program — what limits
//! it and where. They feed the report layer and the `braidc -O` candidate
//! scoring. The sound program-level cycle bound lives in [`crate::bound`];
//! everything here is per-block / per-braid structure.

use braid_check::{extents, Blocks, Extent};
use braid_compiler::cfg::Cfg;
use braid_compiler::dataflow::BlockDefUse;
use braid_isa::Program;

use crate::framework::RegMask;

/// Latency-weighted dataflow critical path of one basic block.
#[derive(Debug, Clone, Copy)]
pub struct BlockPath {
    /// Block index (address order).
    pub block: usize,
    /// First instruction index of the block.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Longest def-use chain through the block, weighted by each
    /// instruction's execution latency, in cycles.
    pub cp_cycles: u64,
    /// Instruction index at which the critical path ends.
    pub tail: u32,
}

/// Computes the latency-weighted critical path of every block: the longest
/// chain of def-use-dependent instructions, each contributing its
/// [`braid_isa::Opcode::latency`]. One full execution of the block can
/// never finish faster than its critical path on any of the cores (loads
/// are weighted at their minimum latency).
pub fn critical_paths(program: &Program, cfg: &Cfg) -> Vec<BlockPath> {
    let mut out = Vec::with_capacity(cfg.len());
    for b in 0..cfg.len() {
        let blk = &cfg.blocks[b];
        let du = BlockDefUse::compute(program, cfg, b);
        let len = blk.len();
        let mut depth = vec![0u64; len];
        let mut cp = 0u64;
        let mut tail = blk.start;
        for p in 0..len {
            let inst = &program.insts[blk.start as usize + p];
            let mut ready = 0u64;
            for d in du.src_def[p].iter().flatten() {
                ready = ready.max(depth[*d as usize]);
            }
            depth[p] = ready + inst.opcode.latency();
            if depth[p] > cp {
                cp = depth[p];
                tail = blk.start + p as u32;
            }
        }
        out.push(BlockPath { block: b, start: blk.start, end: blk.end, cp_cycles: cp, tail });
    }
    out
}

/// Latency-weighted critical path of one braid extent: the same chain
/// computation as [`critical_paths`], restricted to dependence edges whose
/// endpoints both lie inside the extent.
pub fn extent_path(program: &Program, cfg: &Cfg, e: &Extent) -> u64 {
    let Some(&b) = cfg.block_of.get(e.start as usize) else { return 0 };
    let du = BlockDefUse::compute(program, cfg, b);
    let blk = &cfg.blocks[b];
    let rel = |idx: u32| (idx - blk.start) as usize;
    let mut depth = vec![0u64; blk.len()];
    let mut cp = 0u64;
    for i in e.start..e.end.min(blk.end) {
        let p = rel(i);
        let inst = &program.insts[i as usize];
        let mut ready = 0u64;
        for d in du.src_def[p].iter().flatten() {
            let abs = blk.start + *d;
            if abs >= e.start {
                ready = ready.max(depth[*d as usize]);
            }
        }
        depth[p] = ready + inst.opcode.latency();
        cp = cp.max(depth[p]);
    }
    cp
}

/// Internal-register pressure of one braid extent.
#[derive(Debug, Clone, Copy)]
pub struct BraidPressure {
    /// The braid extent this was measured for.
    pub extent: Extent,
    /// Peak number of simultaneously-live internal values (an internal def
    /// occupies an entry from its def to its last internal read, or to the
    /// braid's end when nothing reads it — the translator's own
    /// working-set accounting).
    pub peak: u32,
    /// The internal register file capacity the profile was taken against.
    pub capacity: u32,
}

impl BraidPressure {
    /// How many more simultaneously-live internal values this braid could
    /// hold before the translator would be forced to split it.
    pub fn headroom(&self) -> u32 {
        self.capacity.saturating_sub(self.peak)
    }
}

/// Profiles internal-register pressure for every braid extent of the
/// annotated program.
pub fn pressure_profile(program: &Program, blocks: &Blocks, capacity: u32) -> Vec<BraidPressure> {
    extents(program, blocks)
        .into_iter()
        .map(|e| {
            let mut current_def: [Option<u32>; 64] = [None; 64];
            // (def index, effective last internal read).
            let mut intervals: Vec<(u32, u32)> = Vec::new();
            for i in e.start..e.end {
                let Some(inst) = program.insts.get(i as usize) else { break };
                let internal_read = |r: braid_isa::Reg, intervals: &mut Vec<(u32, u32)>| {
                    if let Some(d) = current_def[r.index() as usize] {
                        if let Some(iv) = intervals.iter_mut().find(|(s, _)| *s == d) {
                            iv.1 = i;
                        }
                    }
                };
                for (slot, r) in inst.src_regs().enumerate() {
                    if slot < 2 && inst.braid.t[slot] && !r.is_zero() {
                        internal_read(r, &mut intervals);
                    }
                }
                if inst.opcode.reads_dest() {
                    if let Some(d) = inst.dest.filter(|r| !r.is_zero()) {
                        internal_read(d, &mut intervals);
                    }
                }
                if inst.braid.internal {
                    if let Some(d) = inst.written_reg().filter(|r| !r.is_zero()) {
                        current_def[d.index() as usize] = Some(i);
                        // Unread internal defs hold their entry to the
                        // braid's end, mirroring the checker's BC004 bound.
                        intervals.push((i, e.end.saturating_sub(1)));
                    }
                }
            }
            let mut peak = 0u32;
            for i in e.start..e.end {
                let live = intervals.iter().filter(|&&(s, l)| s <= i && i <= l).count() as u32;
                peak = peak.max(live);
            }
            BraidPressure { extent: e, peak, capacity }
        })
        .collect()
}

/// External-communication profile of one basic block.
#[derive(Debug, Clone, Copy)]
pub struct BlockComm {
    /// Block index (address order).
    pub block: usize,
    /// Braid extents in the block.
    pub braids: u32,
    /// Source reads satisfied by the external register file (`T` clear on
    /// a non-zero register): each consumes an external read port at issue.
    pub ext_reads: u32,
    /// Results written to the external register file (`E` set): each
    /// consumes external write/rename bandwidth.
    pub ext_writes: u32,
    /// Results written to both files (`I` and `E`): braid-internal values
    /// that also escape.
    pub dual_writes: u32,
    /// `E` writes whose value is never externally read on any path —
    /// wasted external bandwidth that could have been internal-only.
    pub unread_ext_writes: u32,
}

/// Profiles external communication per block. `ext_live_out[b]` is the
/// [`crate::framework::ExtLiveness`] fact at the block's exit.
pub fn communication(
    program: &Program,
    cfg: &Cfg,
    blocks: &Blocks,
    ext_live_out: &[RegMask],
) -> Vec<BlockComm> {
    let per_block_extents = {
        let mut v = vec![0u32; cfg.len()];
        for e in extents(program, blocks) {
            if let Some(c) = v.get_mut(e.block) {
                *c += 1;
            }
        }
        v
    };
    let mut out = Vec::with_capacity(cfg.len());
    for b in 0..cfg.len() {
        let blk = &cfg.blocks[b];
        let mut comm = BlockComm {
            block: b,
            braids: per_block_extents.get(b).copied().unwrap_or(0),
            ext_reads: 0,
            ext_writes: 0,
            dual_writes: 0,
            unread_ext_writes: 0,
        };
        // Walk backwards tracking ext-liveness within the block so each E
        // write can be classified as read-later or wasted.
        let mut live = ext_live_out.get(b).copied().unwrap_or(!0);
        for i in blk.range().rev() {
            let Some(inst) = program.insts.get(i) else { continue };
            if inst.braid.external {
                comm.ext_writes += 1;
                if inst.braid.internal {
                    comm.dual_writes += 1;
                }
                if let Some(d) = inst.written_reg().filter(|r| !r.is_zero()) {
                    if live & (1u64 << d.index()) == 0 {
                        comm.unread_ext_writes += 1;
                    }
                    live &= !(1u64 << d.index());
                }
            }
            for (slot, r) in inst.src_regs().enumerate() {
                if r.is_zero() {
                    continue;
                }
                if !(slot < 2 && inst.braid.t[slot]) {
                    comm.ext_reads += 1;
                    live |= 1u64 << r.index();
                }
            }
            if inst.opcode.reads_dest() {
                if let Some(d) = inst.dest.filter(|r| !r.is_zero()) {
                    live |= 1u64 << d.index();
                }
            }
        }
        out.push(comm);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{solve, ExtLiveness};
    use braid_isa::asm::assemble;

    #[test]
    fn critical_path_weights_latencies() {
        // mul (3) feeding add (1) feeding add (1): cp = 5 even though an
        // independent 2-inst chain exists.
        let p = assemble(
            "mulq r1, r2, r3\naddq r3, r1, r4\naddq r4, r1, r5\naddq r6, r7, r8\nhalt",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let paths = critical_paths(&p, &cfg);
        let b0 = cfg.block_of[0];
        assert_eq!(paths[b0].cp_cycles, 5);
        assert_eq!(paths[b0].tail, 2);
    }

    #[test]
    fn pressure_counts_live_internal_values() {
        // Two internal defs both read by the final add: both live at inst 2.
        let mut p = assemble("addq r1, r2, r3\naddq r1, r2, r4\naddq r3, r4, r5\nhalt").unwrap();
        for i in 0..2 {
            p.insts[i].braid.internal = true;
            p.insts[i].braid.external = false;
        }
        p.insts[2].braid.t = [true, true];
        for i in 1..3 {
            p.insts[i].braid.start = false;
        }
        let blocks = Blocks::build(&p);
        let prof = pressure_profile(&p, &blocks, 8);
        let peak = prof.iter().map(|bp| bp.peak).max().unwrap();
        assert_eq!(peak, 2);
        assert_eq!(prof.iter().find(|bp| bp.peak == 2).unwrap().headroom(), 6);
    }

    #[test]
    fn communication_flags_unread_external_writes() {
        // r3's external write is immediately overwritten externally and
        // never read: wasted bandwidth.
        let p = assemble("addq r1, r2, r3\naddq r1, r2, r3\nstq r3, 0(r9) @stack:1\nhalt")
            .unwrap();
        let cfg = Cfg::build(&p);
        let blocks = Blocks::build(&p);
        let live = solve(&p, &cfg, &ExtLiveness);
        let comm = communication(&p, &cfg, &blocks, &live.exit);
        let b0 = cfg.block_of[0];
        assert_eq!(comm[b0].unread_ext_writes, 1, "{:?}", comm[b0]);
        assert!(comm[b0].ext_reads >= 3);
    }
}
