//! # braid-prng: a dependency-free deterministic PRNG
//!
//! The repository builds in hermetic environments with no registry access,
//! so everything that needs randomness — the seeded workload generator, the
//! fault injector, and the in-repo property-test harness — draws from this
//! small xoshiro256** generator instead of the `rand` crate.
//!
//! The generator is deterministic by construction: the same seed always
//! yields the same stream, across platforms and releases. Workload
//! generation depends on that property ("the same profile always yields the
//! same program"), so the state-transition function must never change; add
//! a new generator instead if a different stream is ever needed.
//!
//! ```
//! use braid_prng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let die = a.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A small, fast, deterministic generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value from `range` (half-open or inclusive; any primitive
    /// integer type).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoBounds<T>,
    {
        let (lo, hi_incl) = range.into_bounds();
        T::sample(self, lo, hi_incl)
    }

    /// A uniform u64 in `[0, bound)` without modulo bias (Lemire's method).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift; retry in the biased low zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range(0..slice.len())]
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi]` (both inclusive).
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait IntoBounds<T> {
    /// Converts to `(low, high_inclusive)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn into_bounds(self) -> (T, T);
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.bounded_u64(span)) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                // Shift into unsigned space to avoid overflow on spans.
                let ulo = (lo as $u).wrapping_sub(<$t>::MIN as $u);
                let uhi = (hi as $u).wrapping_sub(<$t>::MIN as $u);
                let span = (uhi as u64).wrapping_sub(ulo as u64).wrapping_add(1);
                let draw = if span == 0 { rng.next_u64() } else { rng.bounded_u64(span) };
                ((ulo as u64).wrapping_add(draw) as $u).wrapping_add(<$t>::MIN as $u) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: SampleUniform + Dec> IntoBounds<T> for Range<T> {
    fn into_bounds(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range on an empty range");
        (self.start, self.end.dec())
    }
}

impl<T: SampleUniform> IntoBounds<T> for RangeInclusive<T> {
    fn into_bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        (lo, hi)
    }
}

/// Decrement by one, for converting half-open bounds to inclusive ones.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn reference_stream_is_frozen() {
        // Workload generation depends on this exact stream; if this test
        // ever fails, the generator's state transition changed and every
        // "deterministic" workload changed with it.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn full_and_extreme_ranges() {
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..100 {
            let _ = r.gen_range(0..=u64::MAX);
            let _ = r.gen_range(i64::MIN..=i64::MAX);
            assert_eq!(r.gen_range(3..4u32), 3, "single-value range");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        let pick = *r.choose(&v);
        assert!(v.contains(&pick));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5u32);
    }
}
