//! Set-associative caches and the simulated memory hierarchy.

use crate::stats::Ratio;

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// The paper's 64KB 4-way 3-cycle instruction cache.
    pub fn paper_l1i() -> CacheConfig {
        CacheConfig { size_bytes: 64 << 10, ways: 4, line_bytes: 64, latency: 3 }
    }

    /// The paper's 64KB 2-way 3-cycle data cache.
    pub fn paper_l1d() -> CacheConfig {
        CacheConfig { size_bytes: 64 << 10, ways: 2, line_bytes: 64, latency: 3 }
    }

    /// The paper's 1MB 8-way 6-cycle unified L2.
    pub fn paper_l2() -> CacheConfig {
        CacheConfig { size_bytes: 1 << 20, ways: 8, line_bytes: 64, latency: 6 }
    }

    fn sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / self.ways as u64).max(1)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher is more recently used.
    lru: u64,
}

/// Per-cache access statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Hit ratio over all accesses.
    pub hits: Ratio,
    /// Dirty lines evicted (write-backs to the next level).
    pub writebacks: u64,
}

/// One set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// ```
/// use braid_uarch::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::paper_l1d());
/// assert!(!l1.access(0x1000, false)); // cold miss
/// assert!(l1.access(0x1000, false));  // now a hit
/// assert!(l1.access(0x1030, true));   // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry is
    /// degenerate.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways >= 1 && config.size_bytes >= config.line_bytes);
        let lines = vec![Line::default(); (config.sets() * config.ways as u64) as usize];
        Cache { config, lines, tick: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_range(&self, addr: u64) -> (std::ops::Range<usize>, u64) {
        let line_addr = addr / self.config.line_bytes;
        let set = (line_addr % self.config.sets()) as usize;
        let tag = line_addr / self.config.sets();
        let ways = self.config.ways as usize;
        (set * ways..(set + 1) * ways, tag)
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line,
    /// evicting LRU (recording a write-back if the victim was dirty).
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (range, tag) = self.set_range(addr);
        let set = &mut self.lines[range];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.stats.hits.record(true);
            return true;
        }
        self.stats.hits.record(false);
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache sets are non-empty");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: is_write, lru: tick };
        false
    }

    /// Touches `addr` like [`Cache::access`] — allocating on miss and
    /// updating LRU — but without recording statistics. Used for functional
    /// warming, where the access is part of the program's history rather
    /// than the measured window.
    pub fn touch(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (range, tag) = self.set_range(addr);
        let set = &mut self.lines[range];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            return true;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache sets are non-empty");
        *victim = Line { tag, valid: true, dirty: is_write, lru: tick };
        false
    }

    /// Probes without modifying replacement state; `true` if present.
    pub fn contains(&self, addr: u64) -> bool {
        let (range, tag) = self.set_range(addr);
        self.lines[range].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (back to a cold cache), keeping statistics.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

/// The kind of access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (L1I → L2 → memory).
    Fetch,
    /// Data load (L1D → L2 → memory).
    Load,
    /// Data store (L1D → L2 → memory, write-allocate).
    Store,
}

/// Configuration of the simulated memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryHierarchyConfig {
    /// Instruction cache.
    pub l1i: CacheConfig,
    /// Data cache.
    pub l1d: CacheConfig,
    /// Unified second level.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (the paper uses 400).
    pub memory_latency: u64,
    /// Outstanding-miss registers for the data side (`0` = unlimited
    /// memory-level parallelism). When every MSHR is busy, a new miss
    /// waits for the oldest one to retire.
    pub mshrs: u32,
    /// When set, every access hits in L1 (the paper's Figure 1 mode).
    pub perfect: bool,
}

impl Default for MemoryHierarchyConfig {
    fn default() -> MemoryHierarchyConfig {
        MemoryHierarchyConfig {
            l1i: CacheConfig::paper_l1i(),
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            memory_latency: 400,
            mshrs: 0,
            perfect: false,
        }
    }
}

impl MemoryHierarchyConfig {
    /// The perfect-cache configuration of the paper's Figure 1.
    pub fn perfect() -> MemoryHierarchyConfig {
        MemoryHierarchyConfig { perfect: true, ..MemoryHierarchyConfig::default() }
    }
}

/// The two-level cache hierarchy plus main memory (paper Table 4).
///
/// The hierarchy is a latency model: [`MemoryHierarchy::access`] walks the
/// levels, allocates lines, and returns the total access latency in cycles.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryHierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    /// Completion times of in-flight data-side misses (MSHR occupancy).
    miss_slots: Vec<u64>,
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: MemoryHierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            miss_slots: Vec::new(),
            config,
        }
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &MemoryHierarchyConfig {
        &self.config
    }

    /// Performs an access and returns its latency in cycles. Latency-only
    /// model: misses fill immediately, so later accesses to the line hit.
    pub fn access(&mut self, kind: Access, addr: u64) -> u64 {
        self.access_at(kind, addr, 0)
    }

    /// Like [`MemoryHierarchy::access`], with the current `cycle` so a
    /// finite MSHR pool (when configured) can serialize excess data-side
    /// misses.
    pub fn access_at(&mut self, kind: Access, addr: u64, cycle: u64) -> u64 {
        let is_write = kind == Access::Store;
        let (l1, l1_latency) = match kind {
            Access::Fetch => (&mut self.l1i, self.config.l1i.latency),
            Access::Load | Access::Store => (&mut self.l1d, self.config.l1d.latency),
        };
        if self.config.perfect {
            // Perfect caches still record accesses so reports stay complete.
            l1.stats.hits.record(true);
            return l1_latency;
        }
        if l1.access(addr, is_write) {
            return l1_latency;
        }
        let miss_latency = if self.l2.access(addr, is_write) {
            l1_latency + self.config.l2.latency
        } else {
            l1_latency + self.config.l2.latency + self.config.memory_latency
        };
        if kind == Access::Fetch || self.config.mshrs == 0 {
            return miss_latency;
        }
        // Book an MSHR: if all are busy at `cycle`, the miss starts when
        // the oldest outstanding one retires.
        self.miss_slots.retain(|&done| done > cycle);
        let start = if self.miss_slots.len() < self.config.mshrs as usize {
            cycle
        } else {
            let oldest = self.miss_slots.iter().copied().min().expect("non-empty");
            let pos = self.miss_slots.iter().position(|&d| d == oldest).expect("found");
            self.miss_slots.swap_remove(pos);
            oldest
        };
        let done = start + miss_latency;
        self.miss_slots.push(done);
        done - cycle
    }

    /// Warms the hierarchy with an access that is part of the program's
    /// history but not of the measured window: lines are allocated and LRU
    /// state advances exactly as in [`MemoryHierarchy::access`], but no
    /// statistics are recorded and no MSHRs are booked. A no-op under
    /// perfect caches. Used by sampled simulation (SMARTS-style functional
    /// warming) so timed windows start from the cache state a continuous
    /// run would have.
    pub fn warm(&mut self, kind: Access, addr: u64) {
        if self.config.perfect {
            return;
        }
        let is_write = kind == Access::Store;
        let l1 = match kind {
            Access::Fetch => &mut self.l1i,
            Access::Load | Access::Store => &mut self.l1d,
        };
        if !l1.touch(addr, is_write) {
            self.l2.touch(addr, is_write);
        }
    }

    /// Statistics for (L1I, L1D, L2).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (*self.l1i.stats(), *self.l1d.stats(), *self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, latency: 1 }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(tiny());
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false), "same line");
        assert!(!c.access(64, false), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // tiny(): 2 sets, 2 ways. Set 0 holds line addresses 0, 128, 256...
        let mut c = Cache::new(tiny());
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // touch 0, so 128 is LRU
        c.access(256, false); // evicts 128
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(tiny());
        c.access(0, true);
        c.access(128, false);
        c.access(256, false); // evicts dirty 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(tiny());
        c.access(0, false);
        c.flush();
        assert!(!c.contains(0));
    }

    #[test]
    fn paper_geometry_is_sane() {
        assert_eq!(CacheConfig::paper_l1i().sets(), 256);
        assert_eq!(CacheConfig::paper_l1d().sets(), 512);
        assert_eq!(CacheConfig::paper_l2().sets(), 2048);
    }

    #[test]
    fn touch_allocates_without_stats() {
        let mut c = Cache::new(tiny());
        assert!(!c.touch(0, false));
        assert!(c.touch(0, false));
        assert!(c.access(0, false), "touch made the later access a hit");
        assert_eq!(c.stats().hits.total(), 1, "only the real access counted");
    }

    #[test]
    fn warm_fills_both_levels_silently() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        h.warm(Access::Load, 0x1000);
        assert_eq!(h.access(Access::Load, 0x1000), 3, "L1D warmed");
        assert_eq!(h.access(Access::Fetch, 0x1000), 9, "L2 warmed too");
        let (_, l1d, _) = h.stats();
        assert_eq!(l1d.hits.total(), 1, "warming left no statistics");
    }

    #[test]
    fn warm_is_noop_under_perfect_caches() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        h.warm(Access::Load, 0x1000);
        assert_eq!(h.access(Access::Load, 0x1000), 3);
        let (_, l1d, _) = h.stats();
        assert_eq!(l1d.hits.total(), 1);
    }

    #[test]
    fn hierarchy_latencies_follow_levels() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        // Cold: L1 (3) + L2 (6) + memory (400).
        assert_eq!(h.access(Access::Load, 0x1000), 409);
        // Warm in L1.
        assert_eq!(h.access(Access::Load, 0x1000), 3);
        // L1I and L1D are separate: a fetch to the same address misses L1I
        // but hits the L2 that the load filled.
        assert_eq!(h.access(Access::Fetch, 0x1000), 9);
    }

    #[test]
    fn perfect_mode_always_hits() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::perfect());
        assert_eq!(h.access(Access::Load, 0xdead_0000), 3);
        assert_eq!(h.access(Access::Fetch, 0xbeef_0000), 3);
        assert_eq!(h.access(Access::Store, 0x0), 3);
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        let mut misses = 0;
        for i in 0..100u64 {
            if h.access(Access::Load, i * 64) > 3 {
                misses += 1;
            }
        }
        assert_eq!(misses, 100);
        let (_, l1d, _) = h.stats();
        assert_eq!(l1d.hits.misses(), 100);
    }
}

#[cfg(test)]
mod mshr_tests {
    use super::*;

    fn mshr_config(n: u32) -> MemoryHierarchyConfig {
        MemoryHierarchyConfig { mshrs: n, ..MemoryHierarchyConfig::default() }
    }

    #[test]
    fn unlimited_mshrs_overlap_misses() {
        let mut h = MemoryHierarchy::new(mshr_config(0));
        let a = h.access_at(Access::Load, 0x0000, 100);
        let b = h.access_at(Access::Load, 0x4000, 100);
        assert_eq!(a, b, "independent misses overlap fully");
    }

    #[test]
    fn finite_mshrs_serialize_excess_misses() {
        let mut h = MemoryHierarchy::new(mshr_config(1));
        let a = h.access_at(Access::Load, 0x0000, 100);
        let b = h.access_at(Access::Load, 0x4000, 100);
        assert!(b >= 2 * a, "second miss waits for the single MSHR: {a} then {b}");
        // After both retire, a new miss at a later cycle is unimpeded.
        let c = h.access_at(Access::Load, 0x8000, 100 + b + 1);
        assert_eq!(c, a);
    }

    #[test]
    fn hits_never_consume_mshrs() {
        let mut h = MemoryHierarchy::new(mshr_config(1));
        let miss = h.access_at(Access::Load, 0x0000, 0);
        for i in 0..8 {
            assert_eq!(h.access_at(Access::Load, i, 1), 3, "hits bypass MSHRs");
        }
        let second = h.access_at(Access::Load, 0x4000, 1);
        assert!(second > miss, "the busy MSHR still delays a second miss");
    }

    #[test]
    fn fetch_side_is_unaffected() {
        let mut h = MemoryHierarchy::new(mshr_config(1));
        let _ = h.access_at(Access::Load, 0x0000, 0);
        let f = h.access_at(Access::Fetch, 0x10000, 0);
        assert_eq!(f, 409, "instruction misses do not compete for data MSHRs");
    }
}
