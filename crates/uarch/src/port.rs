//! Per-cycle structural-hazard arbiters.
//!
//! The paper's sweeps over register-file ports (Figure 7) and bypass paths
//! (Figure 8) are modelled with these arbiters: a fixed number of grants per
//! cycle, contention visible as stalls.

/// Grants up to `ports` uses per cycle.
///
/// ```
/// use braid_uarch::PortArbiter;
///
/// let mut read_ports = PortArbiter::new(2);
/// assert!(read_ports.try_use(100));
/// assert!(read_ports.try_use(100));
/// assert!(!read_ports.try_use(100)); // third read this cycle stalls
/// assert!(read_ports.try_use(101));  // next cycle is fresh
/// ```
#[derive(Debug, Clone)]
pub struct PortArbiter {
    ports: u32,
    cycle: u64,
    used: u32,
    grants: u64,
    conflicts: u64,
}

impl PortArbiter {
    /// Creates an arbiter with `ports` grants per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u32) -> PortArbiter {
        assert!(ports > 0, "an arbiter needs at least one port");
        PortArbiter { ports, cycle: u64::MAX, used: 0, grants: 0, conflicts: 0 }
    }

    /// Number of ports per cycle.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    fn roll(&mut self, cycle: u64) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
    }

    /// Tries to use one port in `cycle`; `false` means structural stall.
    pub fn try_use(&mut self, cycle: u64) -> bool {
        self.roll(cycle);
        if self.used < self.ports {
            self.used += 1;
            self.grants += 1;
            true
        } else {
            self.conflicts += 1;
            false
        }
    }

    /// Tries to use `n` ports at once in `cycle`; all or nothing.
    pub fn try_use_n(&mut self, cycle: u64, n: u32) -> bool {
        self.roll(cycle);
        if self.used + n <= self.ports {
            self.used += n;
            self.grants += n as u64;
            true
        } else {
            self.conflicts += 1;
            false
        }
    }

    /// Ports still free in `cycle`.
    pub fn free(&mut self, cycle: u64) -> u32 {
        self.roll(cycle);
        self.ports - self.used
    }

    /// Total grants ever issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total denied requests (structural conflicts).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Fraction of requests granted (`1.0` for an idle arbiter) — the
    /// contention summary the observability exports report per port.
    pub fn grant_rate(&self) -> f64 {
        let asked = self.grants + self.conflicts;
        if asked == 0 {
            1.0
        } else {
            self.grants as f64 / asked as f64
        }
    }
}

/// Measures sustained bandwidth use (values per cycle) without limiting it.
///
/// Used for the "average of 2 external values produced every cycle" style
/// observations in the paper's §5.1.
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    events: u64,
    first_cycle: Option<u64>,
    last_cycle: u64,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> BandwidthMeter {
        BandwidthMeter::default()
    }

    /// Records `n` events in `cycle`.
    pub fn record(&mut self, cycle: u64, n: u64) {
        self.events += n;
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean events per cycle over the observed interval.
    pub fn per_cycle(&self) -> f64 {
        match self.first_cycle {
            None => 0.0,
            Some(first) => {
                let span = (self.last_cycle - first + 1) as f64;
                self.events as f64 / span
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_reset_each_cycle() {
        let mut a = PortArbiter::new(3);
        assert!(a.try_use_n(1, 3));
        assert!(!a.try_use(1));
        assert_eq!(a.free(1), 0);
        assert_eq!(a.free(2), 3);
        assert!(a.try_use(2));
    }

    #[test]
    fn all_or_nothing_group_use() {
        let mut a = PortArbiter::new(4);
        assert!(a.try_use_n(5, 3));
        assert!(!a.try_use_n(5, 2), "only one port left");
        assert!(a.try_use_n(5, 1));
        assert_eq!(a.grants(), 4);
        assert_eq!(a.conflicts(), 1);
        assert!((a.grant_rate() - 0.8).abs() < 1e-12);
        assert_eq!(PortArbiter::new(1).grant_rate(), 1.0);
    }

    #[test]
    fn arbiter_handles_nonmonotonic_cycles() {
        // Cores may probe a future cycle then return; the arbiter just keys
        // on cycle change.
        let mut a = PortArbiter::new(1);
        assert!(a.try_use(10));
        assert!(a.try_use(11));
        assert!(a.try_use(10), "cycle change resets the count");
    }

    #[test]
    fn bandwidth_meter_averages() {
        let mut m = BandwidthMeter::new();
        assert_eq!(m.per_cycle(), 0.0);
        m.record(100, 2);
        m.record(101, 2);
        m.record(103, 4);
        assert_eq!(m.events(), 8);
        assert!((m.per_cycle() - 2.0).abs() < 1e-12, "8 events over 4 cycles");
    }
}
