//! Branch prediction: the paper's perceptron predictor, a perfect
//! predictor, and a return-address stack.

use crate::stats::Ratio;

/// A conditional-branch direction predictor.
///
/// The trait is object-safe so cores can hold `Box<dyn BranchPredictor>`.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` (`true` = taken).
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the resolved direction. `predicted` must be
    /// the value [`BranchPredictor::predict`] returned for this instance of
    /// the branch.
    fn update(&mut self, pc: u64, taken: bool, predicted: bool);

    /// Accuracy so far.
    fn accuracy(&self) -> Ratio;
}

/// The paper's perceptron predictor: a 512-entry table of perceptrons over a
/// 64-bit global history (Table 4).
///
/// Each table entry holds a bias weight and one signed weight per history
/// bit. The prediction is the sign of `bias + Σ w[i] * h[i]` with history
/// bits encoded ±1. Training (on mispredictions or low-confidence correct
/// predictions) nudges each weight toward agreement with the outcome, the
/// standard Jiménez-Lin rule with threshold `θ = ⌊1.93·h + 14⌋`.
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// weights[entry][0] is the bias; 1..=history_bits follow.
    weights: Vec<Vec<i32>>,
    history: u64,
    history_bits: u32,
    threshold: i32,
    accuracy: Ratio,
}

impl PerceptronPredictor {
    /// Creates the paper's configuration: 512 entries, 64-bit history.
    pub fn paper_default() -> PerceptronPredictor {
        PerceptronPredictor::new(512, 64)
    }

    /// Creates a predictor with `entries` perceptrons and `history_bits`
    /// bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `history_bits > 64`.
    pub fn new(entries: usize, history_bits: u32) -> PerceptronPredictor {
        assert!(entries > 0, "need at least one perceptron");
        assert!(history_bits <= 64, "history register is 64 bits wide");
        PerceptronPredictor {
            weights: vec![vec![0; history_bits as usize + 1]; entries],
            history: 0,
            history_bits,
            threshold: (1.93 * history_bits as f64 + 14.0) as i32,
            accuracy: Ratio::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc % self.weights.len() as u64) as usize
    }

    fn output(&self, pc: u64) -> i32 {
        let w = &self.weights[self.index(pc)];
        let mut y = w[0];
        for i in 0..self.history_bits as usize {
            let h = if (self.history >> i) & 1 == 1 { 1 } else { -1 };
            y += w[i + 1] * h;
        }
        y
    }
}

/// Weight saturation bound: 8-bit signed weights as in the original design.
const WEIGHT_LIMIT: i32 = 127;

impl BranchPredictor for PerceptronPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.output(pc) >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        self.accuracy.record(taken == predicted);
        let y = self.output(pc);
        if predicted != taken || y.abs() <= self.threshold {
            let idx = self.index(pc);
            let t = if taken { 1 } else { -1 };
            let w = &mut self.weights[idx];
            w[0] = (w[0] + t).clamp(-WEIGHT_LIMIT, WEIGHT_LIMIT);
            for i in 0..self.history_bits as usize {
                let h = if (self.history >> i) & 1 == 1 { 1 } else { -1 };
                w[i + 1] = (w[i + 1] + t * h).clamp(-WEIGHT_LIMIT, WEIGHT_LIMIT);
            }
        }
        self.history = (self.history << 1) | taken as u64;
    }

    fn accuracy(&self) -> Ratio {
        self.accuracy
    }
}

/// An oracle predictor: always right (the paper's Figure 1 front-end).
#[derive(Debug, Clone, Default)]
pub struct PerfectPredictor {
    accuracy: Ratio,
    /// The oracle outcome for the next prediction, supplied by the trace.
    oracle: bool,
}

impl PerfectPredictor {
    /// Creates a perfect predictor.
    pub fn new() -> PerfectPredictor {
        PerfectPredictor::default()
    }

    /// Supplies the actual outcome of the branch about to be predicted.
    pub fn set_oracle(&mut self, taken: bool) {
        self.oracle = taken;
    }
}

impl BranchPredictor for PerfectPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        self.oracle
    }

    fn update(&mut self, _pc: u64, taken: bool, predicted: bool) {
        debug_assert_eq!(taken, predicted, "perfect predictor mispredicted");
        self.accuracy.record(taken == predicted);
    }

    fn accuracy(&self) -> Ratio {
        self.accuracy
    }
}

/// A return-address stack predicting `ret` targets.
///
/// ```
/// use braid_uarch::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(16);
/// ras.push(101);
/// assert_eq!(ras.pop_predict(), Some(101));
/// assert_eq!(ras.pop_predict(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
    accuracy: Ratio,
}

impl ReturnAddressStack {
    /// Creates a stack holding at most `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(capacity > 0);
        ReturnAddressStack { stack: Vec::with_capacity(capacity), capacity, accuracy: Ratio::default() }
    }

    /// Pushes the return address of a call; overflow discards the oldest.
    pub fn push(&mut self, return_to: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_to);
    }

    /// Pops the predicted target for a return, or `None` on underflow.
    pub fn pop_predict(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Records whether a return-target prediction was correct.
    pub fn record(&mut self, correct: bool) {
        self.accuracy.record(correct);
    }

    /// Return-target prediction accuracy so far.
    pub fn accuracy(&self) -> Ratio {
        self.accuracy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: BranchPredictor>(p: &mut P, pattern: &[(u64, bool)], reps: usize) {
        for _ in 0..reps {
            for &(pc, taken) in pattern {
                let pred = p.predict(pc);
                p.update(pc, taken, pred);
            }
        }
    }

    #[test]
    fn perceptron_learns_always_taken() {
        let mut p = PerceptronPredictor::paper_default();
        train(&mut p, &[(0x40, true)], 100);
        assert!(p.predict(0x40));
        // Accuracy over the whole run is high once warmed up.
        assert!(p.accuracy().rate() > 0.9, "accuracy {}", p.accuracy());
    }

    #[test]
    fn perceptron_learns_alternating_pattern() {
        // T N T N ... is linearly separable on the last history bit.
        let mut p = PerceptronPredictor::paper_default();
        let mut correct = 0;
        let total = 400;
        let mut taken = false;
        for i in 0..total {
            taken = !taken;
            let pred = p.predict(0x80);
            if i >= 200 && pred == taken {
                correct += 1;
            }
            p.update(0x80, taken, pred);
        }
        assert!(correct >= 190, "late-phase correct = {correct}/200");
    }

    #[test]
    fn perceptron_learns_history_correlation() {
        // Branch B is taken iff branch A was taken: needs history.
        let mut p = PerceptronPredictor::new(512, 16);
        let mut correct = 0;
        for i in 0..600 {
            let a_taken = (i / 3) % 2 == 0;
            let pa = p.predict(0x10);
            p.update(0x10, a_taken, pa);
            let pb = p.predict(0x20);
            if i >= 300 && pb == a_taken {
                correct += 1;
            }
            p.update(0x20, a_taken, pb);
        }
        assert!(correct >= 280, "late-phase correct = {correct}/300");
    }

    #[test]
    fn weights_saturate() {
        let mut p = PerceptronPredictor::new(1, 4);
        train(&mut p, &[(0, true)], 10_000);
        for w in &p.weights[0] {
            assert!(w.abs() <= WEIGHT_LIMIT);
        }
    }

    #[test]
    fn perfect_predictor_follows_oracle() {
        let mut p = PerfectPredictor::new();
        for &taken in &[true, false, true, true] {
            p.set_oracle(taken);
            let pred = p.predict(0);
            assert_eq!(pred, taken);
            p.update(0, taken, pred);
        }
        assert_eq!(p.accuracy().rate(), 1.0);
    }

    #[test]
    fn ras_predicts_nested_calls() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop_predict(), Some(20));
        assert_eq!(ras.pop_predict(), Some(10));
        assert_eq!(ras.pop_predict(), None);
    }

    #[test]
    fn ras_overflow_discards_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop_predict(), Some(3));
        assert_eq!(ras.pop_predict(), Some(2));
        assert_eq!(ras.pop_predict(), None, "1 was discarded by overflow");
    }

    #[test]
    fn predictor_is_object_safe() {
        let mut preds: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(PerceptronPredictor::paper_default()),
            Box::new(PerfectPredictor::new()),
        ];
        for p in &mut preds {
            let _ = p.predict(0);
        }
    }
}

/// A classic gshare predictor: global history XOR PC indexing a table of
/// 2-bit saturating counters. Included as a baseline against the paper's
/// perceptron (the `predictors` experiment compares them).
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
    accuracy: Ratio,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` counters (rounded up to a
    /// power of two) and `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `history_bits > 32`.
    pub fn new(entries: usize, history_bits: u32) -> GsharePredictor {
        assert!(entries > 0);
        assert!(history_bits <= 32);
        GsharePredictor {
            counters: vec![1; entries.next_power_of_two()],
            history: 0,
            history_bits,
            accuracy: Ratio::default(),
        }
    }

    /// A 4K-entry, 12-bit-history configuration comparable in storage to
    /// the paper's perceptron table.
    pub fn classic_4k() -> GsharePredictor {
        GsharePredictor::new(4096, 12)
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.counters.len() as u64 - 1;
        let hist = self.history & ((1u64 << self.history_bits) - 1);
        ((pc ^ hist) & mask) as usize
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        self.accuracy.record(taken == predicted);
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }

    fn accuracy(&self) -> Ratio {
        self.accuracy
    }
}

/// A branch target buffer: a direct-mapped table of predicted targets.
///
/// The front end needs a target on the same cycle it predicts "taken"; a
/// BTB miss on a taken branch costs a refetch bubble even when the
/// direction was right.
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    /// (tag, target) per entry; `u64::MAX` tag = empty.
    entries: Vec<(u64, u64)>,
    accuracy: Ratio,
}

impl BranchTargetBuffer {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> BranchTargetBuffer {
        assert!(entries > 0);
        BranchTargetBuffer {
            entries: vec![(u64::MAX, 0); entries.next_power_of_two()],
            accuracy: Ratio::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc & (self.entries.len() as u64 - 1)) as usize
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.entries[self.index(pc)];
        if tag == pc {
            Some(target)
        } else {
            None
        }
    }

    /// Installs/updates the target and records whether the earlier
    /// prediction was correct.
    pub fn update(&mut self, pc: u64, target: u64) {
        let correct = self.predict(pc) == Some(target);
        self.accuracy.record(correct);
        let i = self.index(pc);
        self.entries[i] = (pc, target);
    }

    /// Target-prediction accuracy so far.
    pub fn accuracy(&self) -> Ratio {
        self.accuracy
    }
}

#[cfg(test)]
mod gshare_btb_tests {
    use super::*;

    #[test]
    fn gshare_learns_biased_branches() {
        let mut p = GsharePredictor::classic_4k();
        for _ in 0..200 {
            let pred = p.predict(0x44);
            p.update(0x44, true, pred);
        }
        assert!(p.predict(0x44));
        assert!(p.accuracy().rate() > 0.9);
    }

    #[test]
    fn gshare_uses_history() {
        // Alternating T/N resolves through history bits.
        let mut p = GsharePredictor::new(1024, 8);
        let mut taken = false;
        let mut late_correct = 0;
        for i in 0..600 {
            taken = !taken;
            let pred = p.predict(0x80);
            if i >= 300 && pred == taken {
                late_correct += 1;
            }
            p.update(0x80, taken, pred);
        }
        assert!(late_correct >= 280, "late correct {late_correct}/300");
    }

    #[test]
    fn gshare_counters_saturate() {
        let mut p = GsharePredictor::new(16, 0);
        for _ in 0..100 {
            let pred = p.predict(3);
            p.update(3, true, pred);
        }
        // One not-taken cannot flip a saturated counter.
        let pred = p.predict(3);
        p.update(3, false, pred);
        assert!(p.predict(3), "still predicts taken after one flip");
    }

    #[test]
    fn btb_hits_after_install() {
        let mut btb = BranchTargetBuffer::new(64);
        assert_eq!(btb.predict(0x10), None);
        btb.update(0x10, 0x99);
        assert_eq!(btb.predict(0x10), Some(0x99));
        // Conflicting pc evicts (direct mapped).
        btb.update(0x10 + 64, 0x55);
        assert_eq!(btb.predict(0x10), None);
        assert_eq!(btb.predict(0x10 + 64), Some(0x55));
    }

    #[test]
    fn btb_tracks_accuracy() {
        let mut btb = BranchTargetBuffer::new(16);
        btb.update(1, 7); // miss
        btb.update(1, 7); // hit
        btb.update(1, 9); // target changed: miss
        assert_eq!(btb.accuracy().hits(), 1);
        assert_eq!(btb.accuracy().total(), 3);
    }
}
