//! Load-store queue: run-time memory disambiguation.
//!
//! The paper keeps a conventional load-store queue in both machines ("a
//! conventional memory disambiguation structure such as the load-store queue
//! is used to enforce memory ordering at run time"). Stores split address
//! generation from data as real machines do: the address is published as
//! soon as the base register is ready, the data arrives when the value is
//! produced. With the default speculative policy (perfect memory-dependence
//! prediction) a load waits only for genuinely overlapping older stores,
//! forwarding from them once their data exists; the conservative policy
//! additionally waits for every older store's address generation.

/// Sentinel for "not yet".
const NEVER: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    is_store: bool,
    /// The operation's actual address span, known to the simulator from the
    /// trace at insertion.
    span: (u64, u64),
    /// Whether address generation has executed (the address is
    /// architecturally known).
    published: bool,
    /// Cycle at which the store's data is available ([`NEVER`] until known).
    data_at: u64,
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    // Spans near the top of the address space saturate rather than wrap;
    // a span that reaches the end overlaps anything above its start.
    a.0 < b.0.saturating_add(b.1) && b.0 < a.0.saturating_add(a.1)
}

/// What the LSQ says about a load that wants to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsqOutcome {
    /// The load may access the cache.
    Ready,
    /// The load receives its value from an older store (store-to-load
    /// forwarding); no cache access is needed.
    Forwarded {
        /// Sequence number of the forwarding store.
        store_seq: u64,
    },
    /// The load must wait: an older store's address is unknown, or an
    /// overlapping older store has not produced its data yet.
    WaitOn {
        /// Sequence number of the blocking store.
        store_seq: u64,
    },
}

/// A combined load-store queue ordered by dynamic sequence number.
///
/// Cores insert entries (with their trace addresses) at allocate, publish
/// store addresses at address generation and store data when the value is
/// produced, query loads with [`LoadStoreQueue::load_outcome`], and remove
/// entries at retirement.
///
/// Two disambiguation policies are supported. **Speculative** (the
/// default): loads ignore older stores whose span does not overlap, even
/// before address generation — perfect memory-dependence prediction, the
/// usual academic idealization of the load speculation every machine of
/// the paper's era performs. **Conservative**: a load waits until every
/// older store has published its address.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    entries: Vec<Entry>,
    capacity: usize,
    conservative: bool,
    high_water: usize,
}

impl LoadStoreQueue {
    /// Creates an LSQ holding up to `capacity` in-flight memory operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> LoadStoreQueue {
        assert!(capacity > 0);
        LoadStoreQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            conservative: false,
            high_water: 0,
        }
    }

    /// Switches to conservative disambiguation: loads wait for every older
    /// store's address generation.
    pub fn set_conservative(&mut self, conservative: bool) {
        self.conservative = conservative;
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another memory operation can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Peak occupancy ever reached (capacity-pressure instrumentation;
    /// survives flushes).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Allocates an entry for the memory operation `seq` spanning
    /// `addr..addr+bytes` (the span comes from the trace).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not monotonically increasing.
    pub fn insert(&mut self, seq: u64, is_store: bool, addr: u64, bytes: u64) {
        assert!(self.has_space(), "LSQ overflow");
        if let Some(last) = self.entries.last() {
            assert!(last.seq < seq, "LSQ entries must be inserted in program order");
        }
        self.entries.push(Entry { seq, is_store, span: (addr, bytes), published: false, data_at: NEVER });
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Publishes the address of operation `seq` (address generation
    /// complete).
    pub fn set_address(&mut self, seq: u64, addr: u64, bytes: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            debug_assert_eq!(e.span, (addr, bytes), "agen must match the trace");
            e.published = true;
            if !e.is_store {
                e.data_at = 0;
            }
        }
    }

    /// Publishes the cycle at which store `seq`'s data is available.
    pub fn set_data_at(&mut self, seq: u64, at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.data_at = at;
        }
    }

    /// Decides whether the load `seq` (address `addr`/`bytes`) may issue at
    /// `now`, must wait, or is forwarded from an older store.
    pub fn load_outcome(&self, seq: u64, addr: u64, bytes: u64, now: u64) -> LsqOutcome {
        let mut forwarded: Option<u64> = None;
        for e in self.entries.iter().filter(|e| e.is_store && e.seq < seq) {
            if self.conservative && !e.published {
                return LsqOutcome::WaitOn { store_seq: e.seq };
            }
            if overlaps(e.span, (addr, bytes)) {
                if e.data_at > now {
                    return LsqOutcome::WaitOn { store_seq: e.seq };
                }
                // The youngest overlapping older store wins.
                forwarded = Some(e.seq);
            }
        }
        match forwarded {
            Some(store_seq) => LsqOutcome::Forwarded { store_seq },
            None => LsqOutcome::Ready,
        }
    }

    /// Removes the entry for `seq` at retirement.
    pub fn retire(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq != seq);
    }

    /// Squashes every entry younger than `seq` (branch-misprediction
    /// recovery).
    pub fn flush_after(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Squashes everything.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_tracks_peak_occupancy_across_flushes() {
        let mut q = LoadStoreQueue::new(4);
        assert_eq!(q.high_water(), 0);
        q.insert(1, true, 0x100, 8);
        q.insert(2, false, 0x200, 8);
        assert_eq!(q.high_water(), 2);
        q.flush();
        assert_eq!(q.high_water(), 2, "peak survives the flush");
        q.insert(3, false, 0x300, 8);
        assert_eq!(q.high_water(), 2, "lower occupancy does not move the peak");
    }

    #[test]
    fn conservative_load_waits_for_unpublished_store_address() {
        let mut q = LoadStoreQueue::new(8);
        q.set_conservative(true);
        q.insert(1, true, 0x200, 8);
        q.insert(2, false, 0x100, 8);
        assert_eq!(q.load_outcome(2, 0x100, 8, 10), LsqOutcome::WaitOn { store_seq: 1 });
        // Address published (disjoint): the load goes ahead even though the
        // store's data is still in flight.
        q.set_address(1, 0x200, 8);
        assert_eq!(q.load_outcome(2, 0x100, 8, 10), LsqOutcome::Ready);
    }

    #[test]
    fn speculative_load_ignores_disjoint_unpublished_stores() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(1, true, 0x200, 8);
        q.insert(2, false, 0x100, 8);
        // Perfect dependence prediction: the spans are disjoint, so the
        // load proceeds before the store's address generation.
        assert_eq!(q.load_outcome(2, 0x100, 8, 10), LsqOutcome::Ready);
    }

    #[test]
    fn overlapping_store_forwards_once_data_arrives() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(1, true, 0x100, 8);
        q.set_address(1, 0x100, 8);
        q.insert(2, false, 0x100, 8);
        // Address known, data not yet: overlapping load waits.
        assert_eq!(q.load_outcome(2, 0x100, 8, 10), LsqOutcome::WaitOn { store_seq: 1 });
        q.set_data_at(1, 15);
        assert_eq!(q.load_outcome(2, 0x100, 8, 14), LsqOutcome::WaitOn { store_seq: 1 });
        assert_eq!(q.load_outcome(2, 0x100, 8, 15), LsqOutcome::Forwarded { store_seq: 1 });
        // Partial overlap also forwards (conservative single-source model).
        assert_eq!(q.load_outcome(2, 0x104, 8, 15), LsqOutcome::Forwarded { store_seq: 1 });
        // Disjoint access goes to the cache regardless of store data.
        assert_eq!(q.load_outcome(2, 0x108, 8, 0), LsqOutcome::Ready);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(1, true, 0x100, 8);
        q.set_address(1, 0x100, 8);
        q.set_data_at(1, 0);
        q.insert(2, true, 0x100, 8);
        q.set_address(2, 0x100, 8);
        q.set_data_at(2, 0);
        q.insert(3, false, 0x100, 8);
        assert_eq!(q.load_outcome(3, 0x100, 8, 5), LsqOutcome::Forwarded { store_seq: 2 });
    }

    #[test]
    fn younger_stores_do_not_block_loads() {
        let mut q = LoadStoreQueue::new(8);
        q.set_conservative(true);
        q.insert(1, false, 0x100, 8);
        q.insert(2, true, 0x100, 8); // younger store, address unpublished
        assert_eq!(q.load_outcome(1, 0x100, 8, 0), LsqOutcome::Ready);
    }

    #[test]
    fn retire_and_flush() {
        let mut q = LoadStoreQueue::new(4);
        q.insert(1, true, 0, 8);
        q.insert(2, false, 64, 8);
        q.insert(3, true, 128, 8);
        q.retire(1);
        assert_eq!(q.len(), 2);
        q.flush_after(2);
        assert_eq!(q.len(), 1);
        q.flush();
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_respected() {
        let mut q = LoadStoreQueue::new(2);
        q.insert(1, false, 0, 8);
        assert!(q.has_space());
        q.insert(2, false, 64, 8);
        assert!(!q.has_space());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_panics() {
        let mut q = LoadStoreQueue::new(4);
        q.insert(2, false, 0, 8);
        q.insert(1, false, 8, 8);
    }
}
