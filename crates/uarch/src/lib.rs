//! # braid-uarch: microarchitecture substrates
//!
//! Hardware building blocks shared by every execution-core model in the
//! braid reproduction (paper Table 4's "common parameters"):
//!
//! * [`cache`] — set-associative caches and the L1I/L1D/L2/memory hierarchy
//!   (64KB 4-way L1I @ 3 cycles, 64KB 2-way L1D @ 3 cycles, 1MB 8-way
//!   unified L2 @ 6 cycles, 400-cycle main memory), including the *perfect*
//!   mode used by the paper's Figure 1.
//! * [`branch`] — the perceptron conditional-branch predictor (64-bit
//!   global history, 512-entry weight table), a return-address stack, and a
//!   perfect predictor.
//! * [`lsq`] — a load-store queue enforcing memory ordering at run time and
//!   providing store-to-load forwarding.
//! * [`checkpoint`] — checkpoint bookkeeping for branch-misprediction and
//!   exception recovery.
//! * [`port`] — per-cycle port and bandwidth arbiters used to model limited
//!   register-file ports and bypass paths.
//! * [`stats`] — counters and histograms for simulator statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod checkpoint;
pub mod lsq;
pub mod port;
pub mod stats;

pub use branch::{BranchPredictor, PerceptronPredictor, PerfectPredictor, ReturnAddressStack};
pub use cache::{Cache, CacheConfig, CacheStats, MemoryHierarchy, MemoryHierarchyConfig};
pub use checkpoint::CheckpointStack;
pub use lsq::{LoadStoreQueue, LsqOutcome};
pub use port::{BandwidthMeter, PortArbiter};
pub use stats::{Histogram, Ratio};
