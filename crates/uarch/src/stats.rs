//! Simulator statistics: ratios and histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A hit/total style ratio counter.
///
/// ```
/// use braid_uarch::Ratio;
///
/// let mut hits = Ratio::default();
/// hits.record(true);
/// hits.record(true);
/// hits.record(false);
/// assert_eq!(hits.total(), 3);
/// assert!((hits.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Records one event; `hit` says whether it counts toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.hits += hit as u64;
        self.total += 1;
    }

    /// Number of positive events.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of negative events.
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of positive events; `0.0` when nothing was recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.hits, self.total, self.rate() * 100.0)
    }
}

/// An exact histogram over `u64` values.
///
/// Used for value-lifetime and braid-size distributions (paper §1 and §2),
/// where the interesting queries are the mean and the cumulative fraction at
/// a threshold ("80% of values have a lifetime of 32 instructions or
/// fewer").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of samples `<= value`; `0.0` when empty.
    pub fn cdf_at(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..=value).map(|(_, c)| c).sum();
        below as f64 / self.total as f64
    }

    /// The smallest value `v` with `cdf_at(v) >= p` for `p` in `(0, 1]`.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0.0, 1.0]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 1.0, "percentile requires p in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= target {
                return Some(v);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Non-panicking [`Histogram::percentile`]: returns `None` both for
    /// an empty histogram and for a `p` outside `(0, 1]`, so callers fed
    /// untrusted quantiles (CLI flags, wire fields) can validate without
    /// a crash path.
    pub fn percentile_checked(&self, p: f64) -> Option<u64> {
        if !(p > 0.0 && p <= 1.0) {
            return None;
        }
        self.percentile(p)
    }

    /// Sum of all recorded values (exact, in `u128` to dodge overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Count of samples equal to `value`.
    pub fn count_of(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.2} max={:?}", self.total, self.mean(), self.max())
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_counts() {
        let mut r = Ratio::default();
        assert_eq!(r.rate(), 0.0);
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.misses(), 5);
        assert_eq!(r.rate(), 0.5);
        assert_eq!(r.to_string(), "5/10 (50.00%)");
    }

    #[test]
    fn histogram_mean_and_cdf() {
        let h: Histogram = [1, 2, 2, 3, 10].into_iter().collect();
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 3.6).abs() < 1e-12);
        assert_eq!(h.cdf_at(2), 0.6);
        assert_eq!(h.cdf_at(0), 0.0);
        assert_eq!(h.cdf_at(10), 1.0);
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.count_of(2), 2);
    }

    #[test]
    fn histogram_percentiles() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.percentile(0.5), Some(50));
        assert_eq!(h.percentile(0.99), Some(99));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.01), Some(1));
        assert_eq!(Histogram::new().percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "percentile requires")]
    fn percentile_rejects_zero() {
        let _ = Histogram::new().percentile(0.0);
    }

    #[test]
    fn percentile_checked_never_panics() {
        let h: Histogram = (1..=100).collect();
        assert_eq!(h.percentile_checked(0.5), Some(50));
        assert_eq!(h.percentile_checked(1.0), Some(100));
        assert_eq!(h.percentile_checked(0.0), None, "out-of-range p is None, not a panic");
        assert_eq!(h.percentile_checked(-0.5), None);
        assert_eq!(h.percentile_checked(1.5), None);
        assert_eq!(h.percentile_checked(f64::NAN), None);
        assert_eq!(Histogram::new().percentile_checked(0.5), None, "empty is None");
    }

    #[test]
    fn sum_tracks_merges_exactly() {
        let mut a: Histogram = [10, 20].into_iter().collect();
        let b: Histogram = [30, 40].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.sum(), 100);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn histogram_merge_and_record_n() {
        let mut a: Histogram = [1, 1].into_iter().collect();
        let mut b = Histogram::new();
        b.record_n(1, 3);
        b.record_n(5, 0);
        a.merge(&b);
        assert_eq!(a.count_of(1), 5);
        assert_eq!(a.count_of(5), 0);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn extend_works() {
        let mut h = Histogram::new();
        h.extend([4u64, 4, 4]);
        assert_eq!(h.count_of(4), 3);
    }
}
