//! Checkpoint bookkeeping for branch-misprediction and exception recovery.
//!
//! The paper's recovery mechanism creates a checkpoint at every branch; the
//! braid machine stores *less* state per checkpoint because internal
//! register values never outlive their basic block. This module models the
//! resource: a bounded stack of checkpoints, each tagged with the dynamic
//! sequence number of the instruction it precedes and the number of state
//! words it had to save (reported so experiments can compare checkpoint
//! footprints between machines).

/// A bounded stack of in-flight checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStack {
    /// (sequence number, saved state words)
    live: Vec<(u64, u32)>,
    capacity: usize,
    taken: u64,
    recovered: u64,
    words_saved: u64,
}

impl CheckpointStack {
    /// Creates a stack allowing `capacity` outstanding checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> CheckpointStack {
        assert!(capacity > 0);
        CheckpointStack { live: Vec::new(), capacity, taken: 0, recovered: 0, words_saved: 0 }
    }

    /// Whether another checkpoint can be taken (cores stall otherwise).
    pub fn has_space(&self) -> bool {
        self.live.len() < self.capacity
    }

    /// Number of outstanding checkpoints.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no checkpoints are outstanding.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Takes a checkpoint before instruction `seq` saving `state_words`
    /// words of register state.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full ([`CheckpointStack::has_space`] guards
    /// this) or `seq` is not increasing.
    pub fn take(&mut self, seq: u64, state_words: u32) {
        assert!(self.has_space(), "checkpoint stack overflow");
        if let Some(&(last, _)) = self.live.last() {
            assert!(last < seq, "checkpoints must be taken in program order");
        }
        self.live.push((seq, state_words));
        self.taken += 1;
        self.words_saved += state_words as u64;
    }

    /// Releases the oldest checkpoint (its branch retired).
    pub fn release_oldest(&mut self) {
        if !self.live.is_empty() {
            self.live.remove(0);
        }
    }

    /// Releases checkpoints whose instruction has retired (seq < `retired`).
    pub fn release_retired(&mut self, retired: u64) {
        self.live.retain(|&(s, _)| s >= retired);
    }

    /// Recovers to the checkpoint at `seq`, discarding it and everything
    /// younger. Returns `true` if the checkpoint existed.
    pub fn recover_to(&mut self, seq: u64) -> bool {
        let found = self.live.iter().any(|&(s, _)| s == seq);
        if found {
            self.live.retain(|&(s, _)| s < seq);
            self.recovered += 1;
        }
        found
    }

    /// Total checkpoints ever taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Total recoveries performed.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Total state words saved across all checkpoints — the braid machine's
    /// advantage shows up here (internal registers are never saved).
    pub fn words_saved(&self) -> u64 {
        self.words_saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_release_in_order() {
        let mut c = CheckpointStack::new(4);
        c.take(10, 64);
        c.take(20, 64);
        assert_eq!(c.len(), 2);
        c.release_oldest();
        assert_eq!(c.len(), 1);
        c.release_retired(25);
        assert!(c.is_empty());
    }

    #[test]
    fn recovery_discards_younger() {
        let mut c = CheckpointStack::new(4);
        c.take(10, 8);
        c.take(20, 8);
        c.take(30, 8);
        assert!(c.recover_to(20));
        assert_eq!(c.len(), 1, "only the checkpoint at 10 remains");
        assert!(!c.recover_to(30), "30 was discarded");
        assert_eq!(c.recovered(), 1);
    }

    #[test]
    fn capacity_limits_outstanding() {
        let mut c = CheckpointStack::new(2);
        c.take(1, 1);
        c.take(2, 1);
        assert!(!c.has_space());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut c = CheckpointStack::new(1);
        c.take(1, 1);
        c.take(2, 1);
    }

    #[test]
    fn words_saved_accumulates() {
        let mut c = CheckpointStack::new(8);
        c.take(1, 64); // conventional machine: full register state
        c.take(2, 8); // braid machine: external registers only
        assert_eq!(c.words_saved(), 72);
        assert_eq!(c.taken(), 2);
    }
}
