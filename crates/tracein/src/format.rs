//! The versioned trace-file format (binary and JSON-lines).
//!
//! A trace file is **self-contained**: it embeds the program (as a
//! `.brisc` container) alongside the committed dynamic instruction
//! stream, so a replay host needs nothing but the file — no workload
//! registry, no source, no matching binary on disk.
//!
//! # Binary layout (version 1)
//!
//! The payload below is wrapped in [`braid_sweep::digest::frame`], the
//! same crash-safe footer the braidd disk cache uses, so truncation and
//! bit rot are caught structurally before any field is parsed:
//!
//! ```text
//! offset  size  contents
//! 0       8     magic "BRTRACE1"
//! 8       4     format version (u32 LE) — this module writes 1
//! 12      8     recording fuel (u64 LE)
//! 20      4     name length (u32 LE), then that many UTF-8 bytes
//! ...     8     program container length (u64 LE), then the `.brisc` bytes
//! ...     8     entry count (u64 LE)
//! per entry (21 bytes):
//!         4     static instruction index (u32 LE)
//!         4     next dynamic index (u32 LE)
//!         8     effective address (u64 LE, 0 for non-memory ops)
//!         1     taken flag (0 or 1)
//! ```
//!
//! # JSON-lines layout (version 1)
//!
//! Line 1 is a header object:
//!
//! ```text
//! {"format":"braid-trace","version":1,"name":...,"fuel":N,"program":"<hex .brisc>","entries":N}
//! ```
//!
//! followed by one compact array per entry: `[idx,next_idx,addr,taken]`.
//! The JSON form is for inspection and tool interchange; the binary form
//! is ~10× smaller and is what braidd and the caches move around.
//!
//! Bumping the format: increment [`FORMAT_VERSION`], keep decoding old
//! versions, never reuse a version number.

use braid_core::trace::{Trace, TraceEntry};
use braid_isa::{container, Program};
use braid_sweep::digest::{frame, unframe};
use braid_sweep::json::{parse, Json};

use crate::error::TraceError;

/// Magic identifying a braid trace payload.
pub const TRACE_MAGIC: &[u8; 8] = b"BRTRACE1";

/// The format version this module writes.
pub const FORMAT_VERSION: u32 = 1;

/// Size of one packed trace entry in the binary form.
const ENTRY_BYTES: usize = 4 + 4 + 8 + 1;

/// Longest accepted workload name (sanity bound on hostile input).
const MAX_NAME_LEN: usize = 4096;

/// A self-contained recorded trace: the program, the committed dynamic
/// instruction stream, and the fuel it was recorded under.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// Workload name carried through recording.
    pub name: String,
    /// Instruction budget the recording ran under (replays reuse it when
    /// a core needs to re-derive the stream, e.g. braid translation).
    pub fuel: u64,
    /// The program the trace was recorded from.
    pub program: Program,
    /// The committed dynamic instruction stream.
    pub trace: Trace,
}

impl TraceFile {
    /// Functionally executes `program` for at most `fuel` instructions
    /// and captures the committed stream.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution failures (including running out
    /// of fuel before `halt`).
    pub fn record(program: &Program, fuel: u64) -> Result<TraceFile, TraceError> {
        let mut m = braid_core::Machine::new(program);
        let trace = m.run(program, fuel).map_err(TraceError::Exec)?;
        Ok(TraceFile {
            name: program.name.clone(),
            fuel,
            program: program.clone(),
            trace,
        })
    }

    /// The raw (unframed) binary payload.
    fn payload(&self) -> Result<Vec<u8>, TraceError> {
        let container = container::to_bytes(&self.program).map_err(TraceError::Container)?;
        let mut out = Vec::with_capacity(
            8 + 4 + 8 + 4 + self.name.len() + 8 + container.len() + 8
                + self.trace.entries.len() * ENTRY_BYTES,
        );
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fuel.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(container.len() as u64).to_le_bytes());
        out.extend_from_slice(&container);
        out.extend_from_slice(&(self.trace.entries.len() as u64).to_le_bytes());
        for e in &self.trace.entries {
            out.extend_from_slice(&e.idx.to_le_bytes());
            out.extend_from_slice(&e.next_idx.to_le_bytes());
            out.extend_from_slice(&e.addr.to_le_bytes());
            out.push(u8::from(e.taken));
        }
        Ok(out)
    }

    /// Serializes to the framed binary form.
    ///
    /// # Errors
    ///
    /// Propagates program-container encoding failures.
    pub fn to_binary(&self) -> Result<Vec<u8>, TraceError> {
        Ok(frame(&self.payload()?))
    }

    /// The canonical content digest of this trace (16 hex digits over the
    /// binary payload) — the key braidd's content-addressed cache and the
    /// replay smoke tests compare.
    ///
    /// # Errors
    ///
    /// Propagates program-container encoding failures.
    pub fn digest(&self) -> Result<String, TraceError> {
        Ok(braid_sweep::digest::hex(&self.payload()?))
    }

    /// Parses the framed binary form.
    ///
    /// # Errors
    ///
    /// Returns a structured [`TraceError`] for any corruption: a torn
    /// frame, bad magic, unknown version, truncated field, undecodable
    /// program, or an entry referencing an out-of-range instruction.
    /// Never panics, whatever the input bytes.
    pub fn from_binary(bytes: &[u8]) -> Result<TraceFile, TraceError> {
        let payload = unframe(bytes).map_err(TraceError::Frame)?;
        let mut r = Reader { bytes: payload, at: 0 };
        if r.take(8, "magic")? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnknownVersion(version));
        }
        let fuel = r.u64("fuel")?;
        let name_len = r.u32("name length")? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(TraceError::Malformed(format!(
                "implausible name length {name_len}"
            )));
        }
        let name = std::str::from_utf8(r.take(name_len, "name")?)
            .map_err(|_| TraceError::Malformed("name is not UTF-8".into()))?
            .to_string();
        let container_len = r.u64("container length")?;
        if container_len > payload.len() as u64 {
            return Err(TraceError::Malformed(format!(
                "container length {container_len} exceeds payload"
            )));
        }
        let mut program = container::from_bytes(r.take(container_len as usize, "container")?)
            .map_err(TraceError::Container)?;
        program.name = name.clone();
        let n = r.u64("entry count")?;
        if n > (payload.len() as u64) / ENTRY_BYTES as u64 {
            return Err(TraceError::Malformed(format!(
                "implausible entry count {n}"
            )));
        }
        let mut entries = Vec::with_capacity(n as usize);
        for i in 0..n {
            let idx = r.u32("entry idx")?;
            let next_idx = r.u32("entry next_idx")?;
            let addr = r.u64("entry addr")?;
            let taken = match r.take(1, "entry taken")?[0] {
                0 => false,
                1 => true,
                b => {
                    return Err(TraceError::Malformed(format!(
                        "entry {i}: taken flag must be 0 or 1, got {b}"
                    )))
                }
            };
            entries.push(TraceEntry { idx, next_idx, addr, taken });
        }
        if r.at != payload.len() {
            return Err(TraceError::Malformed(format!(
                "{} trailing bytes after the last entry",
                payload.len() - r.at
            )));
        }
        let file = TraceFile { name, fuel, program, trace: Trace { entries } };
        file.validate()?;
        Ok(file)
    }

    /// Serializes to the JSON-lines form.
    ///
    /// # Errors
    ///
    /// Propagates program-container encoding failures.
    pub fn to_jsonl(&self) -> Result<String, TraceError> {
        let container = container::to_bytes(&self.program).map_err(TraceError::Container)?;
        let header = Json::Obj(vec![
            ("format".into(), Json::Str("braid-trace".into())),
            ("version".into(), Json::Int(u64::from(FORMAT_VERSION))),
            ("name".into(), Json::Str(self.name.clone())),
            ("fuel".into(), Json::Int(self.fuel)),
            ("program".into(), Json::Str(hex_encode(&container))),
            ("entries".into(), Json::Int(self.trace.entries.len() as u64)),
        ]);
        let mut out = header.compact();
        out.push('\n');
        for e in &self.trace.entries {
            let line = Json::Arr(vec![
                Json::Int(u64::from(e.idx)),
                Json::Int(u64::from(e.next_idx)),
                Json::Int(e.addr),
                Json::Bool(e.taken),
            ]);
            out.push_str(&line.compact());
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses the JSON-lines form.
    ///
    /// # Errors
    ///
    /// Returns a structured [`TraceError`] for malformed JSON, a missing
    /// or mistyped header field, an unknown version, an entry-count
    /// mismatch, or an undecodable embedded program. Never panics.
    pub fn from_jsonl(text: &str) -> Result<TraceFile, TraceError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| TraceError::Malformed("empty trace file".into()))?;
        let header = parse(header_line)
            .map_err(|e| TraceError::Malformed(format!("header: {e}")))?;
        if header.get("format").and_then(Json::as_str) != Some("braid-trace") {
            return Err(TraceError::BadMagic);
        }
        let version = header
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| TraceError::Malformed("header missing `version`".into()))?;
        if version != u64::from(FORMAT_VERSION) {
            return Err(TraceError::UnknownVersion(version.min(u64::from(u32::MAX)) as u32));
        }
        let name = header
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| TraceError::Malformed("header missing `name`".into()))?
            .to_string();
        let fuel = header
            .get("fuel")
            .and_then(Json::as_u64)
            .ok_or_else(|| TraceError::Malformed("header missing `fuel`".into()))?;
        let hex = header
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| TraceError::Malformed("header missing `program`".into()))?;
        let expected = header
            .get("entries")
            .and_then(Json::as_u64)
            .ok_or_else(|| TraceError::Malformed("header missing `entries`".into()))?;
        let container_bytes = hex_decode(hex)
            .ok_or_else(|| TraceError::Malformed("program hex is malformed".into()))?;
        let mut program =
            container::from_bytes(&container_bytes).map_err(TraceError::Container)?;
        program.name = name.clone();
        let mut entries = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let v = parse(line)
                .map_err(|e| TraceError::Malformed(format!("entry line {}: {e}", lineno + 2)))?;
            let arr = v.as_arr().filter(|a| a.len() == 4).ok_or_else(|| {
                TraceError::Malformed(format!(
                    "entry line {}: expected [idx,next_idx,addr,taken]",
                    lineno + 2
                ))
            })?;
            let field = |i: usize| {
                arr[i].as_u64().ok_or_else(|| {
                    TraceError::Malformed(format!(
                        "entry line {}: field {i} is not an integer",
                        lineno + 2
                    ))
                })
            };
            let idx = u32::try_from(field(0)?)
                .map_err(|_| TraceError::Malformed(format!("entry line {}: idx overflows u32", lineno + 2)))?;
            let next_idx = u32::try_from(field(1)?)
                .map_err(|_| TraceError::Malformed(format!("entry line {}: next_idx overflows u32", lineno + 2)))?;
            let addr = field(2)?;
            let taken = arr[3].as_bool().ok_or_else(|| {
                TraceError::Malformed(format!("entry line {}: taken is not a bool", lineno + 2))
            })?;
            entries.push(TraceEntry { idx, next_idx, addr, taken });
        }
        if entries.len() as u64 != expected {
            return Err(TraceError::Malformed(format!(
                "header promises {expected} entries, found {}",
                entries.len()
            )));
        }
        let file = TraceFile { name, fuel, program, trace: Trace { entries } };
        file.validate()?;
        Ok(file)
    }

    /// Cross-checks the entry stream against the embedded program: every
    /// index must name a real instruction.
    fn validate(&self) -> Result<(), TraceError> {
        let n = self.program.insts.len() as u32;
        for (i, e) in self.trace.entries.iter().enumerate() {
            if e.idx >= n || e.next_idx > n {
                return Err(TraceError::Malformed(format!(
                    "entry {i} references instruction {} of a {n}-instruction program",
                    e.idx.max(e.next_idx)
                )));
            }
        }
        Ok(())
    }
}

/// Lowercase hex of `bytes`.
fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Bounds-checked little-endian reader (mirrors the container's, but
/// reports which field was truncated).
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        if self.bytes.len() - self.at < n {
            return Err(TraceError::Malformed(format!("truncated {what}")));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
}

/// Re-exported so callers matching [`TraceError::Frame`] can name the
/// inner error type without a direct `braid-sweep` dependency.
pub use braid_sweep::digest::FrameError as TraceFrameError;

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    fn sample() -> TraceFile {
        let mut p = assemble(
            r#"
                addi r0, #5, r1
            loop:
                ldq  r2, 0(r3) @global:1
                addq r2, r4, r4
                addi r3, #8, r3
                subi r1, #1, r1
                bne  r1, loop
                halt
                .data 0x1000 1 2 3 4 5
            "#,
        )
        .unwrap();
        p.name = "sample".into();
        TraceFile::record(&p, 10_000).unwrap()
    }

    #[test]
    fn binary_round_trips_exactly() {
        let f = sample();
        let bytes = f.to_binary().unwrap();
        let back = TraceFile::from_binary(&bytes).unwrap();
        assert_eq!(back.name, f.name);
        assert_eq!(back.fuel, f.fuel);
        assert_eq!(back.program.insts, f.program.insts);
        assert_eq!(back.trace.entries, f.trace.entries);
        assert_eq!(back.digest().unwrap(), f.digest().unwrap());
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let f = sample();
        let text = f.to_jsonl().unwrap();
        assert!(text.starts_with("{\"format\":\"braid-trace\",\"version\":1,"));
        let back = TraceFile::from_jsonl(&text).unwrap();
        assert_eq!(back.program.insts, f.program.insts);
        assert_eq!(back.trace.entries, f.trace.entries);
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let bytes = sample().to_binary().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                TraceFile::from_binary(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_a_structured_error() {
        // The frame digest catches every flip before field parsing.
        let bytes = sample().to_binary().unwrap();
        for i in (0..bytes.len()).step_by(7) {
            let mut mangled = bytes.clone();
            mangled[i] ^= 0x2a;
            assert!(TraceFile::from_binary(&mangled).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let f = sample();
        let mut payload = f.payload().unwrap();
        payload[8] = 99; // version
        assert!(matches!(
            TraceFile::from_binary(&frame(&payload)),
            Err(TraceError::UnknownVersion(99))
        ));
        let mut payload = f.payload().unwrap();
        payload[0] = b'X';
        assert!(matches!(
            TraceFile::from_binary(&frame(&payload)),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn spliced_payloads_are_rejected() {
        // Splice the tail of one payload onto the head of another:
        // re-framed so the frame verifies, the field cross-checks must
        // still reject it.
        let a = sample().payload().unwrap();
        let mut f2 = sample();
        f2.trace.entries.truncate(3);
        let b = f2.payload().unwrap();
        let spliced = [&a[..a.len() / 2], &b[b.len() / 2..]].concat();
        assert!(TraceFile::from_binary(&frame(&spliced)).is_err());
        // Also splice extra entry bytes onto a valid payload.
        let mut grown = a.clone();
        grown.extend_from_slice(&[0u8; 21]);
        assert!(TraceFile::from_binary(&frame(&grown)).is_err());
    }

    #[test]
    fn out_of_range_entries_are_rejected() {
        let mut f = sample();
        f.trace.entries[0].idx = 10_000;
        let bytes = f.to_binary().unwrap();
        assert!(matches!(
            TraceFile::from_binary(&bytes),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn jsonl_header_mismatches_are_rejected() {
        let f = sample();
        let text = f.to_jsonl().unwrap();
        // Drop an entry line: header count no longer matches.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        assert!(TraceFile::from_jsonl(&lines.join("\n")).is_err());
        // Garbage body line.
        let garbled = text.replacen("[0,", "[oops,", 1);
        assert!(TraceFile::from_jsonl(&garbled).is_err());
        assert!(TraceFile::from_jsonl("").is_err());
        assert!(TraceFile::from_jsonl("{\"format\":\"other\"}\n").is_err());
    }

    #[test]
    fn hex_codec_round_trips() {
        for bytes in [&[][..], &[0u8][..], &[0xde, 0xad, 0xbe, 0xef][..]] {
            assert_eq!(hex_decode(&hex_encode(bytes)).unwrap(), bytes);
        }
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
