//! Structured errors: every malformed input and every failed replay maps
//! to a typed variant — hostile bytes must never panic the ingestion
//! path.

use std::error::Error;
use std::fmt;

use braid_core::{ExecError, SimError};
use braid_sweep::digest::FrameError;

/// Why a trace file failed to parse, encode, or record.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The crash-safe frame around the binary payload did not verify
    /// (truncation, bit rot, or a torn write).
    Frame(FrameError),
    /// The payload does not start with the trace magic (or the JSON
    /// header's `format` field is not `braid-trace`).
    BadMagic,
    /// The payload declares a format version this build cannot decode.
    UnknownVersion(u32),
    /// A field is truncated, out of range, inconsistent with the header,
    /// or references an instruction the embedded program does not have.
    Malformed(String),
    /// The embedded `.brisc` program container failed to encode/decode.
    Container(braid_isa::IsaError),
    /// Functional execution failed while recording.
    Exec(ExecError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Frame(e) => write!(f, "trace frame did not verify: {e}"),
            TraceError::BadMagic => f.write_str("not a braid trace (bad magic)"),
            TraceError::UnknownVersion(v) => {
                write!(f, "unknown trace format version {v} (this build reads version 1)")
            }
            TraceError::Malformed(m) => write!(f, "malformed trace: {m}"),
            TraceError::Container(e) => write!(f, "embedded program container: {e}"),
            TraceError::Exec(e) => write!(f, "recording failed: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Frame(e) => Some(e),
            TraceError::Container(e) => Some(e),
            TraceError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a replay failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace file itself is unusable.
    Trace(TraceError),
    /// Braid translation of the embedded program failed.
    Translate(braid_compiler::TranslateError),
    /// The translated program failed the static braid-contract check;
    /// the braid core refuses to run it.
    Check(Box<braid_check::CheckReport>),
    /// Functional re-derivation of the braid-core stream failed.
    Exec(ExecError),
    /// Timing simulation failed (bad config or livelock).
    Sim(SimError),
    /// The core kind has no replay arm (future [`CoreConfig`] variant).
    ///
    /// [`CoreConfig`]: braid_core::processor::CoreConfig
    UnsupportedCore(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "unusable trace: {e}"),
            ReplayError::Translate(e) => write!(f, "braid translation failed: {e}"),
            ReplayError::Check(r) => write!(f, "braid contract violated: {r}"),
            ReplayError::Exec(e) => write!(f, "functional re-derivation failed: {e}"),
            ReplayError::Sim(e) => write!(f, "timing simulation failed: {e}"),
            ReplayError::UnsupportedCore(name) => {
                write!(f, "no replay support for core kind `{name}`")
            }
        }
    }
}

impl Error for ReplayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            ReplayError::Translate(e) => Some(e),
            ReplayError::Check(_) => None,
            ReplayError::Exec(e) => Some(e),
            ReplayError::Sim(e) => Some(e),
            ReplayError::UnsupportedCore(_) => None,
        }
    }
}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> ReplayError {
        ReplayError::Sim(e)
    }
}
